"""Legacy shim: enables `python setup.py develop` on offline machines
where pip's build isolation cannot fetch setuptools/wheel.  All project
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
