"""End-to-end tests for the EulerFD driver and its double cycle."""

from __future__ import annotations

import pytest

from repro.algorithms import BruteForce
from repro.core import EulerFD, EulerFDConfig
from repro.fd import FD
from repro.metrics import f1_score
from repro.relation import Relation


class TestBasicDiscovery:
    def test_patient_dataset_is_exact(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        result = EulerFD().discover(patient_relation)
        assert result.fds == truth

    def test_result_metadata(self, patient_relation):
        result = EulerFD().discover(patient_relation)
        assert result.algorithm == "EulerFD"
        assert result.relation_name == "patients"
        assert result.num_rows == 9
        assert result.num_columns == 5
        assert result.runtime_seconds > 0

    def test_stats_populated(self, patient_relation):
        stats = EulerFD().discover(patient_relation).stats
        for key in (
            "cycles", "sampling_rounds", "inversions", "pairs_compared",
            "ncover_size", "pcover_size", "clusters",
        ):
            assert key in stats
        assert stats["inversions"] >= 1
        assert stats["pairs_compared"] > 0

    def test_deterministic(self, patient_relation):
        first = EulerFD().discover(patient_relation)
        second = EulerFD().discover(patient_relation)
        assert first.fds == second.fds


class TestDegenerateRelations:
    def test_single_column(self):
        relation = Relation.from_rows([(1,), (2,)], ["a"])
        result = EulerFD().discover(relation)
        assert result.fds == frozenset()  # {} -> a is violated, nothing else

    def test_constant_column_yields_empty_lhs_fd(self):
        relation = Relation.from_rows([(1, "x"), (2, "x")], ["a", "b"])
        result = EulerFD().discover(relation)
        assert FD(0, 1) in result.fds  # {} -> b
        assert FD.of([0], 1) not in result.fds  # dominated

    def test_all_unique_relation(self):
        """No cluster exists, yet the seeded empty-LHS violations ensure
        singles are reported instead of the bogus {} -> A."""
        relation = Relation.from_rows(
            [(1, "a", 7.0), (2, "b", 8.0), (3, "c", 9.0)], ["x", "y", "z"]
        )
        result = EulerFD().discover(relation)
        expected = {
            FD.of([lhs], rhs)
            for lhs in range(3)
            for rhs in range(3)
            if lhs != rhs
        }
        assert result.fds == expected

    def test_empty_relation(self):
        relation = Relation.from_rows([], ["a", "b"])
        result = EulerFD().discover(relation)
        assert result.fds == {FD(0, 0), FD(0, 1)}  # vacuously constant

    def test_single_row(self):
        relation = Relation.from_rows([(1, 2)], ["a", "b"])
        result = EulerFD().discover(relation)
        assert result.fds == {FD(0, 0), FD(0, 1)}

    def test_duplicate_rows_only(self):
        relation = Relation.from_rows([(1, 2)] * 4, ["a", "b"])
        result = EulerFD().discover(relation)
        assert result.fds == {FD(0, 0), FD(0, 1)}


class TestConfiguration:
    def test_zero_thresholds_still_terminate(self, patient_relation):
        config = EulerFDConfig(th_ncover=0.0, th_pcover=0.0)
        result = EulerFD(config).discover(patient_relation)
        assert result.stats["cycles"] <= config.max_cycles
        assert len(result.fds) > 0

    def test_max_cycles_bounds_work(self, patient_relation):
        config = EulerFDConfig(max_cycles=1)
        result = EulerFD(config).discover(patient_relation)
        assert result.stats["cycles"] == 1

    def test_single_queue_configuration(self, patient_relation):
        config = EulerFDConfig().with_queues(1)
        result = EulerFD(config).discover(patient_relation)
        truth = BruteForce().discover(patient_relation).fds
        assert f1_score(result.fds, truth) == 1.0

    def test_high_threshold_trades_accuracy_for_speed(self):
        """A huge Th_Ncover stops sampling almost immediately; the result
        may overclaim FDs but the pipeline still completes."""
        import random

        rng = random.Random(5)
        rows = [
            tuple(rng.randint(0, 4) for _ in range(6)) for _ in range(200)
        ]
        relation = Relation.from_rows(rows)
        eager = EulerFD(EulerFDConfig(th_ncover=100.0, th_pcover=100.0))
        careful = EulerFD(EulerFDConfig(th_ncover=0.001, th_pcover=0.001))
        eager_result = eager.discover(relation)
        careful_result = careful.discover(relation)
        assert eager_result.stats["pairs_compared"] <= (
            careful_result.stats["pairs_compared"]
        )
        truth = BruteForce().discover(relation).fds
        assert f1_score(careful_result.fds, truth) >= f1_score(
            eager_result.fds, truth
        )

    def test_null_semantics_flow_through(self):
        relation = Relation.from_rows(
            [(None, "x"), (None, "y")], ["a", "b"]
        )
        equal_nulls = EulerFD(EulerFDConfig(null_equals_null=True)).discover(
            relation
        )
        distinct_nulls = EulerFD(
            EulerFDConfig(null_equals_null=False)
        ).discover(relation)
        # With NULL == NULL the pair violates a -> b; without, no pair
        # agrees on anything and both singles survive.
        assert FD.of([0], 1) not in equal_nulls.fds
        assert FD.of([0], 1) in distinct_nulls.fds


class TestAccuracyOnStructuredData:
    def test_planted_fd_recovered(self):
        import random

        rng = random.Random(11)
        rows = []
        for _ in range(300):
            a = rng.randint(0, 9)
            b = rng.randint(0, 9)
            rows.append((a, b, (a * 13 + b * 7) % 10, rng.randint(0, 1)))
        relation = Relation.from_rows(rows, ["a", "b", "ab_fn", "noise"])
        result = EulerFD().discover(relation)
        truth = BruteForce().discover(relation).fds
        assert f1_score(result.fds, truth) >= 0.95

    def test_f1_against_oracle_on_random_data(self):
        import random

        rng = random.Random(23)
        rows = [
            (rng.randint(0, 29), rng.randint(0, 29), rng.randint(0, 5),
             rng.randint(0, 59), rng.randint(0, 1))
            for _ in range(150)
        ]
        relation = Relation.from_rows(rows)
        result = EulerFD().discover(relation)
        truth = BruteForce().discover(relation).fds
        assert truth, "the workload must have true FDs for F1 to mean anything"
        assert f1_score(result.fds, truth) >= 0.9
