"""Smoke tests for the experiment harness (tiny scales).

The real experiments live in benchmarks/; here each harness module runs
once on miniature workloads so regressions surface in the fast suite.
"""

from __future__ import annotations

import pytest

from repro.bench import ablation, dms, overall, parameters, scalability
from repro.bench.runner import (
    AlgorithmRun,
    GroundTruthCache,
    default_algorithms,
    format_cell,
    run_algorithm,
)
from repro.datasets import registry


class TestRunner:
    def test_default_algorithms_order(self):
        assert list(default_algorithms()) == [
            "Tane", "Fdep", "HyFD", "AID-FD", "EulerFD",
        ]

    def test_run_algorithm_success(self, patient_relation):
        run = run_algorithm(default_algorithms()["EulerFD"], patient_relation)
        assert run.ok
        assert run.seconds is not None and run.seconds > 0
        assert run.fds

    def test_run_algorithm_budget_blowup_reports_ml(self, patient_relation):
        from repro.algorithms import Tane

        run = run_algorithm(lambda: Tane(max_level_width=1), patient_relation)
        assert not run.ok
        assert run.skipped == "ML"
        assert run.fds is None

    def test_ground_truth_cache_reuses(self, patient_relation):
        cache = GroundTruthCache()
        first = cache.truth_for(patient_relation)
        second = cache.truth_for(patient_relation)
        assert first is second
        assert len(first) == 9

    def test_ground_truth_cache_tall_path_uses_hyfd(self, patient_relation):
        """Above the tall threshold the cache switches oracle; both paths
        must agree since both are exact."""
        short = GroundTruthCache().truth_for(patient_relation)
        tall = GroundTruthCache(tall_threshold=1).truth_for(patient_relation)
        assert short == tall

    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell("ML") == "ML"
        assert format_cell(1.23456) == "1.235"
        assert format_cell(2.0, precision=1) == "2.0"


class TestOverall:
    def test_table3_rows(self, capsys):
        table = overall.run_table3(dataset_names=["iris", "bridges"], rows=60)
        assert len(table) == 2
        for row in table:
            assert row.true_fds >= 0
            euler = row.runs["EulerFD"]
            assert euler.ok
            assert row.f1["EulerFD"] is not None
        overall.print_table3(table)
        printed = capsys.readouterr().out
        assert "Table III" in printed
        assert "iris" in printed

    def test_table3_skip_rules_mark_budget_cells(self, capsys):
        table = overall.run_table3(
            dataset_names=["bridges"],
            rows=40,
            skip_tane_above_columns=5,   # bridges has 13 columns
            skip_fdep_above_rows=10,
        )
        row = table[0]
        assert row.runs["Tane"].skipped == "ML"
        assert row.runs["Fdep"].skipped == "TL"
        assert row.runs["EulerFD"].ok
        overall.print_table3(table)
        printed = capsys.readouterr().out
        assert "ML" in printed and "TL" in printed

    def test_table3_truth_still_computed_when_oracles_skipped(self):
        table = overall.run_table3(
            dataset_names=["iris"],
            rows=50,
            skip_tane_above_columns=1,
            skip_fdep_above_rows=1,
        )
        # Ground truth comes from the cache (HyFD fallback), not from the
        # skipped table cells.
        assert table[0].true_fds > 0
        assert table[0].f1["EulerFD"] is not None


class TestScalability:
    def test_row_sweep(self):
        series = scalability.row_scalability(
            "fd-reduced-30",
            row_counts=[50, 100],
            algorithm_names=("AID-FD", "EulerFD"),
            columns=8,
        )
        assert [point.x for point in series] == [50, 100]
        for point in series:
            assert point.runs["EulerFD"].ok

    def test_column_sweep(self):
        series = scalability.column_scalability(
            "plista",
            column_counts=[4, 6],
            rows=80,
            algorithm_names=("Fdep", "EulerFD"),
        )
        assert [point.x for point in series] == [4, 6]
        for point in series:
            assert point.runs["Fdep"].ok

    def test_print_sweep(self, capsys):
        series = scalability.row_scalability(
            "iris", row_counts=[30], algorithm_names=("EulerFD",)
        )
        scalability.print_sweep("t", "rows", series, ("EulerFD",))
        assert "rows" in capsys.readouterr().out


class TestParameters:
    def test_mlfq_sweep(self):
        points = parameters.mlfq_sweep(
            queue_counts=(1, 6), dataset_names=("iris",), rows=60
        )
        assert len(points) == 2
        for point in points:
            assert 0.0 <= point.f1 <= 1.0
            assert point.algorithm == "EulerFD"

    def test_threshold_sweep_ncover(self):
        points = parameters.threshold_sweep(
            thresholds=(0.1, 0.0),
            dataset_names=("iris",),
            vary="ncover",
            rows=60,
        )
        algorithms = {point.algorithm for point in points}
        assert algorithms == {"EulerFD", "AID-FD"}
        assert len(points) == 4

    def test_threshold_sweep_pcover(self):
        points = parameters.threshold_sweep(
            thresholds=(0.01,), dataset_names=("iris",), vary="pcover", rows=60
        )
        assert len(points) == 2

    def test_invalid_vary_rejected(self):
        with pytest.raises(ValueError):
            parameters.threshold_sweep(vary="both")

    def test_print_points(self, capsys):
        points = parameters.mlfq_sweep(
            queue_counts=(6,), dataset_names=("iris",), rows=40
        )
        parameters.print_points("Fig10", "queues", points)
        assert "Fig10" in capsys.readouterr().out


class TestDms:
    def test_small_fleet_report(self, capsys):
        report = dms.run_dms(
            datasets_per_bucket=1,
            row_buckets=((1, 10), (11, 50)),
            column_buckets=((2, 5), (6, 10)),
        )
        assert report.grid
        cell = next(iter(report.grid.values()))
        assert cell.datasets == 1
        dms.print_dms(report)
        assert "Table V" in capsys.readouterr().out

    def test_tau_none_when_unscored(self):
        accumulator = dms.BucketAccumulator()
        assert accumulator.tau_e is None
        assert accumulator.tau_a is None


class TestAblation:
    def test_variants_cover_design_choices(self):
        names = set(ablation.variants())
        assert names == {"full", "single-queue", "single-cycle", "adaptive"}

    def test_run_ablation(self, capsys):
        points = ablation.run_ablation(dataset_names=("iris",), rows=60)
        assert len(points) == 4
        ablation.print_ablation(points)
        assert "Ablation" in capsys.readouterr().out
