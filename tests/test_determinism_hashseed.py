"""Determinism regression: EulerFD must not depend on PYTHONHASHSEED.

The paper's accuracy/runtime claims only replicate if a fixed seed fully
determines the discovery path.  String hashing is the classic way that
breaks silently — set/dict ordering shifts between interpreter runs —
so this test executes the same seeded discovery in fresh subprocesses
under different ``PYTHONHASHSEED`` values and requires bit-identical FD
sets *and* identical discovery statistics (cycle/round counts expose
path divergence even when the final sets happen to agree).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import repro

_SCRIPT = """
import json
from repro.core import EulerFD, EulerFDConfig
from repro.datasets import make

relation = make("bridges", seed=7)
result = EulerFD(EulerFDConfig()).discover(relation)
fds = sorted((fd.lhs, fd.rhs) for fd in result.fds)
stats = {k: v for k, v in sorted(result.stats.items()) if isinstance(v, int)}
print(json.dumps({"fds": fds, "stats": stats}))
"""


def _discover_under_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = hashseed
    completed = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return completed.stdout.strip()


def test_eulerfd_invariant_under_hash_randomization():
    baseline = _discover_under_hashseed("0")
    assert '"fds"' in baseline and baseline.count("[") > 1, baseline
    for hashseed in ("1", "424242"):
        assert _discover_under_hashseed(hashseed) == baseline, (
            f"EulerFD output diverged under PYTHONHASHSEED={hashseed}; "
            "some discovery path iterates in hash order"
        )
