"""Tests for the synthetic dataset engine, generators, and registry."""

from __future__ import annotations

import pytest

from repro.algorithms import Fdep
from repro.datasets import (
    PATIENT_COLUMNS,
    ColumnSpec,
    DatasetSpec,
    dataset_names,
    generate,
    info,
    make,
    patients,
    planted_fd_columns,
)
from repro.datasets import generators
from repro.fd import FD
from repro.relation import fd_holds, preprocess


class TestEngine:
    def test_deterministic(self):
        spec = generators.adult_spec()
        left = generate(spec, 100)
        right = generate(spec, 100)
        assert left.columns == right.columns

    def test_seed_changes_data(self):
        left = generate(generators.adult_spec(seed=1), 100)
        right = generate(generators.adult_spec(seed=2), 100)
        assert left.columns != right.columns

    def test_key_columns_are_unique(self):
        spec = DatasetSpec("t", (ColumnSpec("k", kind="key"),))
        relation = generate(spec, 50)
        assert len(set(relation.column("k"))) == 50

    def test_constant_columns(self):
        spec = DatasetSpec("t", (ColumnSpec("c", kind="constant"),))
        assert len(set(generate(spec, 20).column("c"))) == 1

    def test_cardinality_respected(self):
        spec = DatasetSpec("t", (ColumnSpec("c", cardinality=3),))
        values = set(generate(spec, 500).column("c"))
        assert len(values) <= 3

    def test_cardinality_ratio_scales_with_rows(self):
        spec = DatasetSpec(
            "t", (ColumnSpec("c", cardinality_ratio=0.5),)
        )
        small = generate(spec, 100)
        large = generate(spec, 1000)
        assert len(set(large.column("c"))) > len(set(small.column("c")))

    def test_derived_column_is_functional(self):
        spec = DatasetSpec(
            "t",
            (
                ColumnSpec("a", cardinality=5),
                ColumnSpec("b", cardinality=5),
                ColumnSpec("f", kind="derived", sources=("a", "b"),
                           cardinality=7),
            ),
        )
        relation = generate(spec, 300)
        data = preprocess(relation)
        assert fd_holds(data, FD.of([0, 1], 2))

    def test_noisy_derived_column_is_violated(self):
        spec = DatasetSpec(
            "t",
            (
                ColumnSpec("a", cardinality=3),
                ColumnSpec("f", kind="derived", sources=("a",),
                           cardinality=5, noise=0.5),
            ),
        )
        relation = generate(spec, 400)
        assert not fd_holds(preprocess(relation), FD.of([0], 1))

    def test_zero_rows(self):
        assert generate(generators.iris_spec(), 0).num_rows == 0

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            generate(generators.iris_spec(), -1)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ColumnSpec("x", kind="mystery")
        with pytest.raises(ValueError, match="sources"):
            ColumnSpec("x", kind="derived")
        with pytest.raises(ValueError, match="noise"):
            ColumnSpec("x", noise=1.5)
        with pytest.raises(ValueError, match="cardinality_ratio"):
            ColumnSpec("x", cardinality_ratio=0.0)

    def test_spec_rejects_forward_references(self):
        with pytest.raises(ValueError, match="declared before"):
            DatasetSpec(
                "t",
                (
                    ColumnSpec("f", kind="derived", sources=("a",)),
                    ColumnSpec("a"),
                ),
            )

    def test_spec_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            DatasetSpec("t", (ColumnSpec("a"), ColumnSpec("a")))


class TestPlantedFds:
    @pytest.mark.parametrize(
        "builder",
        [
            generators.iris_spec,
            generators.adult_spec,
            generators.weather_spec,
            generators.ncvoter_spec,
            generators.letter_spec,
        ],
    )
    def test_noise_free_planted_fds_hold(self, builder):
        spec = builder()
        relation = generate(spec, 300)
        data = preprocess(relation)
        planted = planted_fd_columns(spec)
        assert planted, f"{spec.name} should plant at least one FD"
        name_to_index = {
            name: i for i, name in enumerate(relation.column_names)
        }
        for sources, target in planted:
            fd = FD.of(
                [name_to_index[s] for s in sources], name_to_index[target]
            )
            assert fd_holds(data, fd), f"{spec.name}: {sources} -> {target}"

    def test_planted_fds_discovered_by_exact_algorithm(self):
        relation = make("iris", rows=150)
        result = Fdep().discover(relation)
        from repro.fd import inference

        spec = generators.iris_spec()
        name_to_index = {
            name: i for i, name in enumerate(relation.column_names)
        }
        for sources, target in planted_fd_columns(spec):
            fd = FD.of(
                [name_to_index[s] for s in sources], name_to_index[target]
            )
            assert inference.implies(result.fds, fd)


class TestRegistry:
    def test_all_19_datasets_registered(self):
        assert len(dataset_names()) == 19
        assert dataset_names()[0] == "iris"
        assert "uniprot" in dataset_names()

    def test_info_lookup(self):
        entry = info("adult")
        assert entry.paper_rows == 32561
        assert entry.paper_columns == 15
        assert entry.paper_fds == 78

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            info("nonsense")

    def test_make_default_scale(self):
        relation = make("bridges")
        assert relation.num_rows == info("bridges").bench_rows
        assert relation.num_columns == 13

    def test_make_custom_rows(self):
        assert make("iris", rows=40).num_rows == 40

    def test_column_parameter_datasets(self):
        relation = make("plista", rows=50, columns=10)
        assert relation.num_columns == 10

    def test_fixed_schema_rejects_columns(self):
        with pytest.raises(ValueError, match="fixed schema"):
            make("iris", columns=3)

    def test_paper_column_counts(self):
        for name in dataset_names():
            entry = info(name)
            if entry.column_parameter:
                continue
            relation = entry.make(rows=5)
            assert relation.num_columns == entry.paper_columns, name

    def test_uniprot_fd_count_unknown(self):
        assert info("uniprot").paper_fds is None


class TestPatients:
    def test_shape(self):
        relation = patients()
        assert relation.shape == (9, 5)
        assert relation.column_names[0] == "Name"

    def test_first_row_is_kelly(self):
        assert patients().row(0) == ("Kelly", 60, "High", "Female", "drugA")

    def test_exported_column_names_match_relation(self):
        assert patients().column_names == tuple(PATIENT_COLUMNS)
