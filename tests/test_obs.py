"""Tests for repro.obs: recorder, clocks, telemetry, exporters, wiring.

The fake clock makes every trace byte-stable, so span nesting, event
ordering and exporter output are asserted exactly; the end-to-end tests
then run real algorithms under a recorder and check the paper-level
telemetry (phase tree, ``GR_Ncover`` trajectory) comes out right.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms import create
from repro.bench.runner import default_algorithms, run_algorithm
from repro.cli import main as cli_main
from repro.cli import trace_main
from repro.core import EulerFD, EulerFDConfig
from repro.datasets import patients, registry
from repro.obs import (
    NULL_SPAN,
    Clock,
    Event,
    FakeClock,
    PhaseStat,
    Recorder,
    RunTelemetry,
    SpanHandle,
    SystemClock,
    chrome_trace,
    counter,
    current_recorder,
    enabled,
    event_dicts,
    events_from_jsonl,
    gauge,
    install,
    monotonic,
    point,
    recording,
    span,
    summary_tree,
    system_clock,
    to_jsonl,
    uninstall,
    validate_chrome_trace,
    write_trace,
)


class TestClocks:
    def test_system_clock_is_monotonic_and_shared(self):
        clock = system_clock()
        assert clock is system_clock()  # singleton
        assert isinstance(clock, SystemClock)
        assert isinstance(clock, Clock)  # satisfies the protocol
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_monotonic_reads_the_system_clock(self):
        first = monotonic()
        second = monotonic()
        assert second >= first

    def test_fake_clock_advances_manually(self):
        clock = FakeClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_fake_clock_auto_tick(self):
        clock = FakeClock(tick=1.0)
        assert [clock.now(), clock.now(), clock.now()] == [0.0, 1.0, 2.0]
        assert isinstance(clock, Clock)


class TestRecorder:
    def test_span_nesting_and_ordering_with_fake_clock(self):
        recorder = Recorder(clock=FakeClock(tick=1.0))
        with recorder.span("outer", label="a"):
            recorder.counter("hits")
            with recorder.span("inner"):
                recorder.point("curve", 1.0, 0.5)
        outer, inner = recorder.span_events()
        assert (outer.name, inner.name) == ("outer", "inner")
        assert outer.parent is None and inner.parent == outer.seq
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.attrs == {"label": "a"}
        # FakeClock(tick=1): start_time=0, outer opens at 1, counter at 2,
        # inner opens at 3, point at 4, inner closes at 5, outer at 6.
        assert (outer.time, outer.end) == (1.0, 6.0)
        assert (inner.time, inner.end) == (3.0, 5.0)
        assert [event.seq for event in recorder.events] == [0, 1, 2, 3]

    def test_events_are_ordered_by_start(self):
        recorder = Recorder(clock=FakeClock(tick=1.0))
        with recorder.span("a"):
            with recorder.span("b"):
                pass
        with recorder.span("c"):
            pass
        assert [event.name for event in recorder.span_events()] == ["a", "b", "c"]
        times = [event.time for event in recorder.events]
        assert times == sorted(times)

    def test_counter_accumulates_totals(self):
        recorder = Recorder(clock=FakeClock())
        recorder.counter("pairs", 3)
        recorder.counter("pairs", 4)
        recorder.counter("rounds")
        assert recorder.counter_totals == {"pairs": 7, "rounds": 1}

    def test_series_collects_points_in_order(self):
        recorder = Recorder(clock=FakeClock())
        recorder.point("gr", 1.0, 0.9)
        recorder.point("gr", 2.0, 0.4)
        recorder.point("other", 1.0, 7.0)
        assert recorder.series("gr") == [(1.0, 0.9), (2.0, 0.4)]

    def test_mark_and_events_since_slice_the_log(self):
        recorder = Recorder(clock=FakeClock())
        recorder.counter("before")
        mark = recorder.mark()
        recorder.counter("after")
        names = [event.name for event in recorder.events_since(mark)]
        assert names == ["after"]
        assert len(recorder) == 2

    def test_out_of_order_close_unwinds_cleanly(self):
        recorder = Recorder(clock=FakeClock(tick=1.0))
        outer = recorder.span("outer")
        recorder.span("inner")  # handle dropped without closing
        outer.__exit__(None, None, None)
        assert all(event.end is not None for event in recorder.span_events())
        # the stack is empty again: a new span is top-level
        with recorder.span("next"):
            pass
        assert recorder.span_events()[-1].parent is None

    def test_span_handle_set_attaches_attrs(self):
        recorder = Recorder(clock=FakeClock())
        with recorder.span("phase") as handle:
            assert isinstance(handle, SpanHandle)
            handle.set(rounds=3)
        assert recorder.span_events()[0].attrs == {"rounds": 3}


class TestFrontDoor:
    def test_disabled_helpers_are_noops(self):
        assert current_recorder() is None
        assert not enabled()
        handle = span("anything", key="value")
        assert handle is NULL_SPAN  # the shared singleton, no allocation
        with handle:
            counter("ignored")
            gauge("ignored", 1.0)
            point("ignored", 1.0, 2.0)
        assert current_recorder() is None

    def test_null_span_set_discards(self):
        NULL_SPAN.set(anything="goes")  # must not raise nor store

    def test_install_and_uninstall(self):
        recorder = Recorder(clock=FakeClock())
        install(recorder)
        try:
            assert enabled()
            assert current_recorder() is recorder
            counter("seen")
        finally:
            uninstall()
        assert not enabled()
        counter("unseen")
        assert recorder.counter_totals == {"seen": 1}

    def test_recording_restores_previous_recorder(self):
        outer_recorder = Recorder(clock=FakeClock())
        with recording(outer_recorder):
            with recording() as inner_recorder:
                assert current_recorder() is inner_recorder
                counter("inner")
            assert current_recorder() is outer_recorder
            counter("outer")
        assert current_recorder() is None
        assert outer_recorder.counter_totals == {"outer": 1}
        assert inner_recorder.counter_totals == {"inner": 1}

    def test_module_helpers_route_to_active_recorder(self):
        with recording(Recorder(clock=FakeClock(tick=1.0))) as recorder:
            with span("phase", cycle=1):
                counter("pairs", 5)
                gauge("occupancy", 3.0)
                point("gr", 1.0, 0.25)
        kinds = [event.kind for event in recorder.events]
        assert kinds == ["span", "counter", "gauge", "point"]
        assert all(event.parent == 0 for event in recorder.events[1:])


class TestTelemetry:
    def _recorded(self) -> Recorder:
        recorder = Recorder(clock=FakeClock(tick=1.0))
        with recorder.span("cycle"):
            with recorder.span("sampling"):
                recorder.counter("pairs", 10)
            with recorder.span("inversion"):
                recorder.point("gr", 1.0, 0.5)
        return recorder

    def test_phase_tree_paths_counts_and_self_time(self):
        telemetry = RunTelemetry.from_recorder(self._recorded())
        paths = [stat.path for stat in telemetry.phases]
        assert paths == ["cycle", "cycle/sampling", "cycle/inversion"]
        cycle = telemetry.phase("cycle")
        assert isinstance(cycle, PhaseStat)
        assert cycle.count == 1
        sampling = telemetry.phase("cycle/sampling")
        inversion = telemetry.phase("cycle/inversion")
        # self time of the parent excludes both children
        expected_self = cycle.total_seconds - (
            sampling.total_seconds + inversion.total_seconds
        )
        assert cycle.self_seconds == pytest.approx(expected_self)
        assert telemetry.phase("absent") is None

    def test_counters_series_and_dict_view(self):
        telemetry = RunTelemetry.from_recorder(self._recorded())
        assert telemetry.counters == {"pairs": 10}
        assert telemetry.series["gr"] == ((1.0, 0.5),)
        assert telemetry.series_values("gr") == [0.5]
        assert telemetry.series_values("absent") == []
        payload = telemetry.to_dict()
        assert payload["counters"] == {"pairs": 10}
        assert payload["series"] == {"gr": [[1.0, 0.5]]}
        assert [phase["path"] for phase in payload["phases"]] == [
            "cycle",
            "cycle/sampling",
            "cycle/inversion",
        ]
        json.dumps(payload)  # JSON-serializable all the way down

    def test_open_spans_are_excluded_from_phases(self):
        recorder = Recorder(clock=FakeClock(tick=1.0))
        recorder.span("left-open")
        telemetry = RunTelemetry.from_recorder(recorder)
        assert telemetry.phases == ()

    def test_mark_scopes_telemetry_to_one_run(self):
        recorder = Recorder(clock=FakeClock(tick=1.0))
        recorder.counter("first-run")
        mark = recorder.mark()
        recorder.counter("second-run")
        telemetry = RunTelemetry.from_recorder(recorder, mark)
        assert telemetry.counters == {"second-run": 1}


class TestExporters:
    def _recorded(self) -> Recorder:
        recorder = Recorder(clock=FakeClock(tick=1.0))
        with recorder.span("outer", cycle=1):
            recorder.counter("pairs", 2)
            recorder.counter("pairs", 3)
            recorder.gauge("occupancy", 4.0)
            recorder.point("gr", 1.0, 0.5)
        return recorder

    def test_jsonl_round_trip(self):
        recorder = self._recorded()
        rows = events_from_jsonl(to_jsonl(recorder))
        assert rows == event_dicts(recorder)
        assert [row["kind"] for row in rows] == [
            "span",
            "counter",
            "counter",
            "gauge",
            "point",
        ]
        assert rows[0]["end"] is not None
        assert rows[0]["attrs"] == {"cycle": 1}
        assert rows[4]["x"] == 1.0 and rows[4]["value"] == 0.5

    def test_chrome_trace_is_schema_valid(self):
        payload = chrome_trace(self._recorded())
        assert validate_chrome_trace(payload) == []
        # survives JSON round-trip (what a viewer actually loads)
        assert validate_chrome_trace(json.loads(json.dumps(payload))) == []

    def test_chrome_trace_shapes(self):
        payload = chrome_trace(self._recorded(), process_name="test")
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "test"}
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == 1
        assert complete[0]["name"] == "outer"
        assert complete[0]["dur"] > 0
        counters = [event for event in events if event["ph"] == "C"]
        # two counter bumps (running totals), one gauge, one point
        assert [event["args"] for event in counters] == [
            {"pairs": 2.0},
            {"pairs": 5.0},
            {"occupancy": 4.0},
            {"gr": 0.5},
        ]

    def test_chrome_trace_open_span_becomes_begin_event(self):
        recorder = Recorder(clock=FakeClock(tick=1.0))
        recorder.span("unfinished")
        payload = chrome_trace(recorder)
        assert validate_chrome_trace(payload) == []
        phases = [event["ph"] for event in payload["traceEvents"]]
        assert "B" in phases and "X" not in phases

    def test_validate_chrome_trace_rejects_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        bad = {"traceEvents": [{"ph": "Z", "name": "", "ts": -1}]}
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 3

    def test_summary_tree_renders_phases_counters_series(self):
        text = summary_tree(self._recorded())
        assert "outer" in text
        assert "pairs" in text and "5" in text
        assert "gr" in text and "1 points" in text

    def test_write_trace_formats(self, tmp_path):
        recorder = self._recorded()
        jsonl_path = tmp_path / "trace.jsonl"
        write_trace(recorder, jsonl_path, format="jsonl")
        assert events_from_jsonl(jsonl_path.read_text()) == event_dicts(recorder)
        chrome_path = tmp_path / "trace.json"
        write_trace(recorder, chrome_path, format="chrome")
        assert validate_chrome_trace(json.loads(chrome_path.read_text())) == []
        summary_path = tmp_path / "trace.txt"
        write_trace(recorder, summary_path, format="summary")
        assert "outer" in summary_path.read_text()
        with pytest.raises(ValueError):
            write_trace(recorder, tmp_path / "x", format="yaml")


class TestEndToEnd:
    def test_eulerfd_trace_has_nested_double_cycle_spans(self, patient_relation):
        with recording() as recorder:
            EulerFD().discover(patient_relation)
        by_name: dict[str, Event] = {}
        for event in recorder.span_events():
            by_name.setdefault(event.name, event)
        for name in ("discover", "preprocess", "cycle", "sampling", "inversion"):
            assert name in by_name, f"missing span {name!r}"
            assert by_name[name].end is not None
        discover_span = by_name["discover"]
        assert discover_span.parent is None
        assert by_name["preprocess"].parent == discover_span.seq
        assert by_name["cycle"].parent == discover_span.seq
        assert by_name["sampling"].parent == by_name["cycle"].seq
        assert by_name["inversion"].parent == by_name["cycle"].seq
        payload = chrome_trace(recorder)
        assert validate_chrome_trace(payload) == []

    def test_eulerfd_gr_ncover_series_descends_to_threshold(self):
        relation = registry.make("echocardiogram", rows=200, seed=3)
        with recording():
            result = EulerFD().discover(relation)
        telemetry = result.telemetry
        assert telemetry is not None
        values = telemetry.series_values("gr_ncover")
        assert len(values) >= 2
        assert all(a >= b for a, b in zip(values, values[1:])), values
        assert values[-1] <= EulerFDConfig().th_ncover
        # the second-cycle trajectory exists too
        assert telemetry.series_values("gr_pcover")

    def test_telemetry_counters_match_legacy_stats(self, patient_relation):
        with recording():
            result = EulerFD().discover(patient_relation)
        counters = result.telemetry.counters
        assert counters["sampler.pairs_compared"] == result.stats["pairs_compared"]
        assert counters["sampler.new_non_fds"] == result.stats["new_non_fds"]
        assert counters["inverter.non_fds_inverted"] > 0

    def test_discover_span_wraps_every_registered_algorithm(self, tiny_relation):
        for key in ("eulerfd", "tane", "fdep", "hyfd", "aidfd"):
            with recording() as recorder:
                create(key).discover(tiny_relation)
            roots = [
                event for event in recorder.span_events() if event.parent is None
            ]
            assert [event.name for event in roots] == ["discover"], key
            assert roots[0].attrs["relation"] == tiny_relation.name

    def test_untraced_run_records_nothing_and_matches_traced_fds(
        self, patient_relation
    ):
        plain = EulerFD().discover(patient_relation)
        assert plain.telemetry is None
        with recording() as recorder:
            traced = EulerFD().discover(patient_relation)
        assert recorder.events  # the same code path emitted events when on
        assert traced.fds == plain.fds
        assert traced.stats.keys() == plain.stats.keys()
        assert "telemetry" not in plain.to_dict()
        assert "telemetry" in traced.to_dict()

    def test_bench_runner_trace_flag(self, patient_relation):
        factory = default_algorithms()["EulerFD"]
        untraced = run_algorithm(factory, patient_relation)
        assert untraced.telemetry is None
        traced = run_algorithm(factory, patient_relation, trace=True)
        assert traced.telemetry is not None
        # Preprocessing happens when the runner builds the execution
        # context, before the run's telemetry slice starts; the run
        # itself still carries the discover phases and the engine's
        # cache counters.
        assert traced.telemetry.phase("discover/cycle") is not None
        from repro.engine import get_backend

        assert traced.backend == get_backend().name
        assert traced.partition_cache["hits"] > 0
        assert traced.fds == untraced.fds


class TestTraceCli:
    def test_trace_subcommand_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        status = cli_main(
            [
                "trace",
                "--dataset",
                "iris",
                "--rows",
                "60",
                "--seed",
                "1",
                "--trace-out",
                str(out),
                "--format",
                "chrome",
            ]
        )
        assert status == 0
        assert "wrote chrome trace" in capsys.readouterr().out
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_trace_main_prints_summary(self, capsys):
        status = trace_main(["--dataset", "iris", "--rows", "60", "--seed", "1"])
        assert status == 0
        out = capsys.readouterr().out
        assert "phases:" in out and "discover" in out

    def test_trace_main_jsonl_to_stdout(self, capsys):
        status = trace_main(
            ["--dataset", "iris", "--rows", "60", "--seed", "1", "--format", "jsonl"]
        )
        assert status == 0
        rows = events_from_jsonl(capsys.readouterr().out)
        assert any(row["kind"] == "span" for row in rows)
