"""Tests for the Fdep all-pairs induction baseline."""

from __future__ import annotations

from repro.algorithms import BruteForce, Fdep
from repro.algorithms.fdep import compute_agree_masks
from repro.fd import FD, attrset
from repro.relation import Relation, preprocess


class TestAgreeMasks:
    def test_patient_masks_include_paper_pairs(self, patient_relation):
        data = preprocess(patient_relation)
        masks = compute_agree_masks(data)
        # t2/t8 agree exactly on Gender; t2/t7 agree on Age and Blood.
        assert 0b01000 in masks
        assert data.agree_mask(1, 6) in masks

    def test_full_agreement_excluded(self):
        relation = Relation.from_rows([(1, 2), (1, 2)], ["a", "b"])
        assert compute_agree_masks(preprocess(relation)) == set()

    def test_empty_agreement_included(self):
        relation = Relation.from_rows([(1, 2), (3, 4)], ["a", "b"])
        assert compute_agree_masks(preprocess(relation)) == {0}

    def test_masks_are_exact(self):
        import random

        rng = random.Random(3)
        rows = [tuple(rng.randint(0, 2) for _ in range(4)) for _ in range(20)]
        relation = Relation.from_rows(rows)
        data = preprocess(relation)
        expected = set()
        universe = attrset.universe(4)
        for i in range(20):
            for j in range(i + 1, 20):
                mask = data.agree_mask(i, j)
                if mask != universe:
                    expected.add(mask)
        assert compute_agree_masks(data) == expected

    def test_wide_relation_masks(self):
        """Columns beyond 64 exercise multi-word packing."""
        width = 70
        row_a = tuple(range(width))
        row_b = tuple(v if i % 2 == 0 else -1 for i, v in enumerate(row_a))
        relation = Relation.from_rows([row_a, row_b])
        masks = compute_agree_masks(preprocess(relation))
        expected = sum(1 << i for i in range(width) if i % 2 == 0)
        assert masks == {expected}


class TestDiscovery:
    def test_patients(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert Fdep().discover(patient_relation).fds == truth

    def test_stats(self, patient_relation):
        stats = Fdep().discover(patient_relation).stats
        assert stats["pairs_compared"] == 36  # C(9, 2)
        assert stats["distinct_agree_sets"] > 0
        assert stats["ncover_size"] > 0

    def test_empty_relation(self):
        relation = Relation.from_rows([], ["a"])
        assert Fdep().discover(relation).fds == {FD(0, 0)}

    def test_all_duplicates(self):
        relation = Relation.from_rows([("x", 1)] * 3, ["a", "b"])
        assert Fdep().discover(relation).fds == {FD(0, 0), FD(0, 1)}

    def test_null_semantics(self):
        relation = Relation.from_rows([(None, 1), (None, 2)], ["a", "b"])
        equal = Fdep(null_equals_null=True).discover(relation)
        distinct = Fdep(null_equals_null=False).discover(relation)
        assert FD.of([0], 1) not in equal.fds
        assert FD.of([0], 1) in distinct.fds
