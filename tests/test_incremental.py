"""Tests for incremental FD maintenance under insertions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BruteForce
from repro.core import IncrementalEulerFD
from repro.datasets import patients
from repro.fd import FD, inference
from repro.relation import Relation


def rows_of(*rows):
    return [tuple(row) for row in rows]


class TestExhaustiveBaseIsExact:
    def test_append_invalidates_fd(self):
        base = Relation.from_rows(
            rows_of((1, "a"), (2, "b")), ["x", "y"]
        )
        session = IncrementalEulerFD(base, exhaustive_base=True)
        assert FD.of([0], 1) in session.current_result().fds
        result = session.append(rows_of((1, "z")))
        assert FD.of([0], 1) not in result.fds

    def test_matches_scratch_discovery_after_each_append(self):
        rng = random.Random(6)
        all_rows = [
            tuple(rng.randint(0, 3) for _ in range(4)) for _ in range(40)
        ]
        base = Relation.from_rows(all_rows[:10], ["a", "b", "c", "d"])
        session = IncrementalEulerFD(base, exhaustive_base=True)
        cursor = 10
        for batch_size in (1, 5, 12, 12):
            batch = all_rows[cursor : cursor + batch_size]
            cursor += batch_size
            result = session.append(batch)
            scratch = BruteForce().discover(
                Relation.from_rows(all_rows[:cursor], ["a", "b", "c", "d"])
            )
            assert result.fds == scratch.fds, cursor

    def test_patients_appended_row_by_row(self, patient_relation):
        rows = list(patient_relation.iter_rows())
        base = Relation.from_rows(rows[:3], patient_relation.column_names)
        session = IncrementalEulerFD(base, exhaustive_base=True)
        for row in rows[3:]:
            result = session.append([row])
        truth = BruteForce().discover(patient_relation).fds
        assert result.fds == truth

    def test_empty_base(self):
        base = Relation.from_rows([], ["a", "b"])
        session = IncrementalEulerFD(base, exhaustive_base=True)
        result = session.append(rows_of((1, "x"), (2, "x"), (1, "x")))
        scratch = BruteForce().discover(
            Relation.from_rows(rows_of((1, "x"), (2, "x"), (1, "x")), ["a", "b"])
        )
        assert result.fds == scratch.fds

    def test_duplicate_rows_append(self):
        base = Relation.from_rows(rows_of((1, 2)), ["a", "b"])
        session = IncrementalEulerFD(base, exhaustive_base=True)
        result = session.append(rows_of((1, 2), (1, 2)))
        assert result.fds == {FD(0, 0), FD(0, 1)}


class TestApproximateBase:
    def test_safety_invariant(self):
        """True FDs of the grown relation are always implied."""
        rng = random.Random(9)
        all_rows = [
            (rng.randint(0, 9), rng.randint(0, 9), rng.randint(0, 2))
            for _ in range(120)
        ]
        base = Relation.from_rows(all_rows[:80], ["a", "b", "c"])
        session = IncrementalEulerFD(base)
        result = session.append(all_rows[80:])
        truth = BruteForce().discover(
            Relation.from_rows(all_rows, ["a", "b", "c"])
        ).fds
        for fd in truth:
            assert inference.implies(result.fds, fd)

    def test_stats_track_appends(self):
        base = Relation.from_rows(rows_of((1, "a"), (2, "b")), ["x", "y"])
        session = IncrementalEulerFD(base)
        session.append(rows_of((3, "c")))
        result = session.append(rows_of((4, "d")))
        assert result.stats["appends"] == 2
        assert result.num_rows == 4
        assert result.stats["pairs_compared"] >= 0


class TestValidation:
    def test_arity_mismatch_rejected(self):
        session = IncrementalEulerFD(
            Relation.from_rows(rows_of((1, 2)), ["a", "b"]),
            exhaustive_base=True,
        )
        with pytest.raises(ValueError, match="arity"):
            session.append([(1, 2, 3)])

    def test_append_empty_batch_is_noop(self):
        session = IncrementalEulerFD(
            Relation.from_rows(rows_of((1, 2), (2, 2)), ["a", "b"]),
            exhaustive_base=True,
        )
        before = session.current_result().fds
        after = session.append([]).fds
        assert before == after


class TestDeltaEquivalenceAcrossBackends:
    """K appended batches == from-scratch discovery, on every engine.

    The delta path (in-place encoding growth, partition-store deltas,
    touched-cluster pair enumeration) must be invisible in the output:
    identical FD sets to a cold run over the concatenated relation, for
    every backend and for serial and process-parallel pools alike.
    """

    BACKENDS = ["numpy", "python", "columnar"]
    JOBS = [None, "process:2"]

    @pytest.mark.parametrize("jobs", JOBS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batches_equal_scratch(self, backend, jobs):
        rng = random.Random(77)
        all_rows = [
            tuple(rng.randint(0, 4) for _ in range(4)) for _ in range(60)
        ]
        base = Relation.from_rows(all_rows[:20], ["a", "b", "c", "d"])
        session = IncrementalEulerFD(
            base, exhaustive_base=True, jobs=jobs, backend=backend
        )
        cursor = 20
        for batch_size in (7, 1, 18, 14):
            batch = all_rows[cursor : cursor + batch_size]
            cursor += batch_size
            result = session.append(batch)
            scratch = BruteForce().discover(
                Relation.from_rows(all_rows[:cursor], ["a", "b", "c", "d"])
            )
            assert result.fds == scratch.fds, (backend, jobs, cursor)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dtype_promotion_batch(self, backend):
        """A batch pushing a column across the u8/u16 ladder stays exact."""
        rng = random.Random(5)
        base_rows = [
            (value, value % 7, rng.randint(0, 2)) for value in range(250)
        ]
        batch = [
            (value, value % 7, rng.randint(0, 2))
            for value in range(250, 300)
        ]
        session = IncrementalEulerFD(
            Relation.from_rows(base_rows, ["a", "b", "c"]),
            exhaustive_base=True,
            backend=backend,
        )
        result = session.append(batch)
        if backend == "columnar":
            encoded = session.context.data.encoded
            assert encoded is not None
            assert encoded.columns[0].dtype.itemsize >= 2
        scratch = BruteForce().discover(
            Relation.from_rows(base_rows + batch, ["a", "b", "c"])
        )
        assert result.fds == scratch.fds

    def test_result_diff_reports_retractions(self):
        base = Relation.from_rows(rows_of((1, "a"), (2, "b")), ["x", "y"])
        session = IncrementalEulerFD(base, exhaustive_base=True)
        before = session.current_result()
        after = session.append(rows_of((1, "z")))
        diff = after.diff(before)
        assert FD.of([0], 1) in diff.retracted
        assert after.stats["fds_retracted"] >= 1
        assert all(fd in after.fds for fd in diff.added)


class TestPropertyExactMaintenance:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=24,
        ),
        st.integers(min_value=0, max_value=23),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_point_never_matters(self, rows, cut):
        cut = min(cut, len(rows))
        base = Relation.from_rows(rows[:cut], ["a", "b", "c"])
        session = IncrementalEulerFD(base, exhaustive_base=True)
        result = session.append(rows[cut:])
        scratch = BruteForce().discover(
            Relation.from_rows(rows, ["a", "b", "c"])
        )
        assert result.fds == scratch.fds
