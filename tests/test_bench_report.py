"""Tests for the benchmark-report assembler."""

from __future__ import annotations

from repro.bench.report import SECTION_ORDER, build_report, main


class TestBuildReport:
    def test_empty_directory(self, tmp_path):
        report = build_report(tmp_path)
        assert "No archived benchmark results" in report

    def test_ordered_sections(self, tmp_path):
        (tmp_path / "test_fig6_row_scalability.txt").write_text("FIG6 DATA")
        (tmp_path / "test_table3_small_datasets.txt").write_text("T3 DATA")
        report = build_report(tmp_path)
        assert report.index("Table III") < report.index("Figure 6")
        assert "T3 DATA" in report
        assert "FIG6 DATA" in report

    def test_unknown_files_appended(self, tmp_path):
        (tmp_path / "test_custom_thing.txt").write_text("CUSTOM")
        report = build_report(tmp_path)
        assert "test_custom_thing" in report
        assert "CUSTOM" in report

    def test_section_order_covers_all_paper_artifacts(self):
        titles = " ".join(title for _, title in SECTION_ORDER)
        for artifact in ("Table III", "Figure 6", "Figure 7", "Figure 8",
                         "Figure 9", "Figure 10", "Figure 11", "Table V"):
            assert artifact in titles

    def test_main_prints(self, tmp_path, capsys):
        (tmp_path / "test_x.txt").write_text("XDATA")
        assert main([str(tmp_path)]) == 0
        assert "XDATA" in capsys.readouterr().out
