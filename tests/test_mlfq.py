"""Tests for the multilevel feedback queue."""

from __future__ import annotations

import pytest

from repro.core import MlfqPolicy, MultilevelFeedbackQueue


def make_queue(num_queues: int = 4) -> MultilevelFeedbackQueue[str]:
    return MultilevelFeedbackQueue(MlfqPolicy.with_queues(num_queues))


class TestScheduling:
    def test_high_capa_served_first(self):
        queue = make_queue()
        queue.push("slow", 0.05)
        queue.push("fast", 20.0)
        queue.push("medium", 2.0)
        assert queue.pop() == "fast"
        assert queue.pop() == "medium"
        assert queue.pop() == "slow"

    def test_fifo_within_a_queue(self):
        queue = make_queue()
        queue.push("first", 5.0)
        queue.push("second", 3.0)  # same [1, 10) bucket
        assert queue.pop() == "first"
        assert queue.pop() == "second"

    def test_reassignment_to_tail(self):
        """Algorithm 1: a resampled cluster re-enters at the queue tail."""
        queue = make_queue()
        queue.push("a", 5.0)
        queue.push("b", 5.0)
        item = queue.pop()
        queue.push(item, 5.0)
        assert queue.pop() == "b"
        assert queue.pop() == "a"

    def test_push_returns_queue_index(self):
        queue = make_queue()  # bounds 10, 1, 0.1, 0
        assert queue.push("x", 100.0) == 0
        assert queue.push("y", 0.5) == 2
        assert queue.push("z", 0.0) == 3

    def test_zero_capa_lands_in_lowest_queue(self):
        queue = make_queue()
        assert queue.push("idle", 0.0) == 3


class TestBookkeeping:
    def test_len_and_bool(self):
        queue = make_queue()
        assert not queue
        assert len(queue) == 0
        queue.push("a", 1.0)
        assert queue
        assert len(queue) == 1
        queue.pop()
        assert not queue

    def test_queue_sizes(self):
        queue = make_queue()
        queue.push("a", 50.0)
        queue.push("b", 50.0)
        queue.push("c", 0.0)
        assert queue.queue_sizes() == (2, 0, 0, 1)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            make_queue().pop()

    def test_clear(self):
        queue = make_queue()
        queue.push("a", 1.0)
        queue.push("b", 0.0)
        queue.clear()
        assert len(queue) == 0
        assert queue.queue_sizes() == (0, 0, 0, 0)

    def test_single_queue_is_plain_fifo(self):
        queue = make_queue(1)
        for name, capa in (("a", 0.0), ("b", 99.0), ("c", 1.0)):
            queue.push(name, capa)
        assert [queue.pop() for _ in range(3)] == ["a", "b", "c"]
