"""Tests for the FD value type and its helpers."""

from __future__ import annotations

import pytest

from repro.fd import FD, attrset, sort_for_cover_insertion, violations_from_pair


class TestFDValue:
    def test_of_builds_mask(self):
        fd = FD.of([0, 2], 1)
        assert fd.lhs == 0b101
        assert fd.rhs == 1

    def test_lhs_indices(self):
        assert FD(0b1010, 0).lhs_indices == (1, 3)

    def test_arity(self):
        assert FD(0b111, 3).arity == 3
        assert FD(0, 3).arity == 0

    def test_rejects_negative_parts(self):
        with pytest.raises(ValueError):
            FD(-1, 0)
        with pytest.raises(ValueError):
            FD(0, -2)

    def test_equality_and_hash(self):
        assert FD(0b11, 2) == FD(0b11, 2)
        assert hash(FD(0b11, 2)) == hash(FD(0b11, 2))
        assert FD(0b11, 2) != FD(0b11, 3)

    def test_ordering_is_total(self):
        fds = [FD(0b10, 1), FD(0b01, 2), FD(0b01, 0)]
        assert sorted(fds) == [FD(0b01, 0), FD(0b01, 2), FD(0b10, 1)]

    def test_trivial(self):
        assert FD(0b101, 2).is_trivial()
        assert not FD(0b101, 1).is_trivial()
        assert not FD(0, 0).is_trivial()  # {} -> A is non-trivial


class TestGeneralization:
    """Definition 3 of the paper."""

    def test_generalizes_on_subset(self):
        assert FD(0b001, 3).generalizes(FD(0b011, 3))

    def test_generalizes_is_reflexive(self):
        assert FD(0b011, 3).generalizes(FD(0b011, 3))

    def test_no_generalization_across_rhs(self):
        assert not FD(0b001, 2).generalizes(FD(0b011, 3))

    def test_specializes_mirror(self):
        special, general = FD(0b111, 4), FD(0b100, 4)
        assert special.specializes(general)
        assert not general.specializes(special)

    def test_incomparable_sets(self):
        # Example 2: ABG vs AGM — neither contains the other.
        left = FD.of([1, 2, 3], 0)
        right = FD.of([1, 3, 4], 0)
        assert not left.generalizes(right)
        assert not left.specializes(right)


class TestFormat:
    def test_format_with_names(self):
        fd = FD.of([3, 4], 2)
        names = ["Name", "Age", "Blood pressure", "Gender", "Medicine"]
        assert fd.format(names) == "[Gender, Medicine] -> Blood pressure"

    def test_format_without_names(self):
        assert str(FD.of([0], 1)) == "[0] -> 1"

    def test_format_empty_lhs(self):
        assert FD(0, 2).format() == "[] -> 2"


class TestHelpers:
    def test_sort_for_cover_insertion_orders_by_descending_arity(self):
        fds = [FD(0b1, 1), FD(0b111, 3), FD(0b11, 2)]
        arities = [fd.arity for fd in sort_for_cover_insertion(fds)]
        assert arities == [3, 2, 1]

    def test_sort_is_deterministic_on_ties(self):
        fds = [FD(0b101, 1), FD(0b011, 1), FD(0b011, 0)]
        assert sort_for_cover_insertion(fds) == sort_for_cover_insertion(
            list(reversed(fds))
        )

    def test_violations_from_pair(self):
        # Agreement on attributes {0, 2} of 4: attributes 1 and 3 violated.
        got = set(violations_from_pair(0b0101, 4))
        assert got == {FD(0b0101, 1), FD(0b0101, 3)}

    def test_violations_from_identical_pair(self):
        assert list(violations_from_pair(attrset.universe(3), 3)) == []

    def test_violations_from_fully_disagreeing_pair(self):
        got = set(violations_from_pair(0, 2))
        assert got == {FD(0, 0), FD(0, 1)}
