"""Tests for the cardinality-bucketed LHS index (reference implementation)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.fd.lhs_index import BitsetLhsIndex, LhsIndex

masks = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestMutation:
    def test_add_new(self):
        index = BitsetLhsIndex()
        assert index.add(0b101)
        assert 0b101 in index
        assert len(index) == 1

    def test_add_duplicate(self):
        index = BitsetLhsIndex([0b101])
        assert not index.add(0b101)
        assert len(index) == 1

    def test_remove_present(self):
        index = BitsetLhsIndex([0b101, 0b011])
        assert index.remove(0b101)
        assert 0b101 not in index
        assert len(index) == 1

    def test_remove_absent(self):
        index = BitsetLhsIndex([0b101])
        assert not index.remove(0b111)
        assert len(index) == 1

    def test_empty_mask_storable(self):
        index = BitsetLhsIndex()
        assert index.add(0)
        assert 0 in index
        assert index.contains_subset(0b1111)

    def test_iteration_sorted_by_cardinality_then_value(self):
        index = BitsetLhsIndex([0b111, 0b1, 0b11])
        assert list(index) == [0b1, 0b11, 0b111]

    def test_satisfies_protocol(self):
        assert isinstance(BitsetLhsIndex(), LhsIndex)


class TestQueries:
    def test_contains_superset(self):
        index = BitsetLhsIndex([0b1100, 0b0011])
        assert index.contains_superset(0b0100)
        assert index.contains_superset(0b1100)  # non-strict
        assert not index.contains_superset(0b1001)

    def test_contains_subset(self):
        index = BitsetLhsIndex([0b1100, 0b0011])
        assert index.contains_subset(0b1110)
        assert index.contains_subset(0b0011)  # non-strict
        assert not index.contains_subset(0b1001)

    def test_find_supersets(self):
        index = BitsetLhsIndex([0b111, 0b101, 0b010])
        assert index.find_supersets(0b001) == [0b101, 0b111]

    def test_find_subsets(self):
        index = BitsetLhsIndex([0b111, 0b101, 0b010, 0b001])
        assert index.find_subsets(0b101) == [0b001, 0b101]

    def test_queries_on_empty_index(self):
        index = BitsetLhsIndex()
        assert not index.contains_superset(0)
        assert not index.contains_subset(0)
        assert index.find_supersets(0b1) == []
        assert index.find_subsets(0b1) == []


class TestProperties:
    @given(st.lists(masks, max_size=30), masks)
    def test_queries_match_naive(self, stored, query):
        index = BitsetLhsIndex(iter(stored))
        unique = set(stored)
        assert len(index) == len(unique)
        naive_supersets = sorted(m for m in unique if query & ~m == 0)
        naive_subsets = sorted(m for m in unique if m & ~query == 0)
        assert index.find_supersets(query) == naive_supersets
        assert index.find_subsets(query) == naive_subsets
        assert index.contains_superset(query) == bool(naive_supersets)
        assert index.contains_subset(query) == bool(naive_subsets)

    @given(st.lists(masks, max_size=30))
    def test_add_remove_roundtrip(self, stored):
        index = BitsetLhsIndex()
        for mask in stored:
            index.add(mask)
        for mask in set(stored):
            assert index.remove(mask)
        assert len(index) == 0
        assert list(index) == []
