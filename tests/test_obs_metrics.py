"""Tests for repro.obs.metrics + repro.obs.prof and their wiring.

Three layers are covered: the registry itself (deterministic bucketing
under a FakeClock, exporter round-trips, the zero-overhead-when-disabled
front door), the instrumented subsystems (partition-store byte
accounting, shm segment gauges, worker-pool queue gauges, per-phase
memory attribution), and the end-to-end ``repro-fd metrics`` /
``repro-metrics`` CLI.  The overhead test is the committed form of the
fast-path promise: a discover with metrics disabled must sit within 2%
of the same discover with every metric helper stubbed out entirely.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

import repro.core.eulerfd as eulerfd_module
import repro.core.incremental as incremental_module
import repro.core.inversion as inversion_module
import repro.core.sampler as sampler_module
import repro.engine.context as context_module
import repro.engine.parallel as parallel_module
import repro.engine.shm as shm_module
import repro.engine.store as store_module
import repro.fd.covers as covers_module
from repro.algorithms import create
from repro.cli import main as cli_main
from repro.cli import metrics_main, serve_scrape
from repro.datasets import registry
from repro.engine import (
    ExecutionContext,
    WorkerPool,
    close_all_pools,
    use_context,
)
from repro.engine.shm import publish_matrix
from repro.engine.store import (
    CLUSTER_OVERHEAD_BYTES,
    ENTRY_OVERHEAD_BYTES,
    ROW_REF_BYTES,
    PartitionStore,
    partition_cost_bytes,
)
from repro.fd import attrset
from repro.obs import (
    NULL_PHASE,
    NULL_TIMER,
    FakeClock,
    Histogram,
    MemoryProfiler,
    MetricsRegistry,
    collecting_metrics,
    current_metrics,
    current_profiler,
    exponential_buckets,
    install_metrics,
    memory_profiling,
    metric_gauge_add,
    metric_gauge_max,
    metric_gauge_set,
    metric_inc,
    metric_observe,
    metric_time,
    metrics_enabled,
    metrics_from_jsonl,
    metrics_jsonl,
    names,
    peak_rss_bytes,
    phase_memory,
    prometheus_name,
    prometheus_text,
    uninstall_metrics,
)
from repro.relation.preprocess import preprocess


@pytest.fixture(autouse=True)
def no_leaked_registry():
    """Every test starts and ends with metrics collection disabled."""
    uninstall_metrics()
    yield
    uninstall_metrics()


# -- histograms and buckets ----------------------------------------------------


class TestExponentialBuckets:
    def test_default_ladder(self):
        bounds = exponential_buckets()
        assert len(bounds) == 16
        assert bounds[0] == pytest.approx(0.001)
        assert bounds[1] == pytest.approx(0.002)
        assert bounds[-1] == pytest.approx(0.001 * 2**15)

    def test_custom_ladder(self):
        assert exponential_buckets(1.0, 10.0, 3) == (1.0, 10.0, 100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": 0.0},
            {"start": -1.0},
            {"growth": 1.0},
            {"growth": 0.5},
            {"count": 0},
        ],
    )
    def test_rejects_degenerate_ladders(self, kwargs):
        with pytest.raises(ValueError):
            exponential_buckets(**kwargs)


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value, index in [(0.5, 0), (1.0, 0), (1.5, 1), (2.0, 1), (3.0, 2)]:
            assert histogram.bucket_index(value) == index
        assert histogram.bucket_index(5.0) == 3  # the +Inf slot

    def test_observe_accumulates(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 1.6, 99.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]
        assert histogram.total == pytest.approx(0.5 + 1.5 + 1.6 + 99.0)
        assert histogram.count == 4

    @pytest.mark.parametrize("bounds", [(), (2.0, 1.0), (1.0, 1.0)])
    def test_rejects_bad_bounds(self, bounds):
        with pytest.raises(ValueError):
            Histogram(bounds)


# -- the registry --------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_gauges_and_histograms(self):
        registry_ = MetricsRegistry()
        registry_.inc("c")
        registry_.inc("c", 2.5)
        registry_.gauge_set("g", 7.0)
        registry_.gauge_add("g", -2.0)
        registry_.gauge_max("m", 3.0)
        registry_.gauge_max("m", 1.0)  # lower: ignored
        registry_.observe("h", 0.01)
        snapshot = registry_.snapshot()
        assert snapshot["counters"] == {"c": 3.5}
        assert snapshot["gauges"] == {"g": 5.0, "m": 3.0}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_time_block_buckets_deterministically(self):
        # FakeClock(tick=1): enter reads 0, exit reads 1 -> duration 1.0,
        # which lands in the 1.024s bucket of the default ladder.
        registry_ = MetricsRegistry(clock=FakeClock(tick=1.0))
        with registry_.time_block("h"):
            pass
        histogram = registry_.histograms["h"]
        assert histogram.count == 1
        assert histogram.total == pytest.approx(1.0)
        assert histogram.counts[histogram.bucket_index(1.0)] == 1
        assert histogram.bounds[histogram.bucket_index(1.0)] == pytest.approx(
            1.024
        )

    def test_configured_buckets_apply_per_name(self):
        registry_ = MetricsRegistry(buckets={"h": (1.0, 2.0)})
        registry_.observe("h", 1.5)
        registry_.observe("other", 1.5)
        assert registry_.histograms["h"].bounds == (1.0, 2.0)
        assert len(registry_.histograms["other"].bounds) == 16


class TestFrontDoor:
    def test_disabled_is_the_default(self):
        assert not metrics_enabled()
        assert current_metrics() is None

    def test_disabled_helpers_are_noops_returning_null_handles(self):
        metric_inc("c")
        metric_gauge_set("g", 1.0)
        metric_gauge_add("g", 1.0)
        metric_gauge_max("g", 1.0)
        metric_observe("h", 1.0)
        assert metric_time("h") is NULL_TIMER
        with metric_time("h"):
            pass
        assert phase_memory("p") is NULL_PHASE
        with phase_memory("p"):
            pass
        assert current_metrics() is None

    def test_install_uninstall(self):
        registry_ = MetricsRegistry()
        install_metrics(registry_)
        assert metrics_enabled()
        assert current_metrics() is registry_
        metric_inc("c")
        assert registry_.counters["c"] == 1.0
        uninstall_metrics()
        assert not metrics_enabled()

    def test_collecting_metrics_nests_and_restores(self):
        with collecting_metrics() as outer:
            assert current_metrics() is outer
            inner_registry = MetricsRegistry()
            with collecting_metrics(inner_registry) as inner:
                assert inner is inner_registry
                assert current_metrics() is inner
                metric_inc("c")
            assert current_metrics() is outer
            metric_inc("c")
        assert current_metrics() is None
        assert inner_registry.counters["c"] == 1.0
        assert outer.counters["c"] == 1.0

    def test_metric_time_records_on_the_active_registry(self):
        registry_ = MetricsRegistry(clock=FakeClock(tick=0.5))
        with collecting_metrics(registry_):
            with metric_time("h"):
                pass
        assert registry_.histograms["h"].total == pytest.approx(0.5)


# -- exporters -----------------------------------------------------------------


class TestExporters:
    def _populated(self):
        registry_ = MetricsRegistry(buckets={"h.seconds": (0.1, 1.0)})
        registry_.inc(names.PARTITION_CACHE_HIT, 3)
        registry_.gauge_set(names.SHM_SEGMENTS, 2.0)
        registry_.gauge_set("uncatalogued.gauge", 1.5)
        registry_.observe("h.seconds", 0.05)
        registry_.observe("h.seconds", 0.5)
        registry_.observe("h.seconds", 5.0)
        return registry_

    def test_prometheus_name_rewriting(self):
        assert (
            prometheus_name("engine.partition_cache.hit")
            == "repro_engine_partition_cache_hit"
        )
        assert prometheus_name("a-b c") == "repro_a_b_c"

    def test_prometheus_text_layout(self):
        text = prometheus_text(self._populated())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_engine_partition_cache_hit 3" in lines
        assert "repro_engine_shm_segments 2" in lines
        assert "repro_uncatalogued_gauge 1.5" in lines
        assert (
            "# HELP repro_engine_partition_cache_hit "
            "Partition-store lookups served from cache" in lines
        )
        assert "# TYPE repro_engine_partition_cache_hit counter" in lines
        assert "# TYPE repro_engine_shm_segments gauge" in lines
        assert "# TYPE repro_h_seconds histogram" in lines
        # Uncatalogued names get TYPE but no HELP.
        assert not any("# HELP repro_uncatalogued_gauge" in l for l in lines)
        # Cumulative buckets: 1 at le=0.1, 2 at le=1.0, 3 at +Inf.
        assert 'repro_h_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_h_seconds_bucket{le="1.0"} 2' in lines
        assert 'repro_h_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_h_seconds_count 3" in lines

    def test_jsonl_round_trip_is_lossless(self):
        registry_ = self._populated()
        text = metrics_jsonl(registry_)
        for line in text.strip().splitlines():
            record = json.loads(line)
            assert record["kind"] in ("counter", "gauge", "histogram")
        rebuilt = metrics_from_jsonl(text)
        assert rebuilt.snapshot() == registry_.snapshot()

    def test_jsonl_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown metrics record kind"):
            metrics_from_jsonl('{"kind": "mystery", "name": "x", "value": 1}\n')


# -- memory attribution --------------------------------------------------------


class TestMemoryProfiler:
    def test_disabled_is_the_default(self):
        assert current_profiler() is None

    def test_phase_peaks_are_recorded(self):
        with memory_profiling() as profiler:
            assert current_profiler() is profiler
            with phase_memory("mem.test.alloc"):
                block = [0] * 200_000
            del block
        assert current_profiler() is None
        assert profiler.peaks["mem.test.alloc"] > 100_000
        assert profiler.run_peak() == max(profiler.peaks.values())

    def test_nested_phase_peak_propagates_to_parent(self):
        profiler = MemoryProfiler()
        with memory_profiling(profiler):
            with profiler.phase("outer"):
                with profiler.phase("inner"):
                    block = [0] * 200_000
                del block
        assert profiler.peaks["inner"] > 100_000
        # The spike inside "inner" counts toward "outer" too.
        assert profiler.peaks["outer"] >= profiler.peaks["inner"]

    def test_peaks_land_on_the_registry_as_max_gauges(self):
        with collecting_metrics() as registry_:
            with memory_profiling() as profiler:
                with phase_memory("mem.test.alloc"):
                    block = [0] * 200_000
                del block
        assert registry_.gauges["mem.test.alloc"] == float(
            profiler.peaks["mem.test.alloc"]
        )

    def test_peak_rss_bytes_is_positive_on_posix(self):
        assert peak_rss_bytes() > 1_000_000  # this interpreter alone


# -- partition-store byte accounting -------------------------------------------


def _wide_relation(rows: int = 60, width: int = 6):
    from repro.relation import Relation

    return Relation.from_rows(
        [tuple((r + c) % (rows // 3) for c in range(width)) for r in range(rows)],
        [f"c{i}" for i in range(width)],
        name="wide",
    )


class TestStoreByteAccounting:
    def test_cost_model_matches_the_formula(self):
        data = preprocess(_wide_relation())
        partition = data.stripped[0]
        cost = partition_cost_bytes(partition)
        assert cost == (
            ENTRY_OVERHEAD_BYTES
            + CLUSTER_OVERHEAD_BYTES * len(partition.clusters)
            + ROW_REF_BYTES * partition.num_grouped_rows
        )

    def test_cost_model_returns_none_off_shape(self):
        assert partition_cost_bytes(object()) is None

    def test_resident_bytes_counts_pinned_entries(self):
        store = PartitionStore(preprocess(_wide_relation()))
        assert store.resident_bytes > 0
        assert store.stats()["evicted_bytes"] == 0

    def test_byte_lru_bounds_a_wide_partition_burst(self):
        data = preprocess(_wide_relation())
        max_bytes = 4 * 1024
        store = PartitionStore(data, cache_size=10_000, max_bytes=max_bytes)
        assert store.max_bytes == max_bytes
        pinned_only = store.resident_bytes
        width = data.num_columns
        for a in range(width):
            for b in range(a + 1, width):
                store.get(attrset.from_indices([a, b]))
                # The byte bound holds after every store, not just at
                # the end: non-pinned residency never exceeds max_bytes.
                assert store.resident_bytes - pinned_only <= max_bytes
        stats = store.stats()
        assert stats["evictions"] > 0
        assert stats["evicted_bytes"] > 0
        assert store.evicted_bytes == stats["evicted_bytes"]

    def test_unsizeable_entries_fall_back_to_entry_count(self):
        data = preprocess(_wide_relation())

        class OpaquePartition:
            num_rows = data.num_rows

        store = PartitionStore(data, cache_size=2)
        before = store.resident_bytes
        for offset in range(4):
            store.put(1 << (10 + offset), OpaquePartition())
        assert store.resident_bytes == before  # no byte accounting
        assert store.stats()["evictions"] == 2  # entry-count LRU still caps
        assert store.stats()["evicted_bytes"] == 0

    def test_registry_sees_resident_bytes_and_eviction_bytes(self):
        data = preprocess(_wide_relation())
        with collecting_metrics() as registry_:
            store = PartitionStore(data, cache_size=10_000, max_bytes=2048)
            store.get(attrset.singleton(0))  # pinned: a guaranteed hit
            width = data.num_columns
            for a in range(width):
                for b in range(a + 1, width):
                    store.get(attrset.from_indices([a, b]))
        assert registry_.gauges[names.PARTITION_CACHE_RESIDENT_BYTES] == float(
            store.resident_bytes
        )
        assert store.hits > 0
        assert registry_.counters[names.PARTITION_CACHE_HIT] == store.hits
        assert registry_.counters[names.PARTITION_CACHE_EVICTED_BYTES] == float(
            store.evicted_bytes
        )


# -- shm and pool gauges -------------------------------------------------------


np = pytest.importorskip("numpy")


@pytest.fixture(autouse=True)
def fresh_pools():
    close_all_pools()
    yield
    close_all_pools()


class TestShmGauges:
    @pytest.mark.skipif(
        not shm_module.HAVE_SHARED_MEMORY, reason="no shared memory here"
    )
    def test_publish_and_cleanup_balance_the_gauges(self):
        matrix = np.zeros((64, 8), dtype=np.int32)
        with collecting_metrics() as registry_:
            handle, cleanup = publish_matrix(matrix)
            assert registry_.gauges[names.SHM_SEGMENTS] == 1.0
            assert registry_.gauges[names.SHM_BYTES] >= matrix.nbytes
            cleanup()
            assert registry_.gauges[names.SHM_SEGMENTS] == 0.0
            assert registry_.gauges[names.SHM_BYTES] == 0.0
            cleanup()  # idempotent: a second call must not go negative
            assert registry_.gauges[names.SHM_SEGMENTS] == 0.0

    def test_pickle_fallback_publishes_no_gauges(self):
        matrix = np.zeros((8, 2), dtype=np.int32)
        with collecting_metrics() as registry_:
            _, cleanup = publish_matrix(matrix, use_shared_memory=False)
            cleanup()
        assert names.SHM_SEGMENTS not in registry_.gauges

    @pytest.mark.skipif(
        not shm_module.HAVE_SHARED_MEMORY, reason="no shared memory here"
    )
    def test_process_pool_publish_and_close(self):
        matrix = np.zeros((64, 8), dtype=np.int32)
        pool = WorkerPool("process:2")
        with collecting_metrics() as registry_:
            pool.matrix_handle(matrix)
            pool.matrix_handle(matrix)  # cached: still one segment
            assert registry_.gauges[names.SHM_SEGMENTS] == 1.0
            assert registry_.gauges[names.SHM_BYTES] >= matrix.nbytes
            pool.close()
            assert registry_.gauges[names.SHM_SEGMENTS] == 0.0
            assert registry_.gauges[names.SHM_BYTES] == 0.0


def _echo_task(value):
    return value * 2, 0.0


class TestPoolGauges:
    def test_map_chunks_tracks_queue_and_dispatch(self):
        pool = WorkerPool("thread:2")
        tasks = [(1,), (2,), (3,)]
        with collecting_metrics() as registry_:
            results = pool.map_chunks(_echo_task, tasks)
        pool.close()
        assert results == [2, 4, 6]
        assert registry_.gauges[names.POOL_WORKERS] == 2.0
        assert registry_.gauges[names.POOL_QUEUE_DEPTH] == 0.0
        assert registry_.counters[names.POOL_TASKS] == 1.0
        assert registry_.counters[names.POOL_CHUNKS] == 3.0

    def test_serial_fast_path_records_nothing(self):
        pool = WorkerPool(None)
        with collecting_metrics() as registry_:
            results = pool.map_chunks(_echo_task, [(1,), (2,)])
        assert results == [2, 4]
        assert registry_.snapshot()["gauges"] == {}
        assert registry_.snapshot()["counters"] == {}


# -- end-to-end: instrumented discover -----------------------------------------


class TestEndToEndDiscover:
    def test_metrics_enabled_discover_exports_everything(self, tmp_path):
        relation = registry.make("fd-reduced-30", rows=150, seed=5)
        with collecting_metrics() as registry_:
            with memory_profiling():
                context = ExecutionContext(relation)
                with use_context(context):
                    fds = create("eulerfd").discover(relation)
                    # EulerFD validates through its own double cycle;
                    # one explicit batch exercises the timed front door.
                    context.validate_many(list(fds)[:4])
                context.pool.close()
        snapshot = registry_.snapshot()
        assert snapshot["gauges"][names.PARTITION_CACHE_RESIDENT_BYTES] > 0
        for name in (
            names.MEM_PHASE_PREPROCESS,
            names.MEM_PHASE_CYCLE,
            names.MEM_PHASE_SAMPLING,
            names.MEM_PHASE_NCOVER,
            names.MEM_PHASE_INVERSION,
        ):
            assert snapshot["gauges"][name] >= 0
        assert names.VALIDATE_BATCH_SECONDS in snapshot["histograms"]
        # Both exporters carry the same state.
        text = prometheus_text(registry_)
        assert "repro_engine_partition_cache_resident_bytes" in text
        assert "repro_mem_phase_preprocess_peak_bytes" in text
        rebuilt = metrics_from_jsonl(metrics_jsonl(registry_))
        assert rebuilt.snapshot() == snapshot

    @pytest.mark.skipif(
        not shm_module.HAVE_SHARED_MEMORY, reason="no shared memory here"
    )
    def test_process_pool_run_exports_all_three_gauge_families(
        self, monkeypatch
    ):
        """The acceptance shape: one metrics-enabled run, scraped live,
        shows partition-cache bytes, shm segments and memory peaks in
        both export formats."""
        monkeypatch.setattr(parallel_module, "MIN_PAIRS_PER_WORKER", 1)
        monkeypatch.setattr(parallel_module, "MIN_GROUPS_PER_WORKER", 1)
        relation = registry.make("fd-reduced-30", rows=150, seed=5)
        with collecting_metrics() as registry_:
            with memory_profiling():
                # Pinned to the matrix backend: the columnar backend
                # ships its encoding over the mmap transport, whose
                # gauge balance test_columnar.py covers.
                context = ExecutionContext(
                    relation, jobs="process:2", backend="numpy"
                )
                with use_context(context):
                    create("eulerfd").discover(relation)
                # Scrape before close: cleanup decrements the shm gauges.
                text = prometheus_text(registry_)
                jsonl = metrics_jsonl(registry_)
                context.pool.close()
        exported = metrics_from_jsonl(jsonl).gauges
        assert exported[names.SHM_SEGMENTS] >= 1.0
        assert exported[names.SHM_BYTES] > 0
        assert exported[names.PARTITION_CACHE_RESIDENT_BYTES] > 0
        assert exported[names.MEM_PHASE_SAMPLING] >= 0
        assert "repro_engine_shm_segments" in text
        assert "repro_engine_partition_cache_resident_bytes" in text
        assert "repro_mem_phase_sampling_peak_bytes" in text
        # After close the live registry's segment gauge drains to zero.
        assert registry_.gauges[names.SHM_SEGMENTS] == 0.0

    def test_max_cache_bytes_flows_into_the_store(self):
        relation = registry.make("fd-reduced-30", rows=100, seed=5)
        context = ExecutionContext(relation, max_cache_bytes=8 * 1024)
        assert context.partitions.max_bytes == 8 * 1024


# -- the zero-overhead-when-disabled promise -----------------------------------

_INSTRUMENTED_MODULES = (
    store_module,
    context_module,
    parallel_module,
    shm_module,
    covers_module,
    eulerfd_module,
    inversion_module,
    incremental_module,
    sampler_module,
)

# Only the helpers THIS layer added: the pre-PR recorder front door
# (counter/gauge/point) stays live on both sides, so the measured delta
# is exactly what the metrics registry costs while disabled.
_HELPER_NAMES = (
    "metric_inc",
    "metric_gauge_set",
    "metric_gauge_add",
    "metric_gauge_max",
    "metric_observe",
)


class TestDisabledOverhead:
    def test_disabled_discover_within_two_percent_of_stubbed(self, monkeypatch):
        """The committed form of the fast-path promise (DESIGN.md §10).

        Interleaved min-of-k: the same EulerFD discover runs with
        metrics disabled (the shipped fast path: one global read and a
        None check per site) and with every helper this PR added
        monkeypatched to a bare no-op (the closest measurable stand-in
        for the pre-PR code, whose recorder calls stay live on both
        sides).  The disabled best must land within 2% of the stubbed
        best — interleaving, min-of-k and retries keep scheduler noise
        from failing a true promise.
        """
        import gc

        relation = registry.make("fd-reduced-30", rows=200, seed=5)

        def timed_discover():
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                context = ExecutionContext(relation)
                with use_context(context):
                    create("eulerfd").discover(relation)
                return time.perf_counter() - start
            finally:
                gc.enable()

        def stub_helpers(patches):
            def noop(*args, **kwargs):
                return None

            for module in _INSTRUMENTED_MODULES:
                for name in _HELPER_NAMES:
                    if hasattr(module, name):
                        patches.setattr(module, name, noop)
                if hasattr(module, "metric_time"):
                    patches.setattr(
                        module, "metric_time", lambda name: NULL_TIMER
                    )
                if hasattr(module, "phase_memory"):
                    patches.setattr(
                        module, "phase_memory", lambda name: NULL_PHASE
                    )

        timed_discover()  # warm imports, dataset caches, code paths
        disabled = stubbed = float("inf")
        for _ in range(4):
            # Interleave variants pair-wise so load drift hits both
            # sides equally; min-of-k absorbs the remaining spikes.
            for _ in range(3):
                with monkeypatch.context() as patches:
                    stub_helpers(patches)
                    stubbed = min(stubbed, timed_discover())
                disabled = min(disabled, timed_discover())
            if disabled <= stubbed * 1.02:
                return
        pytest.fail(
            f"metrics-disabled discover exceeded 2% overhead: "
            f"disabled={disabled:.4f}s stubbed={stubbed:.4f}s "
            f"(ratio {disabled / stubbed:.3f})"
        )


# -- the metrics CLI -----------------------------------------------------------


class TestMetricsCli:
    def test_prometheus_dump_to_stdout(self, capsys):
        exit_code = cli_main(
            ["metrics", "--dataset", "fd-reduced-30", "--rows", "120"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "repro_engine_partition_cache_resident_bytes" in captured.out
        assert "repro_mem_phase_preprocess_peak_bytes" in captured.out
        assert "# TYPE" in captured.out
        assert "counters" in captured.err  # the summary line

    def test_jsonl_dump_to_file(self, tmp_path, capsys):
        out = tmp_path / "scrape.jsonl"
        exit_code = metrics_main(
            [
                "--dataset",
                "fd-reduced-30",
                "--rows",
                "120",
                "--format",
                "jsonl",
                "--out",
                str(out),
                "--no-memory",
            ]
        )
        assert exit_code == 0
        rebuilt = metrics_from_jsonl(out.read_text(encoding="utf-8"))
        assert rebuilt.gauges[names.PARTITION_CACHE_RESIDENT_BYTES] > 0
        # --no-memory: the run skips tracemalloc, so no mem.phase gauges.
        assert names.MEM_PHASE_PREPROCESS not in rebuilt.gauges
        assert "wrote jsonl scrape" in capsys.readouterr().err

    def test_serve_scrape_answers_on_metrics_path(self):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        payload = "repro_test_gauge 1\n"
        server = threading.Thread(
            target=serve_scrape, args=(payload, port), daemon=True
        )
        server.start()
        for _ in range(50):
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=1
                ) as response:
                    assert response.status == 200
                    assert response.read().decode() == payload
                break
            except OSError:
                time.sleep(0.05)
        else:
            pytest.fail("scrape server never came up")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/other", timeout=1
            )
        assert excinfo.value.code == 404
