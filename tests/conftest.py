"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets import patients
from repro.relation import Relation


@pytest.fixture(scope="session")
def patient_relation() -> Relation:
    """Table I of the paper (9 tuples, 5 attributes N, A, B, G, M)."""
    return patients()


@pytest.fixture()
def tiny_relation() -> Relation:
    """A 4x3 relation with obvious structure: c0 key, c2 constant."""
    return Relation.from_rows(
        [
            (1, "x", 0),
            (2, "x", 0),
            (3, "y", 0),
            (4, "y", 0),
        ],
        ["c0", "c1", "c2"],
        name="tiny",
    )


def relation_of(rows, name="test"):
    """Shorthand for building relations from row tuples in tests."""
    width = len(rows[0]) if rows else 0
    return Relation.from_rows(rows, [f"c{i}" for i in range(width)], name=name)
