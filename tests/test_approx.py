"""Tests for ε-approximate dependency discovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BruteForce
from repro.algorithms.approx import ApproxFDs, discover_approximate_fds
from repro.fd import FD, attrset
from repro.metrics import g3_error
from repro.relation import Relation, preprocess


class TestEpsilonZeroIsExact:
    def test_patients(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert ApproxFDs(epsilon=0.0).discover(patient_relation).fds == truth

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=18,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, rows):
        relation = Relation.from_rows(rows, ["a", "b", "c"])
        assert (
            ApproxFDs(epsilon=0.0).discover(relation).fds
            == BruteForce().discover(relation).fds
        )


class TestTolerance:
    def noisy_relation(self) -> Relation:
        # c0 determines c1 except for one corrupted row out of 50.
        rows = [(i % 10, (i % 10) * 3) for i in range(49)]
        rows.append((0, 999))
        return Relation.from_rows(rows, ["a", "b"])

    def test_exact_discovery_rejects_noisy_fd(self):
        relation = self.noisy_relation()
        assert FD.of([0], 1) not in BruteForce().discover(relation).fds

    def test_tolerant_discovery_accepts_it(self):
        relation = self.noisy_relation()
        result = ApproxFDs(epsilon=0.05).discover(relation)
        assert FD.of([0], 1) in result.fds

    def test_threshold_is_sharp(self):
        relation = self.noisy_relation()
        data = preprocess(relation)
        error = g3_error(data, FD.of([0], 1))  # 1/50 = 0.02
        below = ApproxFDs(epsilon=error - 0.001).discover(relation)
        at = ApproxFDs(epsilon=error).discover(relation)
        assert FD.of([0], 1) not in below.fds
        assert FD.of([0], 1) in at.fds

    def test_results_are_minimal(self):
        relation = self.noisy_relation()
        result = ApproxFDs(epsilon=0.05).discover(relation)
        for fd in result.fds:
            for other in result.fds:
                if other != fd and other.rhs == fd.rhs:
                    assert not other.generalizes(fd)

    def test_every_result_meets_the_threshold(self):
        relation = self.noisy_relation()
        data = preprocess(relation)
        epsilon = 0.05
        for fd in ApproxFDs(epsilon=epsilon).discover(relation).fds:
            assert g3_error(data, fd) <= epsilon

    def test_larger_epsilon_gives_more_general_cover(self):
        relation = self.noisy_relation()
        strict = ApproxFDs(epsilon=0.0).discover(relation).fds
        loose = ApproxFDs(epsilon=0.1).discover(relation).fds
        # Every loose FD is at least as general as some strict FD.
        for strict_fd in strict:
            assert any(
                loose_fd.generalizes(strict_fd) for loose_fd in loose
            )


class TestGuards:
    def test_epsilon_range(self):
        with pytest.raises(ValueError):
            ApproxFDs(epsilon=-0.1)
        with pytest.raises(ValueError):
            ApproxFDs(epsilon=1.0)

    def test_width_guard(self):
        relation = Relation.from_rows([tuple(range(25))])
        with pytest.raises(ValueError, match="max_columns"):
            ApproxFDs().discover(relation)

    def test_convenience_wrapper(self, patient_relation):
        result = discover_approximate_fds(patient_relation, epsilon=0.0)
        assert result.algorithm == "ApproxFDs"
        assert len(result) == 9

    def test_stats(self, patient_relation):
        stats = ApproxFDs(epsilon=0.2).discover(patient_relation).stats
        assert stats["epsilon"] == 0.2
        assert stats["validations"] > 0
