"""Tests for Armstrong-axiom inference (closure, keys, implication, BCNF)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import FD, attrset, inference


def fds_of(*pairs):
    return [FD.of(lhs, rhs) for lhs, rhs in pairs]


class TestClosure:
    def test_reflexive(self):
        assert inference.closure(0b101, []) == 0b101

    def test_single_step(self):
        fds = fds_of(([0], 1))
        assert inference.closure(0b001, fds) == 0b011

    def test_transitive_chain(self):
        fds = fds_of(([0], 1), ([1], 2), ([2], 3))
        assert inference.closure(0b0001, fds) == 0b1111

    def test_composite_lhs_requires_all(self):
        fds = fds_of(([0, 1], 2))
        assert inference.closure(0b001, fds) == 0b001
        assert inference.closure(0b011, fds) == 0b111

    def test_empty_lhs_fd_always_fires(self):
        fds = [FD(0, 2)]
        assert inference.closure(0, fds) == 0b100


class TestImplication:
    def test_direct(self):
        fds = fds_of(([0], 1))
        assert inference.implies(fds, FD.of([0], 1))

    def test_augmented(self):
        fds = fds_of(([0], 1))
        assert inference.implies(fds, FD.of([0, 2], 1))

    def test_transitive(self):
        fds = fds_of(([0], 1), ([1], 2))
        assert inference.implies(fds, FD.of([0], 2))

    def test_not_implied(self):
        fds = fds_of(([0], 1))
        assert not inference.implies(fds, FD.of([1], 0))

    def test_equivalent_covers(self):
        left = fds_of(([0], 1), ([1], 2))
        right = fds_of(([0], 1), ([1], 2), ([0], 2))  # redundant extra
        assert inference.equivalent(left, right)

    def test_inequivalent_covers(self):
        assert not inference.equivalent(fds_of(([0], 1)), fds_of(([1], 0)))


class TestKeys:
    def test_superkey(self):
        fds = fds_of(([0], 1), ([0], 2))
        assert inference.is_superkey(0b001, 3, fds)
        assert not inference.is_superkey(0b010, 3, fds)

    def test_candidate_key_single(self):
        fds = fds_of(([0], 1), ([0], 2))
        assert inference.candidate_keys(3, fds) == [0b001]

    def test_candidate_key_requires_undetermined_attributes(self):
        # Attribute 2 appears on no RHS: every key must contain it.
        fds = fds_of(([2], 0), ([2], 1))
        assert inference.candidate_keys(3, fds) == [0b100]

    def test_multiple_keys(self):
        # 0 <-> 1 equivalent, both determine 2.
        fds = fds_of(([0], 1), ([1], 0), ([0], 2))
        keys = inference.candidate_keys(3, fds)
        assert sorted(keys) == [0b001, 0b010]

    def test_no_fds_whole_schema_is_key(self):
        assert inference.candidate_keys(3, []) == [0b111]

    def test_limit(self):
        fds = fds_of(([0], 2), ([1], 2))
        # With no FDs into 0/1, the key is {0,1}; limit still respected.
        keys = inference.candidate_keys(3, fds, limit=1)
        assert len(keys) == 1


class TestDeterminants:
    def test_direct_determinants(self):
        fds = fds_of(([1], 0), ([2], 3))
        assert inference.determinants_of(0, fds, 4) == {1}

    def test_transitive_determinants(self):
        # 2 -> 1 and 1 -> 0: attribute 2 reaches 0 through 1.
        fds = fds_of(([1], 0), ([2], 1))
        assert inference.determinants_of(0, fds, 3) == {1, 2}

    def test_target_excluded(self):
        fds = fds_of(([0, 1], 2), ([2], 0))
        assert 0 not in inference.determinants_of(0, fds, 3)

    def test_unrelated_attributes_ignored(self):
        fds = fds_of(([1], 2))
        assert inference.determinants_of(0, fds, 3) == set()


class TestBCNF:
    def test_violation_detection(self):
        fds = fds_of(([1], 2))  # 1 is not a superkey of {0,1,2}
        assert inference.violates_bcnf(FD.of([1], 2), 3, fds)

    def test_superkey_lhs_is_fine(self):
        fds = fds_of(([0], 1), ([0], 2))
        assert not inference.violates_bcnf(FD.of([0], 1), 3, fds)

    def test_decompose_textbook(self):
        # R(0,1,2) with 1 -> 2: split into {1,2} and {0,1}.
        fds = fds_of(([1], 2))
        fragments = inference.bcnf_decompose(3, fds)
        assert sorted(fragments) == [0b011, 0b110]

    def test_decompose_no_violations_returns_whole(self):
        fds = fds_of(([0], 1), ([0], 2))
        assert inference.bcnf_decompose(3, fds) == [0b111]

    def test_decomposition_fragments_cover_schema(self):
        fds = fds_of(([1], 2), ([3], 4), ([0], 3))
        fragments = inference.bcnf_decompose(5, fds)
        union = 0
        for fragment in fragments:
            union |= fragment
        assert union == attrset.universe(5)

    def test_fragments_are_in_bcnf(self):
        fds = fds_of(([1], 2), ([3], 4), ([0], 3))
        fragments = inference.bcnf_decompose(5, fds)
        for fragment in fragments:
            for fd in fds:
                in_fragment = (
                    attrset.is_subset(fd.lhs, fragment)
                    and attrset.contains(fragment, fd.rhs)
                )
                if in_fragment and not attrset.contains(fd.lhs, fd.rhs):
                    closure = inference.closure(fd.lhs, fds)
                    assert closure & fragment == fragment


class TestMinimizeCover:
    def test_drops_trivial(self):
        assert inference.minimize_cover(fds_of(([0, 1], 1))) == set()

    def test_left_reduction(self):
        # With 0 -> 1 present, the FD {0,2} -> 1 reduces to 0 -> 1.
        cover = inference.minimize_cover(fds_of(([0], 1), ([0, 2], 1)))
        assert cover == {FD.of([0], 1)}

    def test_removes_transitively_implied(self):
        cover = inference.minimize_cover(
            fds_of(([0], 1), ([1], 2), ([0], 2))
        )
        assert cover == {FD.of([0], 1), FD.of([1], 2)}

    def test_already_minimal_is_unchanged(self):
        fds = set(fds_of(([0], 1), ([1], 0)))
        assert inference.minimize_cover(fds) == fds

    def test_result_is_equivalent(self):
        original = fds_of(([0, 1], 2), ([0], 1), ([1, 2], 3), ([0], 3))
        cover = inference.minimize_cover(original)
        assert inference.equivalent(cover, original)

    def test_empty(self):
        assert inference.minimize_cover([]) == set()


class TestMinimizeCoverProperties:
    small_fds = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 5) - 1),
            st.integers(min_value=0, max_value=4),
        ).map(lambda pair: FD(*pair)),
        max_size=10,
    )

    @given(small_fds)
    @settings(max_examples=80, deadline=None)
    def test_minimized_cover_is_equivalent_and_irredundant(self, fds):
        cover = inference.minimize_cover(fds)
        assert inference.equivalent(cover, [f for f in fds if not f.is_trivial()])
        for fd in cover:
            rest = [f for f in cover if f != fd]
            assert not inference.implies(rest, fd)


class TestClosureProperties:
    small_fds = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 5) - 1),
            st.integers(min_value=0, max_value=4),
        ).map(lambda pair: FD(*pair)),
        max_size=12,
    )
    small_masks = st.integers(min_value=0, max_value=(1 << 5) - 1)

    @given(small_masks, small_fds)
    @settings(max_examples=120)
    def test_closure_is_monotone_and_idempotent(self, mask, fds):
        closed = inference.closure(mask, fds)
        assert attrset.is_subset(mask, closed)
        assert inference.closure(closed, fds) == closed

    @given(small_masks, small_masks, small_fds)
    @settings(max_examples=120)
    def test_closure_monotone_in_argument(self, a, b, fds):
        union = a | b
        assert attrset.is_subset(
            inference.closure(a, fds), inference.closure(union, fds)
        )
