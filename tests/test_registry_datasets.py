"""Every registered benchmark generator must produce discoverable data."""

from __future__ import annotations

import pytest

from repro.core import EulerFD
from repro.datasets import dataset_names, info, make


@pytest.mark.parametrize("name", dataset_names())
class TestEveryRegisteredDataset:
    def test_generation_is_deterministic(self, name):
        left = make(name, rows=40)
        right = make(name, rows=40)
        assert left.columns == right.columns

    def test_shape(self, name):
        entry = info(name)
        relation = make(name, rows=30)
        assert relation.num_rows == 30
        if entry.column_parameter:
            assert relation.num_columns == entry.bench_columns
        else:
            assert relation.num_columns == entry.paper_columns

    def test_eulerfd_runs(self, name):
        # 30 rows keeps the combinatorially dense generators (horse,
        # hepatitis) fast while still exercising every column kind.
        relation = make(name, rows=30)
        result = EulerFD().discover(relation)
        assert result.num_rows == 30
        # Every generated dataset carries at least one dependency at this
        # scale (keys, planted FDs, or accidental ones).
        assert len(result.fds) > 0

    def test_values_are_strings_or_none(self, name):
        relation = make(name, rows=10)
        for column in relation.columns:
            for value in column:
                assert value is None or isinstance(value, str)
