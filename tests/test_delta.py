"""Tests for the delta execution engine (DESIGN.md §12).

Covers the three delta-maintained layers bottom-up — preprocessing
(``PreprocessedRelation.append_rows``), the partition store
(``PartitionStore.apply_delta``) and the execution context
(``ExecutionContext.append_rows``) — plus the O(batch) operation-count
guarantees the layers exist to provide.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.context import ExecutionContext
from repro.engine.store import PartitionStore
from repro.fd import attrset
from repro.relation import Relation
from repro.relation.preprocess import encode_matrix, preprocess

NAMES = ["a", "b", "c", "d"]


def random_rows(rng, count, spreads=(5, 3, 8, 2)):
    return [
        tuple(rng.randint(0, spread) for spread in spreads) for _ in range(count)
    ]


def concatenated(base_rows, batches):
    rows = list(base_rows)
    for batch in batches:
        rows.extend(batch)
    return Relation.from_rows(rows, NAMES)


class TestAppendRowsEquivalence:
    @pytest.mark.parametrize("delta", [True, False])
    @pytest.mark.parametrize("null_equals_null", [True, False])
    def test_matches_scratch_preprocess(self, delta, null_equals_null):
        rng = random.Random(3)
        base = random_rows(rng, 20)
        batches = [random_rows(rng, 4), random_rows(rng, 1), random_rows(rng, 7)]
        data = preprocess(
            Relation.from_rows(base, NAMES), null_equals_null, delta=delta
        )
        for index, batch in enumerate(batches):
            data = data.append_rows(batch)
            scratch = preprocess(
                concatenated(base, batches[: index + 1]), null_equals_null
            )
            assert np.array_equal(data.matrix, scratch.matrix)
            for grown, reference in zip(data.stripped, scratch.stripped):
                # canonical (first-occurrence) cluster order, not just
                # set equality: downstream sampling iterates in order
                assert grown.clusters == reference.clusters
                assert grown.num_rows == reference.num_rows

    def test_nulls_with_distinct_null_semantics(self):
        rows = [(None, 1, 1, 1), (None, 1, 2, 1), (0, 2, 2, 2)]
        data = preprocess(
            Relation.from_rows(rows, NAMES), False, delta=True
        )
        grown = data.append_rows([(None, 1, 1, 1), (0, 2, 2, 2)])
        scratch = preprocess(
            Relation.from_rows(
                rows + [(None, 1, 1, 1), (0, 2, 2, 2)], NAMES
            ),
            False,
        )
        for grown_partition, reference in zip(grown.stripped, scratch.stripped):
            assert grown_partition == reference

    def test_append_delta_shape(self):
        data = preprocess(
            Relation.from_rows([(1, 1, 1, 1), (2, 1, 1, 1)], NAMES),
            delta=True,
        )
        grown = data.append_rows([(1, 2, 1, 1), (3, 1, 1, 1)])
        delta = grown.append_delta
        assert delta.first_new == 2
        assert delta.num_new == 2
        assert delta.num_rows == 4
        assert len(delta.touched) == 4
        # ops assertion: exactly batch x columns cells were encoded
        assert delta.cells_encoded == 2 * 4

    def test_old_snapshot_is_isolated_and_stale(self):
        data = preprocess(
            Relation.from_rows([(1, 1, 1, 1), (2, 1, 1, 1)], NAMES),
            delta=True,
        )
        grown = data.append_rows([(3, 2, 2, 2)])
        assert data.num_rows == 2
        assert grown.num_rows == 3
        with pytest.raises(ValueError, match="stale"):
            data.append_rows([(4, 4, 4, 4)])
        grown.append_rows([(4, 4, 4, 4)])  # the newest snapshot may grow

    def test_matrix_buffer_is_shared_not_copied(self):
        """O(batch): the grown matrix is a view of the same lineage buffer."""
        data = preprocess(
            Relation.from_rows([(1, 1, 1, 1), (2, 2, 2, 2)], NAMES),
            delta=True,
        )
        state = data.__dict__["_delta"]
        grown = data.append_rows([(3, 3, 3, 3)])
        assert grown.matrix.base is state.matrix
        assert not grown.matrix.flags.writeable


class TestEncodedDeltaMaintenance:
    def test_encoded_columns_maintained_in_place(self):
        rng = random.Random(11)
        base = random_rows(rng, 30)
        data = preprocess(Relation.from_rows(base, NAMES), delta=True)
        data.encoded_matrix()  # materialize: the delta path must keep it
        batches = [random_rows(rng, 6), random_rows(rng, 3)]
        for index, batch in enumerate(batches):
            data = data.append_rows(batch)
            encoded = data.encoded
            assert encoded is not None, "append must maintain the encoding"
            reference = encode_matrix(data.matrix)
            for column, expected in zip(encoded.columns, reference.columns):
                assert column.dtype == expected.dtype
                assert np.array_equal(column, expected)
            assert encoded.cardinalities == reference.cardinalities

    def test_u8_to_u16_promotion(self):
        base = [(value, 0, 0, 0) for value in range(250)]
        data = preprocess(Relation.from_rows(base, NAMES), delta=True)
        data.encoded_matrix()
        assert data.encoded.columns[0].dtype == np.uint8
        batch = [(value, 1, 1, 1) for value in range(250, 300)]
        grown = data.append_rows(batch)
        assert grown.append_delta.promotions == (
            (0, "uint8", "uint16"),
        )
        assert grown.encoded.columns[0].dtype == np.uint16
        # the pre-append snapshot keeps its narrow buffer untouched
        assert data.encoded.columns[0].dtype == np.uint8
        reference = encode_matrix(grown.matrix)
        assert np.array_equal(grown.encoded.columns[0], reference.columns[0])


class TestStoreDelta:
    MASKS = [
        attrset.from_indices([0, 1]),
        attrset.from_indices([1, 2]),
        attrset.from_indices([0, 2, 3]),
        attrset.from_indices([2, 3]),
    ]

    def test_extended_entries_match_scratch_derivation(self):
        rng = random.Random(7)
        base = random_rows(rng, 40)
        context = ExecutionContext(
            Relation.from_rows(base, NAMES), delta=True
        )
        for mask in self.MASKS:
            context.partition(mask)
        batches = [random_rows(rng, 5), random_rows(rng, 2), random_rows(rng, 8)]
        for index, batch in enumerate(batches):
            context.append_rows(batch)
            reference = PartitionStore(
                preprocess(concatenated(base, batches[: index + 1]))
            )
            for mask in self.MASKS:
                assert context.partitions.get(mask) == reference.get(mask)
            for attribute in range(4):
                singleton = attrset.singleton(attribute)
                assert context.partitions.get(singleton) == reference.get(
                    singleton
                )
            assert context.partitions.get(attrset.EMPTY) == reference.get(
                attrset.EMPTY
            )
        stats = context.partitions.stats()
        assert stats["delta_applied"] == len(self.MASKS) * len(batches)
        assert stats["delta_rebuilt"] == 0

    def test_cold_entries_are_released_not_extended(self, monkeypatch):
        import repro.engine.store as store_module

        monkeypatch.setattr(store_module, "DELTA_EXTEND_LIMIT", 4)
        rng = random.Random(19)
        base = random_rows(rng, 25, spreads=(3, 3, 3, 3))
        context = ExecutionContext(
            Relation.from_rows(base, NAMES), delta=True
        )
        # more cached derived entries than the per-append extend budget
        masks = [
            mask
            for mask in range(1, 16)
            if attrset.size(mask) >= 2
        ]
        for mask in masks:
            context.partition(mask)
        batch = random_rows(rng, 3, spreads=(3, 3, 3, 3))
        context.append_rows(batch)
        stats = context.partitions.stats()
        assert stats["delta_applied"] + stats["delta_rebuilt"] == len(masks)
        assert stats["delta_applied"] == 4
        assert stats["delta_rebuilt"] == len(masks) - 4
        # every entry — extended or re-derived on demand — is exact
        reference = PartitionStore(preprocess(concatenated(base, [batch])))
        for mask in masks:
            assert context.partitions.get(mask) == reference.get(mask)

    def test_sampling_clusters_refresh_after_append(self):
        rng = random.Random(23)
        base = random_rows(rng, 30)
        context = ExecutionContext(Relation.from_rows(base, NAMES), delta=True)
        context.sampling_clusters(True)
        batch = random_rows(rng, 6)
        context.append_rows(batch)
        fresh = ExecutionContext(concatenated(base, [batch]))
        assert sorted(context.sampling_clusters(True)) == sorted(
            fresh.sampling_clusters(True)
        )
        assert sorted(context.sampling_clusters(False)) == sorted(
            fresh.sampling_clusters(False)
        )
