"""Tests for accuracy and timing metrics."""

from __future__ import annotations

import pytest

from repro.fd import FD
from repro.metrics import (
    AccuracyReport,
    f1_score,
    fd_set_metrics,
    semantic_equivalence,
    timed,
)


def fds(*pairs):
    return [FD.of(lhs, rhs) for lhs, rhs in pairs]


class TestAccuracyReport:
    def test_perfect(self):
        truth = fds(([0], 1), ([1], 2))
        report = fd_set_metrics(truth, truth)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_partial(self):
        truth = fds(([0], 1), ([1], 2))
        found = fds(([0], 1), ([2], 0))
        report = fd_set_metrics(found, truth)
        assert report.precision == 0.5
        assert report.recall == 0.5
        assert report.f1 == 0.5

    def test_asymmetric(self):
        truth = fds(([0], 1), ([1], 2), ([2], 0), ([0], 2))
        found = fds(([0], 1))
        report = fd_set_metrics(found, truth)
        assert report.precision == 1.0
        assert report.recall == 0.25
        assert report.f1 == pytest.approx(0.4)

    def test_no_overlap(self):
        report = fd_set_metrics(fds(([0], 1)), fds(([1], 0)))
        assert report.f1 == 0.0

    def test_both_empty_is_perfect(self):
        report = fd_set_metrics([], [])
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_empty_found_nonempty_truth(self):
        report = fd_set_metrics([], fds(([0], 1)))
        assert report.precision == 1.0  # vacuous
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_f1_score_shorthand(self):
        assert f1_score(fds(([0], 1)), fds(([0], 1))) == 1.0

    def test_duplicates_in_input_collapse(self):
        found = fds(([0], 1), ([0], 1))
        assert fd_set_metrics(found, fds(([0], 1))).f1 == 1.0

    def test_str_rendering(self):
        text = str(AccuracyReport(1, 1, 0))
        assert "precision=0.500" in text
        assert "f1=" in text


class TestSemanticEquivalence:
    def test_redundant_cover_is_equivalent(self):
        minimal = fds(([0], 1), ([1], 2))
        redundant = fds(([0], 1), ([1], 2), ([0], 2))
        assert semantic_equivalence(minimal, redundant)

    def test_different_information_not_equivalent(self):
        assert not semantic_equivalence(fds(([0], 1)), fds(([0], 2)))


class TestTimed:
    def test_returns_value_and_duration(self):
        run = timed(lambda: 42)
        assert run.value == 42
        assert run.seconds >= 0.0
        assert run.repeats == 1

    def test_median_of_repeats(self):
        run = timed(lambda: "x", repeats=3)
        assert len(run.all_seconds) == 3
        assert run.best <= run.seconds <= max(run.all_seconds)
        assert run.mean >= 0.0

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            timed(lambda: None, repeats=0)
