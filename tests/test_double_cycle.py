"""Behavioural tests of the double-cycle control structure (Fig. 1).

These tests pin the *mechanism* — how the growth rates steer control
between sampling, negative-cover construction, and inversion — rather
than end-to-end accuracy (covered in test_eulerfd.py).
"""

from __future__ import annotations

import random

from repro.algorithms import BruteForce
from repro.core import EulerFD, EulerFDConfig
from repro.metrics import f1_score
from repro.relation import Relation


def structured_relation(rows: int = 400, seed: int = 3) -> Relation:
    rng = random.Random(seed)
    data = []
    for _ in range(rows):
        a = rng.randint(0, 24)
        b = rng.randint(0, 24)
        data.append((a, b, (a * 7 + b) % 12, rng.randint(0, 3), a % 5))
    return Relation.from_rows(data, ["a", "b", "f", "noise", "amod"])


class TestCycleAccounting:
    def test_multiple_cycles_by_default(self):
        result = EulerFD().discover(structured_relation())
        assert result.stats["cycles"] >= 1
        assert result.stats["inversions"] == result.stats["cycles"]

    def test_single_cycle_runs_one_inversion(self):
        config = EulerFDConfig(max_cycles=1)
        result = EulerFD(config).discover(structured_relation())
        assert result.stats["inversions"] == 1

    def test_growth_rates_reported_below_thresholds_at_termination(self):
        config = EulerFDConfig()
        result = EulerFD(config).discover(structured_relation())
        # Unless the cycle budget stopped it, the final growth rates obey
        # the stopping criteria.
        if result.stats["cycles"] < config.max_cycles:
            assert result.stats["final_gr_ncover"] <= config.th_ncover
            assert result.stats["final_gr_pcover"] <= config.th_pcover

    def test_tighter_pcover_threshold_samples_at_least_as_much(self):
        loose = EulerFD(EulerFDConfig(th_pcover=10.0)).discover(
            structured_relation()
        )
        tight = EulerFD(EulerFDConfig(th_pcover=0.0)).discover(
            structured_relation()
        )
        assert (
            tight.stats["pairs_compared"] >= loose.stats["pairs_compared"]
        )

    def test_tighter_ncover_threshold_samples_at_least_as_much(self):
        loose = EulerFD(EulerFDConfig(th_ncover=10.0)).discover(
            structured_relation()
        )
        tight = EulerFD(EulerFDConfig(th_ncover=0.0)).discover(
            structured_relation()
        )
        assert (
            tight.stats["pairs_compared"] >= loose.stats["pairs_compared"]
        )


class TestAccuracyMonotonicity:
    def test_accuracy_improves_with_second_cycle(self):
        relation = structured_relation(rows=600, seed=9)
        truth = BruteForce().discover(relation).fds
        single = EulerFD(EulerFDConfig(max_cycles=1)).discover(relation)
        full = EulerFD().discover(relation)
        assert f1_score(full.fds, truth) >= f1_score(single.fds, truth) - 1e-9

    def test_queue_count_preserves_correct_results_on_structured_data(self):
        relation = structured_relation(rows=300, seed=21)
        truth = BruteForce().discover(relation).fds
        for queues in (1, 3, 6):
            result = EulerFD(EulerFDConfig().with_queues(queues)).discover(
                relation
            )
            assert f1_score(result.fds, truth) >= 0.95, queues


class TestReviveBehaviour:
    def test_revivals_recorded_when_cycles_continue(self):
        relation = structured_relation(rows=500, seed=33)
        result = EulerFD(EulerFDConfig(th_pcover=0.0)).discover(relation)
        # Forcing the second cycle to keep going requires reviving retired
        # clusters at least once on a workload this size.
        assert result.stats["revivals"] >= 1
