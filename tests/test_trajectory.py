"""Tests for repro.bench.trajectory: record, load, compare, gate.

The comparator tests are the heart of the regression gate: identical
inputs pass, a synthetic 2x slowdown fails with exit status 1, measured
noise widens the allowance, and single-repeat legacy snapshots get the
conservative floor.  Recording runs against a deliberately tiny
workload so the suite stays fast; the committed ``BENCH_5.json`` then
exercises the legacy adapter on real history.
"""

from __future__ import annotations

import importlib.util
import json
import os
from pathlib import Path

import pytest

from repro.bench import trajectory
from repro.bench.trajectory import (
    DEFAULT_THRESHOLD,
    SCHEMA,
    SINGLE_SAMPLE_FLOOR,
    Comparison,
    compare_entries,
    compare_trajectories,
    host_fingerprint,
    load_trajectory,
    record_trajectory,
    same_host,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_5 = REPO_ROOT / "benchmarks" / "results" / "BENCH_5.json"

TINY = [("fd-reduced-30", 80, 5)]


def entry(
    all_seconds,
    *,
    fd_count: int = 10,
    jobs: int = 1,
    backend: str | None = None,
):
    ordered = sorted(all_seconds)
    return {
        "wall_seconds": ordered[len(ordered) // 2],
        "best_seconds": ordered[0],
        "stdev_seconds": 0.0,
        "all_seconds": list(all_seconds),
        "repeats": len(all_seconds),
        "fd_count": fd_count,
        "jobs": jobs,
        "backend": backend,
        "cache_hit_rate": None,
    }


def document(workloads, host=None):
    return {
        "schema": SCHEMA,
        "bench": "test",
        "description": "",
        "host": host if host is not None else host_fingerprint(),
        "jobs": "serial",
        "repeats": 3,
        "workloads": workloads,
    }


# -- recording -----------------------------------------------------------------


class TestRecord:
    def test_record_trajectory_layout(self):
        doc = record_trajectory(
            "BENCH_T",
            workloads=TINY,
            algorithms=["eulerfd"],
            repeats=2,
            memory=False,
            description="tiny",
        )
        assert doc["schema"] == SCHEMA
        assert doc["bench"] == "BENCH_T"
        assert doc["jobs"] == "serial"
        assert doc["host"]["python"]
        (label,) = doc["workloads"]
        assert label == "fd-reduced-30[80x30]/eulerfd"
        cell = doc["workloads"][label]
        assert cell["repeats"] == 2
        assert len(cell["all_seconds"]) == 2
        assert cell["best_seconds"] == min(cell["all_seconds"])
        assert cell["best_seconds"] <= cell["wall_seconds"]
        assert cell["fd_count"] > 0
        # The cell records the resolved worker count; a REPRO_JOBS
        # override (CI's fan-out suite runs) legitimately raises it.
        spec = os.environ.get("REPRO_JOBS", "1")
        assert cell["jobs"] == int(spec.rsplit(":", 1)[-1] or 1)
        assert 0.0 <= cell["cache_hit_rate"] <= 1.0
        # memory=False: no attribution fields on the cell.
        assert "phases" not in cell
        assert "peak_tracemalloc_bytes" not in cell

    def test_memory_pass_attributes_phases_and_bytes(self):
        doc = record_trajectory(
            "BENCH_T",
            workloads=TINY,
            algorithms=["eulerfd"],
            repeats=1,
            memory=True,
        )
        (cell,) = doc["workloads"].values()
        assert cell["phases"]  # per-phase self seconds from telemetry
        assert any("cycle" in path for path in cell["phases"])
        assert cell["memory_phases"]
        assert cell["peak_tracemalloc_bytes"] > 0
        assert cell["peak_rss_bytes"] > 0

    def test_named_backends_record_suffixed_nongating_cells(self):
        doc = record_trajectory(
            "BENCH_T",
            workloads=TINY,
            algorithms=["eulerfd"],
            repeats=1,
            memory=False,
            backends=["default", "columnar"],
        )
        assert doc["backends"] == ["default", "columnar"]
        base = "fd-reduced-30[80x30]/eulerfd"
        assert set(doc["workloads"]) == {base, f"{base}@columnar"}
        default_cell = doc["workloads"][base]
        columnar_cell = doc["workloads"][f"{base}@columnar"]
        # The historical label records the session default backend...
        assert default_cell["backend"] == os.environ.get(
            "REPRO_BACKEND", "numpy"
        )
        assert columnar_cell["backend"] == "columnar"
        # ...and both backends discover the same FD set.
        assert default_cell["fd_count"] == columnar_cell["fd_count"]
        # Against an old document without the backend, the suffixed cell
        # is an addition — reported, never gated.
        old = document({base: entry([1.0])})
        comparisons = compare_trajectories(old, document(doc["workloads"]))
        statuses = {c.workload: c.status for c in comparisons}
        assert statuses[f"{base}@columnar"] == "added"

    def test_round_trips_through_load(self, tmp_path):
        doc = record_trajectory(
            "BENCH_T",
            workloads=TINY,
            algorithms=["eulerfd"],
            repeats=1,
            memory=False,
        )
        path = tmp_path / "BENCH_T.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        assert load_trajectory(path) == doc


# -- loading and the legacy adapter --------------------------------------------


class TestLoad:
    def test_legacy_bench5_adapts_to_the_schema(self):
        doc = load_trajectory(BENCH_5)
        assert doc["schema"] == SCHEMA
        assert doc["repeats"] == 1
        label = "fd-reduced-30[2000x30]/eulerfd"
        assert label in doc["workloads"]
        cell = doc["workloads"][label]
        assert cell["repeats"] == 1
        assert cell["all_seconds"] == [cell["best_seconds"]]
        assert cell["best_seconds"] > 0
        # Every serial algorithm cell carried over.
        assert len(doc["workloads"]) == 9

    def test_rejects_unrecognized_documents(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"what": "ever"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a trajectory file"):
            load_trajectory(path)


# -- comparison ----------------------------------------------------------------


class TestCompareEntries:
    def test_identical_entries_are_ok(self):
        e = entry([1.0, 1.01, 1.02])
        comparison = compare_entries("w", e, e)
        assert comparison.status == "ok"
        assert comparison.rel_change == pytest.approx(0.0)

    def test_doubled_wall_is_a_regression(self):
        old = entry([1.0, 1.01, 1.02])
        new = entry([2.0, 2.01, 2.02])
        comparison = compare_entries("w", old, new)
        assert comparison.status == "regression"
        assert comparison.rel_change == pytest.approx(1.0)

    def test_halved_wall_is_an_improvement(self):
        old = entry([2.0, 2.01, 2.02])
        new = entry([1.0, 1.01, 1.02])
        assert compare_entries("w", old, new).status == "improvement"

    def test_measured_noise_widens_the_allowance(self):
        # 15% change would gate at the 10% default threshold, but the
        # recorded spread (CV ~ 8% per side) raises the allowance past it.
        old = entry([1.0, 1.1, 1.25])
        new = entry([1.15, 1.25, 1.4])
        comparison = compare_entries("w", old, new)
        assert comparison.allowance > DEFAULT_THRESHOLD
        assert comparison.status == "ok"

    def test_single_repeat_raises_the_floor(self):
        old = entry([1.0])
        new = entry([1.2, 1.2, 1.2])
        comparison = compare_entries("w", old, new)
        assert comparison.allowance >= SINGLE_SAMPLE_FLOOR
        assert comparison.status == "ok"  # 20% < the 25% floor

    def test_skipped_cells_never_gate(self):
        comparison = compare_entries("w", {"skipped": "no numpy"}, entry([1.0]))
        assert comparison.status == "skipped"
        assert comparison.rel_change is None


class TestCompareTrajectories:
    def test_union_with_added_and_removed(self):
        old = document({"a": entry([1.0]), "b": entry([1.0])})
        new = document({"b": entry([1.0]), "c": entry([1.0])})
        comparisons = compare_trajectories(old, new)
        assert [c.workload for c in comparisons] == ["a", "b", "c"]
        assert [c.status for c in comparisons] == ["removed", "ok", "added"]

    def test_same_host_requires_matching_fingerprints(self):
        here = document({})
        elsewhere = document(
            {}, host={"cpu_count": 1, "platform": "somewhere-else"}
        )
        unknown = document({}, host={})
        assert same_host(here, here)
        assert not same_host(here, elsewhere)
        assert not same_host(unknown, here)  # empty old host: unknown


# -- the CLI -------------------------------------------------------------------


def write_doc(path: Path, doc) -> Path:
    path.write_text(json.dumps(doc, indent=2), encoding="utf-8")
    return path


class TestCli:
    def test_compare_identical_exits_zero(self, tmp_path, capsys):
        doc = document({"w": entry([1.0, 1.01, 1.02])})
        old = write_doc(tmp_path / "old.json", doc)
        new = write_doc(tmp_path / "new.json", doc)
        assert trajectory.main(["compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "ok: no gating regressions" in out

    def test_compare_seeded_slowdown_exits_one(self, tmp_path, capsys):
        old = write_doc(
            tmp_path / "old.json", document({"w": entry([1.0, 1.01, 1.02])})
        )
        new = write_doc(
            tmp_path / "new.json", document({"w": entry([2.0, 2.01, 2.02])})
        )
        assert trajectory.main(["compare", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out
        assert "FAIL: 1 regression(s)" in out

    def test_cross_host_regressions_report_only_unless_strict(
        self, tmp_path, capsys
    ):
        old = write_doc(
            tmp_path / "old.json",
            document(
                {"w": entry([1.0])},
                host={"cpu_count": 1, "platform": "somewhere-else"},
            ),
        )
        new = write_doc(
            tmp_path / "new.json", document({"w": entry([9.0])})
        )
        assert trajectory.main(["compare", str(old), str(new)]) == 0
        assert "report-only" in capsys.readouterr().out
        assert (
            trajectory.main(["compare", str(old), str(new), "--strict"]) == 1
        )

    def test_compare_legacy_baseline_runs_clean(self, capsys):
        # The committed BENCH_5 against itself: the adapter output is
        # self-comparable and never gates.
        assert trajectory.main(["compare", str(BENCH_5), str(BENCH_5)]) == 0
        out = capsys.readouterr().out
        assert "fd-reduced-30[2000x30]/eulerfd" in out

    def test_committed_trajectory_gate_holds(self, capsys):
        # The committed BENCH_8 -> BENCH_9 step must stay within the
        # noise-aware allowance, and BENCH_9's columnar cells must
        # document the backend bit-identity: every label@columnar cell
        # discovered exactly the FD count of its default sibling.
        bench_8 = REPO_ROOT / "benchmarks" / "results" / "BENCH_8.json"
        bench_9 = REPO_ROOT / "benchmarks" / "results" / "BENCH_9.json"
        assert trajectory.main(["compare", str(bench_8), str(bench_9)]) == 0
        out = capsys.readouterr().out
        assert "@columnar" in out
        doc = load_trajectory(bench_9)
        assert doc["backends"] == ["default", "columnar"]
        columnar = [w for w in doc["workloads"] if w.endswith("@columnar")]
        assert columnar
        for label in columnar:
            sibling = label.removesuffix("@columnar")
            assert (
                doc["workloads"][label]["fd_count"]
                == doc["workloads"][sibling]["fd_count"]
            ), label

    def test_record_writes_the_document(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(trajectory, "QUICK_WORKLOADS", TINY)
        out = tmp_path / "BENCH_T.json"
        code = trajectory.main(
            [
                "record",
                "--output",
                str(out),
                "--quick",
                "--repeats",
                "1",
                "--no-memory",
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["schema"] == SCHEMA
        assert doc["bench"] == "BENCH_T"  # defaults to the output stem
        assert "fd-reduced-30[80x30]/eulerfd" in doc["workloads"]
        printed = capsys.readouterr().out
        assert "wrote" in printed
        assert "median" in printed


# -- the deprecated record_baseline shim ---------------------------------------


def load_shim():
    spec = importlib.util.spec_from_file_location(
        "record_baseline_shim", REPO_ROOT / "benchmarks" / "record_baseline.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRecordBaselineShim:
    def test_warns_and_delegates(self, tmp_path, monkeypatch):
        shim = load_shim()
        forwarded = {}

        def fake_main(argv):
            forwarded["argv"] = argv
            return 0

        monkeypatch.setattr(shim.trajectory, "main", fake_main)
        out = tmp_path / "BENCH_X.json"
        with pytest.warns(DeprecationWarning, match="repro-bench record"):
            code = shim.main(
                ["--jobs", "process:2", "--output", str(out), "--quick"]
            )
        assert code == 0
        assert forwarded["argv"] == [
            "record",
            "--output",
            str(out),
            "--jobs",
            "process:2",
            "--quick",
        ]


def test_comparison_dataclass_is_frozen():
    comparison = Comparison("w", "ok")
    with pytest.raises(AttributeError):
        comparison.status = "regression"
