"""Tests for the typestate resource-lifecycle layer (RPR109-RPR111):
the ``Owns:``/``Borrows:`` contract grammar, must/may path merging,
exception-edge and loop-carried leaks, interprocedural ownership
transfer, the deliberately-broken engine shapes from the issue, the
SARIF/``--changed`` CLI surface, and the ``live_resources`` probe."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
import types
from pathlib import Path

import pytest

from repro.analysis import analyze, explain_rule
from repro.analysis import _contracts_runtime as runtime
from repro.analysis._contracts_runtime import ProbeViolation, probe
from repro.analysis.cli import main
from repro.analysis.contracts import parse_contract
from repro.analysis.lifecycle import PROTOCOLS, default_lifecycle_rules


def _scan(tmp_path: Path, source: str, relpath: str = "mod.py"):
    module = tmp_path / relpath
    module.parent.mkdir(parents=True, exist_ok=True)
    for parent in module.relative_to(tmp_path).parents:
        if str(parent) != ".":
            (tmp_path / parent / "__init__.py").touch()
    module.write_text(textwrap.dedent(source))
    return analyze([tmp_path], default_lifecycle_rules()).findings


def _codes(findings) -> list[str]:
    return sorted(finding.rule for finding in findings)


# -- contract grammar ----------------------------------------------------------


class TestOwnershipGrammar:
    def test_owns_return_plain_and_via_call(self):
        assert parse_contract("x\n\nOwns: return\n").owns_return == "plain"
        assert parse_contract("x\n\nOwns: return via call\n").owns_return == "call"

    def test_owns_self_and_params(self):
        contract = parse_contract("x\n\nOwns: self\nOwns: seg via shm-segment\n")
        assert contract.owns_self
        assert contract.owns_params == (("seg", "shm-segment"),)

    def test_borrows_list(self):
        contract = parse_contract("x\n\nBorrows: pool, data\n")
        assert contract.borrows == ("pool", "data")
        assert contract.declares_lifecycle_contract

    def test_pure_alone_is_not_a_lifecycle_contract(self):
        assert not parse_contract("x\n\nPure: data\n").declares_lifecycle_contract

    def test_every_protocol_is_well_formed(self):
        for name, protocol in PROTOCOLS.items():
            assert protocol.name == name
            assert protocol.steps, name
            assert protocol.description, name


# -- RPR109: leak on path ------------------------------------------------------


class TestLeakOnPath:
    def test_early_return_leaks(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def read(path, strict):
                handle = open(path)
                if strict:
                    return ""
                text = handle.read()
                handle.close()
                return text
            """,
        )
        assert _codes(findings) == ["RPR109"]

    def test_exception_edge_leaks(self, tmp_path):
        # parse() can raise while the handle is live and unprotected.
        findings = _scan(
            tmp_path,
            """
            def read(path, parse):
                handle = open(path)
                value = parse(handle.read())
                handle.close()
                return value
            """,
        )
        assert _codes(findings) == ["RPR109"]

    def test_try_finally_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def read(path, parse):
                handle = open(path)
                try:
                    return parse(handle.read())
                finally:
                    handle.close()
            """,
        )
        assert findings == []

    def test_with_statement_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def read(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert findings == []

    def test_loop_carried_rebind_leaks(self, tmp_path):
        # The back edge carries last iteration's still-open handle into
        # the same acquisition line; rebinding kills it unreleased.
        findings = _scan(
            tmp_path,
            """
            def read_all(paths):
                texts = []
                for path in paths:
                    handle = open(path)
                    texts.append(handle.read())
                return texts
            """,
        )
        assert "RPR109" in _codes(findings)

    def test_loop_with_release_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def read_all(paths):
                texts = []
                for path in paths:
                    handle = open(path)
                    try:
                        texts.append(handle.read())
                    finally:
                        handle.close()
                return texts
            """,
        )
        assert findings == []

    def test_owns_return_declaration_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def acquire(path):
                '''Open the log.

                Owns: return
                '''
                return open(path)
            """,
        )
        assert findings == []

    def test_undeclared_return_is_flagged(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def acquire(path):
                return open(path)
            """,
        )
        assert _codes(findings) == ["RPR109"]

    def test_ownership_transfer_via_summary_is_clean(self, tmp_path):
        # closer() declares Owns: handle, so the caller's handle is
        # released interprocedurally — one-level summary, RPR107-style.
        findings = _scan(
            tmp_path,
            """
            def closer(handle):
                '''Release the handle.

                Owns: handle via file
                '''
                handle.close()

            def read(path):
                handle = open(path)
                text = handle.read()
                closer(handle)
                return text
            """,
        )
        assert findings == []

    def test_borrowing_callee_keeps_caller_responsible(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def peek(handle):
                '''Read without closing.

                Borrows: handle
                '''
                return handle.read()

            def read(path):
                handle = open(path)
                return peek(handle)
            """,
        )
        assert _codes(findings) == ["RPR109"]


# -- RPR110: use after release -------------------------------------------------


class TestUseAfterRelease:
    def test_read_after_close(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def read(path):
                handle = open(path)
                handle.close()
                return handle.read()
            """,
        )
        assert "RPR110" in _codes(findings)

    def test_may_released_is_not_flagged(self, tmp_path):
        # Close on one branch only: the resource *may* be live, so the
        # later use is not a must-use-after-release (the leak on the
        # closing branch is RPR109's to report, not RPR110's).
        findings = _scan(
            tmp_path,
            """
            def read(path, eager):
                handle = open(path)
                if eager:
                    handle.close()
                text = handle.read()
                handle.close()
                return text
            """,
        )
        assert "RPR110" not in _codes(findings)


# -- RPR111: release-protocol violations ---------------------------------------


def _with_shm(source: str) -> str:
    """Prefix a stub SharedMemory class (pre-dedented concatenation)."""
    preamble = textwrap.dedent(
        """
        class SharedMemory:
            def __init__(self, create=False, size=0):
                self.create = create
            def close(self):
                pass
            def unlink(self):
                pass
        """
    )
    return preamble + textwrap.dedent(source)


class TestReleaseProtocol:
    def test_unlink_before_close(self, tmp_path):
        findings = _scan(
            tmp_path,
            _with_shm("""
            def publish(size):
                segment = SharedMemory(create=True, size=size)
                segment.unlink()
                segment.close()
            """),
        )
        assert "RPR111" in _codes(findings)

    def test_double_close(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def read(path):
                handle = open(path)
                handle.close()
                handle.close()
            """,
        )
        assert "RPR111" in _codes(findings)

    def test_branch_merged_release_is_may_not_must(self, tmp_path):
        # After a one-branch close the state is {open, closed}: closing
        # again is legal on the open path, so no must-double-release.
        findings = _scan(
            tmp_path,
            """
            def read(path, eager):
                handle = open(path)
                if eager:
                    handle.close()
                else:
                    handle.close()
                return ""
            """,
        )
        assert "RPR111" not in _codes(findings)

    def test_releasing_a_borrowed_param(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def peek(handle):
                '''Read some bytes.

                Borrows: handle
                '''
                text = handle.read()
                handle.close()
                return text
            """,
        )
        assert "RPR111" in _codes(findings)

    def test_in_order_protocol_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            _with_shm("""
            def publish(size):
                segment = SharedMemory(create=True, size=size)
                segment.close()
                segment.unlink()
            """),
        )
        assert findings == []


# -- the issue's deliberately-broken engine shapes -----------------------------


class TestBrokenEngineShapes:
    def test_publish_matrix_missing_unlink_on_error_path(self, tmp_path):
        # A copy of publish_matrix whose error path forgets unlink: the
        # segment reaches the raise with only close applied.
        findings = _scan(
            tmp_path,
            _with_shm("""
            def broken_publish(matrix, size):
                '''Publish one matrix.

                Owns: return via call
                '''
                segment = SharedMemory(create=True, size=size)
                try:
                    fill(segment, matrix)
                except BaseException:
                    segment.close()
                    raise
                return segment, segment.close
            """),
        )
        assert "RPR109" in _codes(findings)

    def test_close_unlinks_before_closing(self, tmp_path):
        findings = _scan(
            tmp_path,
            _with_shm("""
            def broken_close(segment):
                '''Tear one segment down.

                Owns: segment via shm-segment
                '''
                segment.unlink()
                segment.close()
            """),
        )
        assert "RPR111" in _codes(findings)

    def test_fixed_shapes_are_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            _with_shm("""
            def discard(segment):
                '''Tear one segment down.

                Owns: segment via shm-segment
                '''
                segment.close()
                segment.unlink()

            def publish(matrix, size):
                '''Publish one matrix.

                Owns: return via call
                '''
                segment = SharedMemory(create=True, size=size)
                try:
                    fill(segment, matrix)
                except BaseException:
                    discard(segment)
                    raise
                return segment, segment.close
            """),
        )
        assert findings == []


# -- termination ---------------------------------------------------------------


class TestTermination:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    @pytest.mark.parametrize("guarded", [False, True])
    def test_nested_loops_reach_a_fixpoint(self, tmp_path, depth, guarded):
        # Widening must bound the per-resource state sets: nested loops
        # that acquire, maybe release, and rebind converge quickly and
        # never hang the analysis (a diverging transfer would time out
        # the whole suite long before any assertion fired).
        body = "handle = open(str(i0))\n"
        for level in range(depth):
            indent = "    " * (level + 1)
            body += f"{indent}for i{level + 1} in range(i{level}):\n"
            inner = "    " * (level + 2)
            if guarded:
                body += f"{inner}if i{level + 1} > 1:\n"
                body += f"{inner}    handle.close()\n"
                body += f"{inner}    handle = open(str(i{level + 1}))\n"
            else:
                body += f"{inner}handle = open(str(i{level + 1}))\n"
        source = (
            "def churn(i0):\n    "
            + body
            + "    handle.close()\n    return i0\n"
        )
        findings = _scan(tmp_path, source)
        if guarded:
            # close-then-rebind keeps exactly one live handle per path
            # and the trailing close releases it: clean at any depth.
            assert findings == []
        else:
            # The back edge rebinds over a still-open handle: leak.
            assert "RPR109" in _codes(findings)


# -- fixture suppressions ------------------------------------------------------


class TestSuppression:
    @pytest.mark.parametrize("code", ["RPR109", "RPR110", "RPR111"])
    def test_suppressed_fixture_is_silent(self, code):
        fixtures = Path(__file__).resolve().parent / "analysis_fixtures"
        stem = {
            "RPR109": "rpr109_leak_suppressed.py",
            "RPR110": "rpr110_use_after_release_suppressed.py",
            "RPR111": "rpr111_release_order_suppressed.py",
        }[code]
        findings = analyze(
            [fixtures / "engine" / stem], default_lifecycle_rules()
        ).findings
        assert findings == []


# -- CLI: SARIF and --changed --------------------------------------------------


def _leaky_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "leak.py").write_text(
        textwrap.dedent(
            """
            def read(path, strict):
                handle = open(path)
                if strict:
                    return ""
                text = handle.read()
                handle.close()
                return text
            """
        )
    )
    return tree


class TestSarifOutput:
    def _log(self, tmp_path, capsys, monkeypatch) -> dict:
        tree = _leaky_tree(tmp_path)
        # Relative artifact uris require the scan root under the cwd,
        # exactly as in CI where the workspace root is the cwd.
        monkeypatch.chdir(tmp_path)
        code = main(
            ["tree", "--format", "sarif", "--no-cache", "--select", "RPR109"]
        )
        assert code == 1
        return json.loads(capsys.readouterr().out)

    def test_log_is_structurally_valid_sarif(self, tmp_path, capsys, monkeypatch):
        log = self._log(tmp_path, capsys, monkeypatch)
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert len(rule_ids) == len(set(rule_ids))
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]

    def test_results_reference_rule_metadata(self, tmp_path, capsys, monkeypatch):
        log = self._log(tmp_path, capsys, monkeypatch)
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "the leaky tree must produce a result"
        for sarif_result in run["results"]:
            index = sarif_result["ruleIndex"]
            assert rules[index]["id"] == sarif_result["ruleId"] == "RPR109"
            assert sarif_result["level"] == "error"
            (location,) = sarif_result["locations"]
            region = location["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            uri = location["physicalLocation"]["artifactLocation"]["uri"]
            assert not uri.startswith("/"), "uri must be relative"

    def test_baselined_findings_carry_suppressions(self, tmp_path, capsys):
        tree = _leaky_tree(tmp_path)
        baseline = tree / ".repro-lint-baseline.json"
        assert (
            main([str(tree), "--no-cache", "--update-baseline"]) == 0
        )
        capsys.readouterr()
        code = main(
            [
                str(tree),
                "--format",
                "sarif",
                "--no-cache",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        (run,) = log["runs"]
        assert run["results"]
        for sarif_result in run["results"]:
            assert sarif_result["level"] == "note"
            assert sarif_result["suppressions"] == [{"kind": "external"}]


class TestChangedScope:
    def _git(self, cwd: Path, *arguments: str) -> None:
        subprocess.run(
            ["git", *arguments],
            cwd=cwd,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.com",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.com",
                "HOME": str(cwd),
                "PATH": "/usr/bin:/bin",
            },
        )

    def test_changed_scopes_the_report(self, tmp_path, capsys, monkeypatch):
        tree = _leaky_tree(tmp_path)
        self._git(tree, "init", "-q")
        self._git(tree, "add", "leak.py")
        self._git(tree, "commit", "-qm", "seed")
        monkeypatch.chdir(tree)

        # Committed + unchanged: the finding exists but is out of scope.
        code = main(["--format", "json", "--no-cache", "--changed", "."])
        report = json.loads(capsys.readouterr().out)
        assert code == 0 and report["findings"] == []

        # An untracked leaky file is in scope; the committed one stays out.
        (tree / "fresh.py").write_text((tree / "leak.py").read_text())
        code = main(["--format", "json", "--no-cache", "--changed", "."])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {finding["path"] for finding in report["findings"]} == {"fresh.py"}


class TestExplain:
    @pytest.mark.parametrize("code", ["RPR109", "RPR110", "RPR111"])
    def test_explain_shows_the_ownership_grammar(self, code):
        text = explain_rule(code)
        assert "Owns: return" in text
        assert "Borrows:" in text
        assert f"disable={code}" in text


# -- the live_resources probe --------------------------------------------------


class _FakePool:
    def __init__(self):
        self._published = {}
        self._executor = None

    def close(self):
        return None


class TestLiveResourcesProbe:
    @pytest.fixture
    def wrapped_close(self, monkeypatch):
        # Keep the decorate-time atexit registration out of the test
        # process; the exit check is exercised directly below.
        monkeypatch.setitem(runtime._EXIT_CHECK, "registered", True)
        monkeypatch.delenv("REPRO_PROBES_DISABLE", raising=False)
        monkeypatch.delenv("REPRO_PROBES_MAX_CHECKS", raising=False)

        def close(pool):
            return pool.close()

        return probe("live_resources")(close)

    def test_clean_close_passes(self, wrapped_close):
        assert wrapped_close(_FakePool()) is None

    def test_surviving_publication_violates(self, wrapped_close):
        pool = _FakePool()
        pool._published = {1: object()}
        with pytest.raises(ProbeViolation, match="publications survived"):
            wrapped_close(pool)

    def test_surviving_executor_violates(self, wrapped_close):
        pool = _FakePool()
        pool._executor = object()
        with pytest.raises(ProbeViolation, match="executor survived"):
            wrapped_close(pool)

    def test_exit_check_passes_when_clean(self, monkeypatch):
        exits: list[int] = []
        monkeypatch.setattr(runtime.os, "_exit", exits.append)
        runtime._exit_live_resources_check("nosuchpkg.parallel")
        assert exits == []

    def test_exit_check_flags_leaked_segments(self, monkeypatch, capsys):
        exits: list[int] = []
        monkeypatch.setattr(runtime.os, "_exit", exits.append)
        monkeypatch.setattr(
            runtime, "_own_segments", lambda prefix: {"repro_shm_1_leak"}
        )
        runtime._exit_live_resources_check("nosuchpkg.parallel")
        assert exits == [70]
        assert "leaked past interpreter exit" in capsys.readouterr().err

    def test_exit_check_flags_unbalanced_contexts(self, monkeypatch, capsys):
        exits: list[int] = []
        monkeypatch.setattr(runtime.os, "_exit", exits.append)
        context = types.ModuleType("fakepkg.context")
        context._ACTIVE = types.SimpleNamespace(stack=[object()])
        monkeypatch.setitem(sys.modules, "fakepkg.context", context)
        runtime._exit_live_resources_check("fakepkg.parallel")
        assert exits == [70]
        assert "context stack unbalanced" in capsys.readouterr().err
