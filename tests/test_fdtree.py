"""Tests for the classic FD-tree (set-trie) index."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import FDTreeIndex, PositiveCover
from repro.fd.lhs_index import BitsetLhsIndex

masks = st.integers(min_value=0, max_value=(1 << 10) - 1)


class TestBasics:
    def test_empty(self):
        trie = FDTreeIndex()
        assert len(trie) == 0
        assert not trie.contains_subset(0b111)
        assert not trie.contains_superset(0)
        assert list(trie) == []

    def test_add_contains(self):
        trie = FDTreeIndex([0b101])
        assert 0b101 in trie
        assert 0b111 not in trie
        assert len(trie) == 1

    def test_duplicate_add(self):
        trie = FDTreeIndex([0b11])
        assert not trie.add(0b11)
        assert len(trie) == 1

    def test_prefix_sets_coexist(self):
        trie = FDTreeIndex([0b001, 0b011])
        assert 0b001 in trie
        assert 0b011 in trie
        assert len(trie) == 2

    def test_remove_keeps_prefix(self):
        trie = FDTreeIndex([0b001, 0b011])
        assert trie.remove(0b011)
        assert 0b001 in trie
        assert 0b011 not in trie

    def test_remove_absent(self):
        trie = FDTreeIndex([0b001])
        assert not trie.remove(0b011)
        assert not trie.remove(0b010)

    def test_empty_mask(self):
        trie = FDTreeIndex([0])
        assert 0 in trie
        assert trie.contains_subset(0b101)
        assert trie.contains_superset(0)


class TestQueries:
    def test_superset_and_subset(self):
        trie = FDTreeIndex([0b0110, 0b1001])
        assert trie.contains_superset(0b0010)
        assert not trie.contains_superset(0b0011)
        assert trie.contains_subset(0b1111)
        assert trie.contains_subset(0b1011)
        assert not trie.contains_subset(0b0011)

    def test_contains_subset_containing(self):
        trie = FDTreeIndex([0b011, 0b100])
        assert trie.contains_subset_containing(0b111, 2)  # 0b100 has attr 2
        assert trie.contains_subset_containing(0b011, 0)
        assert not trie.contains_subset_containing(0b011, 2)

    def test_find_queries(self):
        trie = FDTreeIndex([0b001, 0b011, 0b110])
        assert trie.find_subsets(0b011) == [0b001, 0b011]
        assert trie.find_supersets(0b010) == [0b011, 0b110]


class TestEquivalenceWithReference:
    @given(st.lists(masks, max_size=40), masks)
    @settings(max_examples=200)
    def test_queries_match_bitset_index(self, stored, query):
        trie = FDTreeIndex(iter(stored))
        reference = BitsetLhsIndex(iter(stored))
        assert len(trie) == len(reference)
        assert list(trie) == list(reference)
        assert trie.find_supersets(query) == reference.find_supersets(query)
        assert trie.find_subsets(query) == reference.find_subsets(query)
        assert trie.contains_superset(query) == reference.contains_superset(query)
        assert trie.contains_subset(query) == reference.contains_subset(query)

    @given(
        st.lists(st.tuples(st.booleans(), masks), max_size=50),
        masks,
        st.integers(min_value=0, max_value=9),
    )
    @settings(max_examples=150)
    def test_mutation_and_restricted_subset(self, operations, query, attr):
        trie = FDTreeIndex()
        reference = BitsetLhsIndex()
        for is_add, mask in operations:
            if is_add:
                assert trie.add(mask) == reference.add(mask)
            else:
                assert trie.remove(mask) == reference.remove(mask)
        assert list(trie) == list(reference)
        assert trie.contains_subset_containing(
            query, attr
        ) == reference.contains_subset_containing(query, attr)


class TestAsCoverIndex:
    def test_positive_cover_on_fdtree(self, patient_relation):
        """The cover machinery is index-agnostic: EulerFD's result is
        identical when backed by the classic FD-tree."""
        from repro.core import EulerFD
        from repro.fd import covers

        baseline = EulerFD().discover(patient_relation).fds
        original = covers.default_index_factory
        covers.default_index_factory = FDTreeIndex
        try:
            with_fdtree = EulerFD().discover(patient_relation).fds
        finally:
            covers.default_index_factory = original
        assert with_fdtree == baseline

    def test_direct_cover_usage(self):
        cover = PositiveCover(3, index_factory=FDTreeIndex)
        assert len(cover) == 3
