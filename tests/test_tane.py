"""Tests for the Tane lattice-traversal baseline."""

from __future__ import annotations

import pytest

from repro.algorithms import BruteForce, Tane, TaneBudgetExceeded
from repro.fd import FD
from repro.relation import Relation


class TestExactness:
    def test_patients(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert Tane().discover(patient_relation).fds == truth

    def test_key_derived_fds_are_emitted(self, patient_relation):
        """The key-pruning path must emit FDs whose sibling lattice nodes
        were never generated (the classic completeness pitfall)."""
        result = Tane().discover(patient_relation)
        # {Age, Blood, Gender} -> Name and {Age, Gender, Medicine} -> Name.
        assert FD.of([1, 2, 3], 0) in result.fds
        assert FD.of([1, 3, 4], 0) in result.fds

    def test_constant_column(self):
        relation = Relation.from_rows([(1, "c"), (2, "c")], ["a", "b"])
        result = Tane().discover(relation)
        assert FD(0, 1) in result.fds

    def test_key_column_determines_everything(self):
        relation = Relation.from_rows(
            [(1, "x", "p"), (2, "y", "p"), (3, "x", "q")], ["k", "u", "v"]
        )
        result = Tane().discover(relation)
        assert FD.of([0], 1) in result.fds
        assert FD.of([0], 2) in result.fds

    def test_empty_relation(self):
        relation = Relation.from_rows([], ["a", "b"])
        result = Tane().discover(relation)
        assert result.fds == {FD(0, 0), FD(0, 1)}

    def test_single_row(self):
        relation = Relation.from_rows([("v", 3)], ["a", "b"])
        assert Tane().discover(relation).fds == {FD(0, 0), FD(0, 1)}

    def test_single_column(self):
        relation = Relation.from_rows([(1,), (1,)], ["a"])
        assert Tane().discover(relation).fds == {FD(0, 0)}
        relation = Relation.from_rows([(1,), (2,)], ["a"])
        assert Tane().discover(relation).fds == frozenset()

    def test_duplicate_rows(self):
        relation = Relation.from_rows([(1, 2), (1, 2), (3, 4)], ["a", "b"])
        truth = BruteForce().discover(relation).fds
        assert Tane().discover(relation).fds == truth


class TestBudgets:
    def test_max_level_budget_raises(self, patient_relation):
        with pytest.raises(TaneBudgetExceeded, match="max_level"):
            Tane(max_level=1).discover(patient_relation)

    def test_max_level_width_budget_raises(self, patient_relation):
        with pytest.raises(TaneBudgetExceeded, match="max_level_width"):
            Tane(max_level_width=2).discover(patient_relation)

    def test_generous_budget_passes(self, patient_relation):
        result = Tane(max_level=5, max_level_width=100).discover(
            patient_relation
        )
        assert len(result.fds) == 9


class TestStats:
    def test_levels_and_validations_recorded(self, patient_relation):
        stats = Tane().discover(patient_relation).stats
        assert stats["levels"] >= 2
        assert stats["validations"] > 0
