"""Tests for the execution engine: backends, partition store, contexts.

The equivalence tests treat a naive pure-Python grouping as the oracle,
so both backends are checked against something that shares no code with
either kernel.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.runner import default_algorithms, run_algorithm
from repro.datasets import registry
from repro.engine import (
    BACKEND_ENV,
    ExecutionContext,
    NumpyBackend,
    PartitionStore,
    PythonBackend,
    acquire_context,
    backend_names,
    current_context,
    get_backend,
    use_context,
)
from repro.fd import FD, attrset
from repro.relation import Relation, group_keys, preprocess
from repro.relation.partition import partition_from_labels

BACKENDS = ("numpy", "python", "columnar")


def random_relation(seed: int, rows: int = 40, columns: int = 5, card: int = 3):
    rng = random.Random(seed)
    data = [
        tuple(rng.randint(0, card - 1) for _ in range(columns))
        for _ in range(rows)
    ]
    return Relation.from_rows(
        data, [f"c{i}" for i in range(columns)], name=f"rand{seed}"
    )


def naive_fd_holds(relation: Relation, fd: FD) -> bool:
    """Dict-of-sets oracle over the raw rows, independent of any kernel."""
    columns = list(attrset.to_indices(fd.lhs))
    groups: dict[tuple, set] = {}
    for row in zip(*relation.columns):
        key = tuple(row[c] for c in columns)
        groups.setdefault(key, set()).add(row[fd.rhs])
    return all(len(values) == 1 for values in groups.values())


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert get_backend().name == "numpy"

    def test_environment_variable_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert get_backend().name == "python"
        assert ExecutionContext(random_relation(0)).backend.name == "python"

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert get_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        backend = PythonBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_registered_names(self):
        assert backend_names() == ["columnar", "numpy", "python"]
        assert isinstance(NumpyBackend(), object)


class TestValidateManyEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_per_fd_oracle_on_random_batches(self, backend):
        for seed in range(6):
            relation = random_relation(seed, rows=30 + seed * 7)
            context = ExecutionContext(relation, backend=backend)
            rng = random.Random(100 + seed)
            universe = attrset.universe(relation.num_columns)
            fds = []
            for _ in range(25):
                lhs = rng.randint(0, universe)
                rhs = rng.randrange(relation.num_columns)
                fds.append(FD(lhs & ~attrset.singleton(rhs), rhs))
            outcomes = context.validate_many(fds)
            assert [v.fd for v in outcomes] == fds  # input order kept
            for fd, outcome in zip(fds, outcomes):
                assert outcome.holds == naive_fd_holds(relation, fd), fd
                assert outcome.holds == context.fd_holds(fd)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_witnesses_actually_violate(self, backend):
        relation = random_relation(3, rows=50, columns=4, card=2)
        context = ExecutionContext(relation, backend=backend)
        fds = [
            FD(lhs & ~attrset.singleton(rhs), rhs)
            for lhs in range(2**4)
            for rhs in range(4)
        ]
        for outcome in context.validate_many(fds, witnesses=True):
            if outcome.holds:
                assert outcome.witness is None
                continue
            row_a, row_b = outcome.witness
            agree = context.data.agree_mask(row_a, row_b)
            assert outcome.fd.lhs & ~agree == 0
            assert not (agree >> outcome.fd.rhs) & 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_degenerate_batches(self, backend):
        context = ExecutionContext(
            Relation.from_rows([(1, 2)], ["a", "b"]), backend=backend
        )
        assert context.validate_many([]) == []
        # a single-row relation satisfies everything
        outcomes = context.validate_many([FD.of([0], 1), FD(0, 0)])
        assert all(v.holds for v in outcomes)

    def test_folds_once_per_distinct_lhs(self):
        relation = random_relation(11)

        class CountingBackend(NumpyBackend):
            name = "counting"
            folds = 0

            def group_keys(self, data, lhs):
                CountingBackend.folds += 1
                return super().group_keys(data, lhs)

        context = ExecutionContext(relation, backend=CountingBackend())
        lhs_a, lhs_b = 0b11, 0b101
        context.validate_many(
            [FD(lhs_a, 2), FD(lhs_b, 1), FD(lhs_a, 3), FD(lhs_b, 3), FD(lhs_a, 4)]
        )
        assert CountingBackend.folds == 2


class TestPartitionStore:
    def test_derived_partitions_match_direct_construction(self):
        relation = random_relation(7, rows=60, columns=5)
        data = preprocess(relation)
        store = PartitionStore(data)
        universe = attrset.universe(relation.num_columns)
        masks = [mask for mask in range(1, universe + 1) if attrset.size(mask) <= 3]
        for mask in masks:
            derived = store.get(mask)
            direct = partition_from_labels(
                group_keys(data, mask).tolist(), data.num_rows
            )
            assert derived == direct, bin(mask)
        # every mask is now cached: a second pass is pure hits
        before = store.stats()
        for mask in masks:
            store.get(mask)
        after = store.stats()
        assert after["hits"] - before["hits"] == len(masks)
        assert after["misses"] == before["misses"]

    def test_lru_eviction_then_rederive(self):
        relation = random_relation(9, rows=40, columns=6)
        data = preprocess(relation)
        store = PartitionStore(data, cache_size=2)
        masks = [0b11, 0b110, 0b1100, 0b11000]
        first_pass = [store.get(mask) for mask in masks]
        assert store.evictions > 0
        # the first mask was evicted; rederiving must reproduce it exactly
        evicted = masks[0]
        assert evicted not in store
        misses_before = store.misses
        again = store.get(evicted)
        assert store.misses == misses_before + 1
        assert again == first_pass[0]

    def test_singletons_are_pinned_hits(self):
        data = preprocess(random_relation(1, columns=4))
        store = PartitionStore(data)
        for attribute in range(4):
            assert store.get(attrset.singleton(attribute)) == data.stripped[attribute]
        assert store.misses == 0
        assert store.hits == 4

    def test_put_rejects_foreign_partition(self):
        store = PartitionStore(preprocess(random_relation(2, rows=10)))
        foreign = partition_from_labels([0, 0, 1], 3)
        with pytest.raises(ValueError, match="different relation"):
            store.put(0b11, foreign)

    def test_rejects_non_positive_cache_size(self):
        with pytest.raises(ValueError, match="cache_size"):
            PartitionStore(preprocess(random_relation(2)), cache_size=0)


class TestContextSharing:
    def test_acquire_returns_matching_active_context(self):
        relation = random_relation(4)
        context = ExecutionContext(relation)
        assert current_context() is None
        with use_context(context):
            assert current_context() is context
            assert acquire_context(relation) is context
            # different NULL semantics -> private context
            assert acquire_context(relation, null_equals_null=False) is not context
            # different relation -> private context
            assert acquire_context(random_relation(5)) is not context
        assert current_context() is None

    def test_use_context_nests(self):
        outer = ExecutionContext(random_relation(4))
        inner = ExecutionContext(random_relation(5))
        with use_context(outer):
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer

    def test_shared_context_produces_cache_hits_across_algorithms(self):
        """Acceptance: a bench matrix over one dataset reuses partitions."""
        relation = registry.make("iris", rows=60, seed=1)
        context = ExecutionContext(relation)
        algorithms = default_algorithms()
        runs = [
            run_algorithm(algorithms[name], relation, context=context)
            for name in ("Tane", "EulerFD")
        ]
        assert all(run.ok for run in runs)
        assert all(run.backend == context.backend.name for run in runs)
        # the second algorithm rides on partitions the first one warmed
        assert runs[1].partition_cache["hits"] > 0
        total = context.partitions.stats()
        assert total["hits"] == sum(r.partition_cache["hits"] for r in runs)


class TestBackendEndToEndEquivalence:
    @pytest.mark.parametrize("algorithm", ("Tane", "HyFD", "EulerFD"))
    def test_backends_find_identical_fd_sets(self, algorithm):
        relation = registry.make("echocardiogram", rows=120, seed=2)
        results = {}
        for backend in BACKENDS:
            context = ExecutionContext(relation, backend=backend)
            with use_context(context):
                results[backend] = (
                    default_algorithms()[algorithm]().discover(relation).fds
                )
        assert results["numpy"] == results["python"]
        assert results["numpy"] == results["columnar"]
