"""Tests for the extended binary LHS tree (Section IV-D)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd.binary_tree import BinaryLhsTree
from repro.fd.lhs_index import BitsetLhsIndex

masks = st.integers(min_value=0, max_value=(1 << 10) - 1)


class TestStructure:
    def test_empty_tree(self):
        tree = BinaryLhsTree()
        assert len(tree) == 0
        assert list(tree) == []
        assert tree.depth() == 0
        assert not tree.contains_superset(0)
        assert not tree.contains_subset(0b1)

    def test_single_leaf(self):
        tree = BinaryLhsTree([0b101])
        assert len(tree) == 1
        assert tree.depth() == 1
        assert 0b101 in tree

    def test_split_on_insert(self):
        tree = BinaryLhsTree([0b101, 0b100])
        assert len(tree) == 2
        assert tree.depth() == 2
        assert 0b101 in tree and 0b100 in tree

    def test_duplicate_insert_is_noop(self):
        tree = BinaryLhsTree([0b11])
        assert not tree.add(0b11)
        assert len(tree) == 1

    def test_remove_leaf_collapses_parent(self):
        tree = BinaryLhsTree([0b01, 0b10, 0b11])
        assert tree.remove(0b10)
        assert len(tree) == 2
        tree.check_invariants()

    def test_remove_root_leaf(self):
        tree = BinaryLhsTree([0b1])
        assert tree.remove(0b1)
        assert len(tree) == 0
        assert tree.depth() == 0

    def test_remove_absent(self):
        tree = BinaryLhsTree([0b01, 0b10])
        assert not tree.remove(0b11)
        assert len(tree) == 2

    def test_empty_mask_lives_alongside_others(self):
        tree = BinaryLhsTree([0, 0b111])
        assert 0 in tree
        assert tree.contains_subset(0b1)
        tree.check_invariants()

    def test_invariants_after_mixed_operations(self):
        tree = BinaryLhsTree()
        for mask in (0b0011, 0b0101, 0b1001, 0b1111, 0b0000, 0b0110):
            tree.add(mask)
        tree.check_invariants()
        tree.remove(0b0101)
        tree.remove(0b1111)
        tree.check_invariants()
        assert sorted(tree) == sorted({0b0011, 0b1001, 0b0000, 0b0110})


class TestAttributePriority:
    def test_priority_controls_split_attribute(self):
        # With priority favouring attribute 2, the root split of
        # {0b001, 0b100} tests attribute 2 instead of attribute 0.
        tree = BinaryLhsTree(attr_priority=[2, 1, 0])
        tree.add(0b001)
        tree.add(0b100)
        assert tree._root is not None and tree._root.attr == 2
        tree.check_invariants()

    def test_default_priority_uses_lowest_index(self):
        tree = BinaryLhsTree()
        tree.add(0b001)
        tree.add(0b100)
        assert tree._root is not None and tree._root.attr == 0


class TestPaperExample:
    """Figure 4: Ncover-tree construction for RHS N.

    LHS masks over attributes (N=0, A=1, B=2, G=3, M=4); the stored
    non-FD LHSs are AMB, MBG, AG.
    """

    AMB = 0b10110  # {A, M, B}
    MBG = 0b11100  # {M, B, G}
    AG = 0b01010  # {A, G}
    BG = 0b01100  # {B, G}

    def build(self) -> BinaryLhsTree:
        return BinaryLhsTree([self.AMB, self.MBG, self.AG])

    def test_bg_is_specialized_by_mbg(self):
        tree = self.build()
        assert tree.contains_superset(self.BG)

    def test_ag_not_specialized_before_insert(self):
        tree = BinaryLhsTree([self.AMB, self.MBG])
        assert not tree.contains_superset(self.AG)

    def test_contents(self):
        assert sorted(self.build()) == sorted([self.AMB, self.MBG, self.AG])

    def test_invariants(self):
        self.build().check_invariants()


class TestEquivalenceWithBitsetIndex:
    """The tree and the reference index must agree on everything."""

    @given(st.lists(masks, max_size=40), masks)
    @settings(max_examples=200)
    def test_same_query_results(self, stored, query):
        tree = BinaryLhsTree(iter(stored))
        reference = BitsetLhsIndex(iter(stored))
        assert len(tree) == len(reference)
        assert list(tree) == list(reference)
        assert tree.find_supersets(query) == reference.find_supersets(query)
        assert tree.find_subsets(query) == reference.find_subsets(query)
        assert tree.contains_superset(query) == reference.contains_superset(query)
        assert tree.contains_subset(query) == reference.contains_subset(query)
        tree.check_invariants()

    @given(
        st.lists(st.tuples(st.booleans(), masks), max_size=60),
        masks,
    )
    @settings(max_examples=200)
    def test_same_results_under_interleaved_removal(self, operations, query):
        tree = BinaryLhsTree()
        reference = BitsetLhsIndex()
        for is_add, mask in operations:
            if is_add:
                assert tree.add(mask) == reference.add(mask)
            else:
                assert tree.remove(mask) == reference.remove(mask)
        tree.check_invariants()
        assert list(tree) == list(reference)
        assert tree.find_supersets(query) == reference.find_supersets(query)
        assert tree.find_subsets(query) == reference.find_subsets(query)

    @given(st.lists(masks, min_size=1, max_size=40))
    def test_membership(self, stored):
        tree = BinaryLhsTree(iter(stored))
        for mask in stored:
            assert mask in tree
        absent = max(stored) + 1
        assert (absent in tree) == (absent in set(stored))


class TestDepthBound:
    def test_depth_bounded_by_attribute_count(self):
        # Path attributes are distinct, so depth <= attributes + 1.
        tree = BinaryLhsTree(iter(range(256)))
        assert tree.depth() <= 9
