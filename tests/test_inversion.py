"""Tests for the inversion module (Algorithm 3)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inversion import Inverter
from repro.fd import FD, NegativeCover, attrset

# Patient attribute initials: N=0, A=1, B=2, G=3, M=4.
N, A, B, G, M = range(5)


def minimal_escaping_sets(non_fd_lhss: list[int], num_attributes: int, rhs: int):
    """Oracle: minimal LHSs (without rhs) not contained in any invalid LHS."""
    allowed = attrset.universe(num_attributes) & ~attrset.singleton(rhs)
    escaping = [
        mask
        for mask in attrset.all_subsets(allowed)
        if not any(mask & ~bad == 0 for bad in non_fd_lhss)
    ]
    minimal = set()
    for mask in sorted(escaping, key=attrset.size):
        if not any(attrset.is_subset(kept, mask) for kept in minimal):
            minimal.add(mask)
    return minimal


class TestPaperFigure5:
    """Inversion for RHS Name with non-FDs MBG, AG, AMB (Fig. 5)."""

    def run_inversion(self):
        inverter = Inverter(5)
        non_fds = [FD.of([M, B, G], N), FD.of([A, G], N), FD.of([A, M, B], N)]
        stats = inverter.process(non_fds)
        return inverter, stats

    def test_final_cover_matches_figure(self):
        inverter, _ = self.run_inversion()
        got = set(inverter.pcover.lhs_masks(N))
        expected = {
            attrset.from_indices([A, B, G]),
            attrset.from_indices([A, M, G]),
        }
        assert got == expected

    def test_most_general_candidate_removed(self):
        inverter, _ = self.run_inversion()
        assert FD(0, N) not in inverter.pcover

    def test_other_rhs_untouched(self):
        inverter, _ = self.run_inversion()
        assert FD(0, A) in inverter.pcover  # still the seeded {} -> A

    def test_stats_counted(self):
        _, stats = self.run_inversion()
        assert stats.non_fds_processed == 3
        assert stats.candidates_removed >= 3
        assert stats.candidates_added >= 2


class TestIncrementalEquivalence:
    """Processing non-FDs in one batch or in arbitrary splits/orders must
    produce the same positive cover (the property the double cycle relies
    on)."""

    def test_split_processing_matches_batch(self):
        non_fds = [FD.of([M, B, G], N), FD.of([A, G], N), FD.of([A, M, B], N)]
        batch = Inverter(5)
        batch.process(non_fds)
        split = Inverter(5)
        split.process(non_fds[:1])
        split.process(non_fds[1:])
        assert set(batch.pcover) == set(split.pcover)

    def test_order_independence(self):
        non_fds = [FD.of([M, B, G], N), FD.of([A, G], N), FD.of([A, M, B], N)]
        forward = Inverter(5)
        forward.process(non_fds)
        backward = Inverter(5)
        backward.process(list(reversed(non_fds)))
        assert set(forward.pcover) == set(backward.pcover)

    def test_reprocessing_is_idempotent(self):
        non_fds = [FD.of([A, G], N), FD.of([M, B, G], N)]
        inverter = Inverter(5)
        inverter.process(non_fds)
        snapshot = set(inverter.pcover)
        stats = inverter.process(non_fds)
        assert set(inverter.pcover) == snapshot
        assert stats.candidates_removed == 0


class TestAgainstOracle:
    masks6 = st.integers(min_value=0, max_value=(1 << 6) - 1)

    @given(st.lists(masks6, max_size=14), st.integers(min_value=0, max_value=5))
    @settings(max_examples=200, deadline=None)
    def test_inversion_computes_minimal_escaping_family(self, lhss, rhs):
        rhs_bit = attrset.singleton(rhs)
        non_fds = [FD(lhs & ~rhs_bit, rhs) for lhs in lhss]
        inverter = Inverter(6)
        inverter.process(non_fds)
        expected = minimal_escaping_sets(
            [fd.lhs for fd in non_fds], 6, rhs
        )
        assert set(inverter.pcover.lhs_masks(rhs)) == expected

    @given(
        st.lists(st.tuples(masks6, st.integers(min_value=0, max_value=5)),
                 max_size=20),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_incremental_matches_batch_random_split(self, raw, data):
        non_fds = [FD(lhs & ~attrset.singleton(rhs), rhs) for lhs, rhs in raw]
        cut = data.draw(st.integers(min_value=0, max_value=len(non_fds)))
        batch = Inverter(6)
        batch.process(non_fds)
        split = Inverter(6)
        split.process(non_fds[:cut])
        split.process(non_fds[cut:])
        assert set(batch.pcover) == set(split.pcover)


class TestNegativeCoverIntegration:
    def test_inverting_cover_contents_prunes_redundant_non_fds(self):
        """Feeding a cover's minimized contents equals feeding everything."""
        raw = [
            FD.of([A, M, B], N), FD.of([B, G], N), FD.of([M, B, G], N),
            FD.of([A, G], N), FD.of([A], B), FD.of([A, G], B),
        ]
        cover = NegativeCover(5)
        admitted = [fd for fd in raw if cover.add(fd)]
        from_cover = Inverter(5)
        from_cover.process(cover)
        from_raw = Inverter(5)
        from_raw.process(raw)
        assert set(from_cover.pcover) == set(from_raw.pcover)
        assert len(admitted) <= len(raw)
