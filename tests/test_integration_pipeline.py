"""End-to-end integration flows across subsystem boundaries."""

from __future__ import annotations

import json

from repro import EulerFD, discover_fds, profile_relation
from repro.algorithms import BruteForce, Fdep
from repro.cli import main
from repro.core.result import DiscoveryResult
from repro.datasets import make, patients
from repro.fd import FD, armstrong_relation, inference
from repro.metrics import f1_score
from repro.relation import read_csv, write_csv


class TestCsvRoundtripDiscovery:
    def test_generated_csv_rediscovers_same_fds(self, tmp_path):
        relation = make("bridges", rows=108)
        path = tmp_path / "bridges.csv"
        write_csv(relation, path)
        loaded = read_csv(path)
        # Values come back as strings; label-based discovery must agree.
        original = Fdep().discover(relation).fds
        reloaded = Fdep().discover(loaded).fds
        assert original == reloaded

    def test_cli_discovery_matches_api(self, tmp_path, capsys):
        path = tmp_path / "patients.csv"
        write_csv(patients(), path)
        assert main(["discover", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        loaded = read_csv(path)
        via_cli = DiscoveryResult.fds_from_dict(payload, loaded.column_names)
        via_api = discover_fds(loaded).fds
        assert via_cli == via_api


class TestCoverPostprocessing:
    def test_discovered_cover_survives_minimization(self, patient_relation):
        discovered = EulerFD().discover(patient_relation).fds
        minimized = inference.minimize_cover(discovered)
        assert inference.equivalent(minimized, discovered)
        assert len(minimized) <= len(discovered)

    def test_armstrong_witness_of_discovered_cover(self, patient_relation):
        discovered = BruteForce().discover(patient_relation).fds
        witness = armstrong_relation(
            discovered,
            patient_relation.num_columns,
            column_names=patient_relation.column_names,
        )
        rediscovered = BruteForce().discover(witness).fds
        assert inference.equivalent(rediscovered, discovered)

    def test_profile_fds_feed_key_computation(self, patient_relation):
        profile = profile_relation(patient_relation)
        keys = inference.candidate_keys(
            patient_relation.num_columns, list(profile.fds.fds)
        )
        # The FD-derived keys must agree with the UCC discovery.
        assert set(keys) == set(profile.uccs.uccs)


class TestApproximateVsExactPipeline:
    def test_eulerfd_approximation_quality_on_every_algorithm_pair(self):
        relation = make("abalone", rows=800)
        truth = Fdep().discover(relation).fds
        approx = EulerFD().discover(relation).fds
        assert f1_score(approx, truth) >= 0.95
        # Implication safety: the approximate cover implies the truth.
        for fd in truth:
            assert inference.implies(approx, fd)

    def test_obfuscation_closure_consistency(self, patient_relation):
        """Determinants computed from approximate and exact covers agree
        when the covers agree."""
        exact = BruteForce().discover(patient_relation).fds
        approx = EulerFD().discover(patient_relation).fds
        assert exact == approx
        age = patient_relation.column_index("Age")
        exact_det = inference.determinants_of(age, exact, 5)
        approx_det = inference.determinants_of(age, approx, 5)
        assert exact_det == approx_det


class TestResultSerialization:
    def test_json_roundtrip_preserves_fds(self, patient_relation):
        result = EulerFD().discover(patient_relation)
        payload = json.loads(result.to_json())
        rebuilt = DiscoveryResult.fds_from_dict(
            payload, patient_relation.column_names
        )
        assert rebuilt == result.fds

    def test_json_contains_stats(self, patient_relation):
        result = EulerFD().discover(patient_relation)
        payload = json.loads(result.to_json())
        assert payload["stats"]["cycles"] >= 1
        assert payload["num_columns"] == 5
