"""Tests for the g1/g2/g3 violation measures."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import FD, attrset
from repro.metrics import g3_error, violation_profile
from repro.relation import Relation, fd_holds, preprocess


def data_of(rows):
    return preprocess(Relation.from_rows(rows))


class TestHandComputed:
    def test_exact_fd_has_zero_errors(self):
        data = data_of([(1, "a"), (2, "b"), (1, "a")])
        profile = violation_profile(data, FD.of([0], 1))
        assert profile.holds
        assert profile.g1 == profile.g2 == profile.g3 == 0.0

    def test_single_violation(self):
        # Group {rows 0, 1} under lhs value 1: values a, b -> one bad pair.
        data = data_of([(1, "a"), (1, "b"), (2, "c")])
        profile = violation_profile(data, FD.of([0], 1))
        assert profile.violating_pairs == 1
        assert profile.violating_tuples == 2
        assert profile.tuples_to_remove == 1
        assert profile.g1 == 1 / 3  # 3 total pairs
        assert profile.g2 == 2 / 3
        assert profile.g3 == 1 / 3

    def test_majority_value_kept_for_g3(self):
        # Group of 5: values a, a, a, b, c -> remove 2 tuples.
        rows = [(1, v) for v in "aaabc"]
        data = data_of(rows)
        profile = violation_profile(data, FD.of([0], 1))
        assert profile.tuples_to_remove == 2
        assert profile.violating_pairs == 3 * 1 + 3 * 1 + 1  # ab*3, ac*3, bc

    def test_multiple_groups(self):
        rows = [(1, "x"), (1, "y"), (2, "x"), (2, "x"), (3, "z")]
        data = data_of(rows)
        profile = violation_profile(data, FD.of([0], 1))
        assert profile.violating_pairs == 1
        assert profile.violating_tuples == 2
        assert profile.tuples_to_remove == 1

    def test_empty_lhs(self):
        data = data_of([(1, "a"), (2, "a"), (3, "b")])
        profile = violation_profile(data, FD(0, 1))
        assert profile.violating_pairs == 2  # (a,b) twice
        assert profile.tuples_to_remove == 1

    def test_empty_relation(self):
        data = preprocess(Relation.from_rows([], ["a", "b"]))
        profile = violation_profile(data, FD.of([0], 1))
        assert profile.g1 == profile.g2 == profile.g3 == 0.0

    def test_paper_g_not_m(self):
        """G -/-> M on the patient data (Example 1)."""
        from repro.datasets import patients

        data = preprocess(patients())
        profile = violation_profile(data, FD.of([3], 4))
        assert not profile.holds
        assert profile.g3 > 0


class TestConsistencyProperties:
    small_rows = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=20,
    )

    @given(small_rows, st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=120)
    def test_holds_iff_fd_holds(self, rows, lhs, rhs):
        relation = Relation.from_rows(rows, ["a", "b", "c"])
        data = preprocess(relation)
        fd = FD(lhs & ~attrset.singleton(rhs), rhs)
        profile = violation_profile(data, fd)
        assert profile.holds == fd_holds(data, fd)
        assert (profile.g3 == 0.0) == profile.holds

    @given(small_rows, st.integers(min_value=0, max_value=2))
    @settings(max_examples=120)
    def test_g3_matches_naive(self, rows, rhs):
        relation = Relation.from_rows(rows, ["a", "b", "c"])
        data = preprocess(relation)
        lhs = attrset.universe(3) & ~attrset.singleton(rhs) & 0b011
        fd = FD(lhs & ~attrset.singleton(rhs), rhs)
        groups: dict[tuple, dict[int, int]] = {}
        columns = list(attrset.to_indices(fd.lhs))
        for row in rows:
            key = tuple(row[c] for c in columns)
            counter = groups.setdefault(key, {})
            counter[row[rhs]] = counter.get(row[rhs], 0) + 1
        expected = sum(
            sum(counts.values()) - max(counts.values())
            for counts in groups.values()
        )
        assert violation_profile(data, fd).tuples_to_remove == expected

    @given(small_rows, st.integers(min_value=0, max_value=2))
    @settings(max_examples=100)
    def test_g3_shrinks_with_larger_lhs(self, rows, rhs):
        """Adding attributes to the LHS can only reduce violations."""
        relation = Relation.from_rows(rows, ["a", "b", "c"])
        data = preprocess(relation)
        others = [i for i in range(3) if i != rhs]
        small = FD(attrset.singleton(others[0]), rhs)
        large = FD(attrset.from_indices(others), rhs)
        assert g3_error(data, large) <= g3_error(data, small)
