"""Tests for the brute-force oracle itself (checked by hand)."""

from __future__ import annotations

import pytest

from repro.algorithms import BruteForce
from repro.fd import FD
from repro.relation import Relation


class TestHandVerified:
    def test_two_column_functional(self):
        relation = Relation.from_rows(
            [(1, "a"), (2, "b"), (1, "a")], ["x", "y"]
        )
        result = BruteForce().discover(relation)
        assert result.fds == {FD.of([0], 1), FD.of([1], 0)}

    def test_two_column_one_direction(self):
        relation = Relation.from_rows(
            [(1, "a"), (2, "a"), (2, "a"), (3, "b")], ["x", "y"]
        )
        result = BruteForce().discover(relation)
        assert result.fds == {FD.of([0], 1)}  # y -/-> x: 'a' maps to 1 and 2

    def test_composite_minimal_lhs(self):
        rows = [
            (0, 0, "p"),
            (0, 1, "q"),
            (1, 0, "r"),
            (1, 1, "s"),
            (0, 0, "p"),
        ]
        relation = Relation.from_rows(rows, ["a", "b", "c"])
        result = BruteForce().discover(relation)
        # c is a key here (p,q,r,s distinct rows except the duplicate).
        assert FD.of([0, 1], 2) in result.fds
        assert FD.of([0], 2) not in result.fds
        assert FD.of([2], 0) in result.fds
        assert FD.of([2], 1) in result.fds

    def test_paper_example1(self, patient_relation):
        """Example 1: AB -> M holds, N -> B holds, G -/-> M."""
        result = BruteForce().discover(patient_relation)
        # N (a key) determines everything, so N -> B is subsumed by [N].
        assert FD.of([0], 2) in result.fds
        # AB -> M: A=Age(1), B=Blood(2), M=Medicine(4).
        assert FD.of([1, 2], 4) in result.fds
        # G -/-> M: no FD with LHS {Gender} and RHS Medicine.
        assert FD.of([3], 4) not in result.fds

    def test_trivial_fds_never_reported(self, patient_relation):
        for fd in BruteForce().discover(patient_relation).fds:
            assert not fd.is_trivial()

    def test_minimality(self, patient_relation):
        fds = BruteForce().discover(patient_relation).fds
        for fd in fds:
            for other in fds:
                if other != fd and other.rhs == fd.rhs:
                    assert not other.generalizes(fd)


class TestGuards:
    def test_width_guard(self):
        relation = Relation.from_rows([tuple(range(20))])
        with pytest.raises(ValueError, match="oracle"):
            BruteForce(max_columns=14).discover(relation)

    def test_width_guard_configurable(self):
        relation = Relation.from_rows([tuple(range(16)), tuple(range(16))])
        result = BruteForce(max_columns=16).discover(relation)
        assert len(result.fds) > 0
