"""Tests for the Relation value type."""

from __future__ import annotations

import pytest

from repro.relation import Relation, default_column_names


class TestConstruction:
    def test_from_rows(self):
        relation = Relation.from_rows([(1, "a"), (2, "b")], ["id", "name"])
        assert relation.shape == (2, 2)
        assert relation.columns == ((1, 2), ("a", "b"))

    def test_from_columns(self):
        relation = Relation.from_columns([[1, 2], ["a", "b"]], ["id", "name"])
        assert relation.row(0) == (1, "a")

    def test_default_names(self):
        relation = Relation.from_rows([(1, 2, 3)])
        assert relation.column_names == ("col_0", "col_1", "col_2")

    def test_default_column_names_helper(self):
        assert default_column_names(2) == ("col_0", "col_1")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="row 1"):
            Relation.from_rows([(1, 2), (3,)])

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Relation.from_columns([[1, 2], [3]])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Relation.from_rows([(1, 2)], ["a", "a"])

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_rows([(1, 2)], ["only-one"])

    def test_empty_relation_needs_names(self):
        with pytest.raises(ValueError):
            Relation.from_rows([])
        relation = Relation.from_rows([], ["a", "b"])
        assert relation.shape == (0, 2)


class TestAccess:
    def setup_method(self):
        self.relation = Relation.from_rows(
            [(1, "x", True), (2, "y", False)], ["id", "tag", "flag"]
        )

    def test_row(self):
        assert self.relation.row(1) == (2, "y", False)

    def test_iter_rows(self):
        assert list(self.relation.iter_rows()) == [(1, "x", True), (2, "y", False)]

    def test_column_by_name(self):
        assert self.relation.column("tag") == ("x", "y")

    def test_column_by_index(self):
        assert self.relation.column(0) == (1, 2)

    def test_unknown_column_name(self):
        with pytest.raises(KeyError, match="no column named"):
            self.relation.column("missing")

    def test_column_index_out_of_range(self):
        with pytest.raises(IndexError):
            self.relation.column(7)

    def test_len_is_rows(self):
        assert len(self.relation) == 2


class TestSlicing:
    def setup_method(self):
        self.relation = Relation.from_rows(
            [(i, i % 2, i % 3) for i in range(10)], ["a", "b", "c"], name="s"
        )

    def test_head(self):
        head = self.relation.head(4)
        assert head.num_rows == 4
        assert head.num_columns == 3
        assert head.column("a") == (0, 1, 2, 3)

    def test_head_beyond_size_is_capped(self):
        assert self.relation.head(99).num_rows == 10

    def test_project_by_names(self):
        projected = self.relation.project(["c", "a"])
        assert projected.column_names == ("c", "a")
        assert projected.row(4) == (1, 4)

    def test_first_columns(self):
        assert self.relation.first_columns(2).column_names == ("a", "b")

    def test_first_columns_capped(self):
        assert self.relation.first_columns(99).num_columns == 3

    def test_slices_are_new_relations(self):
        head = self.relation.head(2)
        assert head is not self.relation
        assert self.relation.num_rows == 10
