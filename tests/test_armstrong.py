"""Tests for Armstrong relation synthesis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BruteForce
from repro.fd import FD, attrset, inference
from repro.fd.armstrong import armstrong_relation, closed_sets


def fds_of(*pairs):
    return [FD.of(lhs, rhs) for lhs, rhs in pairs]


class TestClosedSets:
    def test_no_fds_everything_closed(self):
        assert len(closed_sets([], 3)) == 8

    def test_simple_fd(self):
        # 0 -> 1: sets containing 0 must contain 1.
        closed = closed_sets(fds_of(([0], 1)), 2)
        assert 0b01 not in closed  # {0} is not closed
        assert set(closed) == {0b00, 0b10, 0b11}

    def test_universe_always_closed(self):
        for fds in ([], fds_of(([0], 1), ([1], 2))):
            assert attrset.universe(3) in closed_sets(fds, 3)

    def test_closed_sets_intersection_closed(self):
        fds = fds_of(([0], 1), ([1, 2], 3), ([3], 0))
        closed = closed_sets(fds, 4)
        for left in closed:
            for right in closed:
                assert (left & right) in closed


class TestArmstrongRelation:
    def test_simple_cover_roundtrip(self):
        fds = fds_of(([0], 1))
        relation = armstrong_relation(fds, 3)
        rediscovered = BruteForce().discover(relation).fds
        assert inference.equivalent(rediscovered, fds)

    def test_empty_cover(self):
        relation = armstrong_relation([], 3)
        rediscovered = BruteForce().discover(relation).fds
        assert rediscovered == frozenset()  # nothing holds, nothing implied

    def test_patients_cover_roundtrip(self, patient_relation):
        original = BruteForce().discover(patient_relation).fds
        witness = armstrong_relation(original, patient_relation.num_columns)
        rediscovered = BruteForce().discover(witness).fds
        assert inference.equivalent(rediscovered, original)

    def test_base_row_is_zeroes(self):
        relation = armstrong_relation(fds_of(([0], 1)), 2)
        assert relation.row(0) == (0, 0)

    def test_width_guard(self):
        with pytest.raises(ValueError, match="max_attributes"):
            armstrong_relation([], 20)
        with pytest.raises(ValueError, match="at least one"):
            armstrong_relation([], 0)

    def test_custom_names(self):
        relation = armstrong_relation([], 2, column_names=["x", "y"])
        assert relation.column_names == ("x", "y")


class TestRoundtripProperty:
    small_fds = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 4) - 1),
            st.integers(min_value=0, max_value=3),
        ).map(lambda pair: FD(pair[0] & ~attrset.singleton(pair[1]), pair[1])),
        max_size=6,
    )

    @given(small_fds)
    @settings(max_examples=60, deadline=None)
    def test_rediscovered_cover_is_equivalent(self, fds):
        relation = armstrong_relation(fds, 4)
        rediscovered = BruteForce().discover(relation).fds
        assert inference.equivalent(rediscovered, fds)
