"""Tests for the CFG/dataflow layer, the rules built on it (RPR106-108),
the incremental lint cache, ``--explain``, and the sanitize probes."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import analyze, default_rules, explain_rule
from repro.analysis._contracts_runtime import ProbeViolation, probe
from repro.analysis.cache import LintCache, find_cache_dir
from repro.analysis.cfg import build_cfg
from repro.analysis.cli import main
from repro.analysis.dataflow import run_forward, statement_states
from repro.analysis.dataflow_rules import _WidthAnalysis, default_dataflow_rules
from repro.analysis.sanitize import sanitize_package

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "analysis_fixtures"


def _function(source: str) -> ast.FunctionDef:
    node = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


class TestCFG:
    """Golden renders: the block structure is part of the layer's contract."""

    def test_branch(self):
        cfg = build_cfg(
            _function(
                """
                def branch(x):
                    total = 0
                    if x > 0:
                        total = x
                    else:
                        total = -x
                    return total
                """
            )
        )
        assert cfg.render() == textwrap.dedent(
            """\
            B0: [total = 0; test x > 0] -> true:B1 false:B2
            B1: [total = x] -> B3
            B2: [total = -x] -> B3
            B3: [return total] -> B4
            B4: [<exit>]"""
        )

    def test_loop_with_back_edge(self):
        cfg = build_cfg(
            _function(
                """
                def loop(items):
                    total = 0
                    for item in items:
                        total += item
                    return total
                """
            )
        )
        assert cfg.render() == textwrap.dedent(
            """\
            B0: [total = 0] -> B1
            B1: [for item in items] -> true:B3 false:B2
            B2: [return total] -> B4
            B3: [total += item] -> back:B1
            B4: [<exit>]"""
        )

    def test_try_except_edges(self):
        cfg = build_cfg(
            _function(
                """
                def guarded(path):
                    try:
                        value = int(path)
                    except ValueError:
                        value = 0
                    return value
                """
            )
        )
        assert cfg.render() == textwrap.dedent(
            """\
            B0: [<empty>] -> B1
            B1: [value = int(path)] -> except:B2 B3
            B2: [except ValueError; value = 0] -> B3
            B3: [return value] -> B4
            B4: [<exit>]"""
        )

    def test_comprehension_stays_one_statement(self):
        # Comprehensions are expressions: they must not explode into
        # loop blocks of the enclosing function's CFG.
        cfg = build_cfg(
            _function(
                """
                def comp(rows):
                    return [row[0] for row in rows if row]
                """
            )
        )
        assert cfg.render() == textwrap.dedent(
            """\
            B0: [return [row[0] for row in rows if row]] -> B1
            B1: [<exit>]"""
        )


class TestFixpoint:
    def test_widening_terminates_growing_loop(self):
        """The width domain grows on every loop pass (keys * cardinality);
        without widening the fixpoint would climb forever."""
        function = _function(
            """
            def fold(matrix, columns):
                keys = matrix[:, 0]
                for column in columns:
                    cardinality = int(matrix[:, column].max(initial=0)) + 1
                    keys = keys * cardinality
                return keys
            """
        )
        cfg = build_cfg(function)
        analysis = _WidthAnalysis()
        states = run_forward(cfg, analysis)  # must terminate
        widths = [
            state["keys"].bits
            for node, state in statement_states(cfg, states, analysis)
            if isinstance(node, ast.Return)
        ]
        assert widths == [float("inf")]


class TestRuleFixtures:
    """The acceptance fixtures: positive flagged, clean/suppressed silent."""

    @pytest.fixture(scope="class")
    def findings(self):
        return analyze([FIXTURES], default_dataflow_rules()).findings

    def _rules_for(self, findings, relpath):
        return {finding.rule for finding in findings if finding.path == relpath}

    def test_62_column_fold_flagged_by_rpr108(self, findings):
        flagged = [
            finding
            for finding in findings
            if finding.path == "relation/rpr108_overflow.py"
        ]
        assert {finding.rule for finding in flagged} == {"RPR108"}
        assert any("wrap int64" in finding.message for finding in flagged)

    def test_unordered_merge_flagged_by_rpr107(self, findings):
        flagged = [
            finding
            for finding in findings
            if finding.path == "core/rpr107_unordered.py"
        ]
        assert {finding.rule for finding in flagged} == {"RPR107"}
        assert any("unordered provenance" in finding.message for finding in flagged)

    def test_mutable_capture_flagged_by_rpr106(self, findings):
        assert self._rules_for(findings, "core/rpr106_escape.py") == {"RPR106"}

    @pytest.mark.parametrize(
        "relpath",
        [
            "core/rpr106_escape_ok.py",
            "core/rpr106_escape_suppressed.py",
            "core/rpr107_unordered_ok.py",
            "core/rpr107_unordered_suppressed.py",
            "relation/rpr108_overflow_ok.py",
            "relation/rpr108_overflow_suppressed.py",
        ],
    )
    def test_clean_and_suppressed_variants_are_silent(self, findings, relpath):
        assert self._rules_for(findings, relpath) == set()


class TestFlowSensitivity:
    """Targeted behaviours of the three analyses on tiny trees."""

    def _scan(self, tmp_path: Path, relpath: str, source: str):
        module = tmp_path / relpath
        module.parent.mkdir(parents=True, exist_ok=True)
        for parent in module.relative_to(tmp_path).parents:
            if str(parent) != ".":
                (tmp_path / parent / "__init__.py").touch()
        module.write_text(textwrap.dedent(source))
        return analyze([tmp_path], default_dataflow_rules()).findings

    def test_rpr106_flags_bound_self_method(self, tmp_path):
        findings = self._scan(
            tmp_path,
            "core/runner.py",
            """\
            class Runner:
                def run(self, pool, tasks):
                    return pool.map_chunks(self._task, tasks)
            """,
        )
        assert [finding.rule for finding in findings] == ["RPR106"]
        assert "self._task" in findings[0].message

    def test_rpr107_interprocedural_summary(self, tmp_path):
        # helper()'s set-ordered return taints the caller's sink arg
        findings = self._scan(
            tmp_path,
            "core/pipeline.py",
            """\
            def helper(raw):
                return set(raw)


            def publish(raw):
                out = list(helper(raw))
                return make_result(out, "x")
            """,
        )
        assert [finding.rule for finding in findings] == ["RPR107"]
        assert "set-ordered" in findings[0].message

    def test_rpr108_guard_dominance_is_flow_sensitive(self, tmp_path):
        # same fold expression, different path facts: a raising
        # fold-limit guard means every path to the multiply crossed the
        # guard's safe edge, so the identical fold below stays silent
        guarded = self._scan(
            tmp_path,
            "relation/guarded.py",
            """\
            def fold(keys, labels, limit):
                cardinality = int(labels.max(initial=0)) + 1
                bound = int(keys.max(initial=0)) + 1
                if bound * cardinality >= limit:
                    raise OverflowError("fold limit")
                return keys * cardinality + labels
            """,
        )
        assert guarded == []
        unguarded = self._scan(
            tmp_path,
            "relation/unguarded.py",
            """\
            def fold(keys, labels):
                cardinality = int(labels.max(initial=0)) + 1
                return keys * cardinality + labels
            """,
        )
        assert [finding.rule for finding in unguarded] == ["RPR108"]
        assert "2^64" in unguarded[0].message


class TestLintCache:
    def _tree(self, tmp_path: Path) -> Path:
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        core = tmp_path / "core"
        core.mkdir()
        (core / "__init__.py").write_text("")
        (core / "mod.py").write_text(
            "def masks(index: int) -> int:\n    return 1 << index\n"
        )
        return tmp_path

    def test_warm_hit_replays_identical_result(self, tmp_path):
        tree = self._tree(tmp_path)
        cache_dir = find_cache_dir(tree / "core")
        assert cache_dir == tree / ".repro-lint-cache"
        cold = analyze([tree / "core"], default_rules(), cache=LintCache(cache_dir))
        warm = analyze([tree / "core"], default_rules(), cache=LintCache(cache_dir))
        assert [f.format() for f in warm.findings] == [
            f.format() for f in cold.findings
        ]
        assert warm.findings  # the RPR002 finding survived the round-trip
        assert warm.files_scanned == cold.files_scanned
        assert warm.paths == cold.paths

    def test_edit_invalidates_stale_entry(self, tmp_path):
        tree = self._tree(tmp_path)
        cache_dir = find_cache_dir(tree)
        analyze([tree / "core"], default_rules(), cache=LintCache(cache_dir))
        (tree / "core" / "mod.py").write_text(
            "def masks(index: int) -> int:\n    return index\n"
        )
        warm = analyze([tree / "core"], default_rules(), cache=LintCache(cache_dir))
        assert warm.findings == []

    def test_no_repo_marker_means_no_cache_dir(self, tmp_path):
        assert find_cache_dir(tmp_path) is None

    def test_cli_no_cache_flag(self, tmp_path, capsys):
        tree = self._tree(tmp_path)
        code = main([str(tree / "core"), "--no-cache", "--no-fail-on-findings"])
        assert code == 0
        assert not (tree / ".repro-lint-cache").exists()
        code = main([str(tree / "core"), "--no-fail-on-findings"])
        assert code == 0
        assert (tree / ".repro-lint-cache" / "cache.json").exists()
        capsys.readouterr()


class TestExplain:
    @pytest.mark.parametrize("code", ["RPR106", "RPR107", "RPR108"])
    def test_documents_every_dataflow_rule(self, code):
        text = explain_rule(code)
        assert code in text
        assert "example:" in text
        assert f"# repro-lint: disable={code}" in text

    def test_rpr107_mentions_ordered_pragma(self):
        assert "# pragma: repro-lint ordered" in explain_rule("RPR107")

    def test_unknown_code_raises(self):
        with pytest.raises(ValueError, match="RPR999"):
            explain_rule("RPR999")

    def test_cli_explain(self, capsys):
        assert main(["--explain", "rpr108"]) == 0
        out = capsys.readouterr().out
        assert "RPR108" in out and "fold" in out


class TestSanitizeProbes:
    def test_fold_overflow_probe_catches_wrap(self):
        @probe("fold_overflow")
        def bad_fold(keys, labels):
            return (keys * (1 << 62) + labels).astype(np.int64)

        keys = (np.arange(100) % 7).astype(np.int64)
        labels = (np.arange(100) % 5).astype(np.int64)
        with pytest.raises(ProbeViolation, match="wrapped"):
            bad_fold(keys, labels)

    def test_fold_overflow_probe_passes_exact_fold(self):
        @probe("fold_overflow")
        def good_fold(keys, labels):
            return keys * 5 + labels

        keys = (np.arange(100) % 7).astype(np.int64)
        labels = (np.arange(100) % 5).astype(np.int64)
        out = good_fold(keys, labels)
        assert len(np.unique(out)) == 35

    class _FakePool:
        is_serial = False
        busy_seconds = 0.0
        tasks_dispatched = 0
        chunks_dispatched = 0

    @staticmethod
    def _task_fn():
        def _distinct_masks_task(handle, start, stop):
            return ([start, stop], 0.0)

        return _distinct_masks_task

    def test_shard_permutation_probe_catches_order_dependence(self):
        @probe("shard_permutation")
        def bad_map(pool, fn, tasks):
            return sorted(fn(*task)[0] for task in tasks)

        tasks = [(None, 3, 4), (None, 1, 2), (None, 5, 6)]
        with pytest.raises(ProbeViolation, match="completion-order"):
            bad_map(self._FakePool(), self._task_fn(), tasks)

    def test_shard_permutation_probe_passes_indexed_merge(self):
        calls = []

        @probe("shard_permutation")
        def good_map(pool, fn, tasks):
            calls.append(list(tasks))
            return [fn(*task)[0] for task in tasks]

        tasks = [(None, 3, 4), (None, 1, 2)]
        result = good_map(self._FakePool(), self._task_fn(), tasks)
        assert result == [[3, 4], [1, 2]]
        # the probe replayed the reversed plan as a shadow dispatch
        assert calls == [tasks, list(reversed(tasks))]

    def test_shard_permutation_probe_skips_serial_and_wall_time_tasks(self):
        calls = []

        @probe("shard_permutation")
        def mapper(pool, fn, tasks):
            calls.append(list(tasks))
            return [fn(*task)[0] for task in tasks]

        def _call_task(fn, payload):  # wall-time payloads: not replayable
            return (payload, 0.0)

        tasks = [(None, 1, 2), (None, 3, 4)]
        mapper(self._FakePool(), _call_task, [(min, 1), (max, 2)])
        serial = self._FakePool()
        serial.is_serial = True
        mapper(serial, self._task_fn(), tasks)
        assert len(calls) == 2  # no shadow replays happened

    def test_probes_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBES_DISABLE", "1")

        def original(pool, fn, tasks):
            return []

        assert probe("shard_permutation")(original) is original

    def test_sanitizer_attaches_probes_to_registry_sites(self, tmp_path):
        package = tmp_path / "pkg"
        (package / "engine").mkdir(parents=True)
        (package / "relation").mkdir()
        (package / "__init__.py").write_text("")
        (package / "engine" / "__init__.py").write_text("")
        (package / "relation" / "__init__.py").write_text("")
        (package / "engine" / "parallel.py").write_text(
            textwrap.dedent(
                """\
                class WorkerPool:
                    def map_chunks(self, fn, tasks):
                        return [fn(*task)[0] for task in tasks]
                """
            )
        )
        (package / "relation" / "validate.py").write_text(
            textwrap.dedent(
                """\
                def fold_labels(keys, labels):
                    return keys * 5 + labels
                """
            )
        )
        report = sanitize_package(package, tmp_path / "out")
        assert report.functions_probed == 2
        shadow = tmp_path / "out" / "pkg"
        assert "_repro_probe__('shard_permutation')" in (
            shadow / "engine" / "parallel.py"
        ).read_text()
        assert "_repro_probe__('fold_overflow')" in (
            shadow / "relation" / "validate.py"
        ).read_text()
        assert (shadow / "_contracts_runtime.py").exists()
