"""Tests for the repro.analysis lint engine, rules, baseline, and CLI.

The fixture snippets under ``tests/analysis_fixtures/`` are laid out as a
miniature source tree (``core/``, ``algorithms/``, ``metrics/``,
``relation/``) so the path-scoped rules fire exactly as they would on
``src/repro``; each fixture file triggers findings of exactly one rule.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from collections import Counter
from pathlib import Path

import pytest

import repro
from repro.analysis import analyze, default_rules
from repro.analysis import baseline as baseline_io
from repro.analysis.cli import main

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "analysis_fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent

#: fixture file (relative to FIXTURES) -> the single rule it triggers
EXPECTED_FIXTURE_RULES = {
    "core/rpr001_unseeded.py": "RPR001",
    "core/rpr002_rawmask.py": "RPR002",
    "algorithms/rpr003_contract.py": "RPR003",
    "metrics/rpr004_mutable_default.py": "RPR004",
    "metrics/rpr005_unannotated.py": "RPR005",
    "relation/rpr006_dtype.py": "RPR006",
    "core/rpr104_clock.py": "RPR104",
    "core/rpr105_parallel.py": "RPR105",
    "metrics/rpr101_layering.py": "RPR101",
    "core/rpr101_cycle_a.py": "RPR101",
    "core/rpr101_cycle_b.py": "RPR101",
    "core/rpr102_contract.py": "RPR102",
    "deadpkg/__init__.py": "RPR103",
    "core/rpr106_escape.py": "RPR106",
    "core/rpr107_unordered.py": "RPR107",
    "core/rpr112_metric_name.py": "RPR112",
    "relation/rpr108_overflow.py": "RPR108",
    "relation/rpr113_width.py": "RPR113",
    "core/rpr114_stream_encode.py": "RPR114",
    "engine/rpr109_leak.py": "RPR109",
    "engine/rpr110_use_after_release.py": "RPR110",
    "engine/rpr111_release_order.py": "RPR111",
}


@pytest.fixture(scope="module")
def fixture_findings():
    return analyze([FIXTURES], default_rules()).findings


class TestFixtures:
    def test_every_rule_has_a_triggering_fixture(self):
        codes = {rule.code for rule in default_rules()}
        assert set(EXPECTED_FIXTURE_RULES.values()) == codes

    @pytest.mark.parametrize("relpath,code", sorted(EXPECTED_FIXTURE_RULES.items()))
    def test_fixture_triggers_exactly_its_rule(self, fixture_findings, relpath, code):
        rules_hit = {
            finding.rule for finding in fixture_findings if finding.path == relpath
        }
        assert rules_hit == {code}

    def test_no_findings_outside_fixture_files(self, fixture_findings):
        unexpected = {
            finding.path
            for finding in fixture_findings
            if finding.path not in EXPECTED_FIXTURE_RULES
        }
        assert unexpected == set()

    def test_findings_carry_location_and_message(self, fixture_findings):
        assert fixture_findings, "fixtures must produce findings"
        for finding in fixture_findings:
            assert finding.line >= 1
            assert finding.col >= 1
            assert finding.message
            formatted = finding.format()
            assert finding.path in formatted and finding.rule in formatted


class TestSourceTreeIsClean:
    def test_src_tree_clean_modulo_baseline(self):
        """The shipped package has zero unbaselined findings."""
        result = analyze([SRC_REPRO], default_rules())
        assert result.parse_errors == []
        assert result.files_scanned > 50
        baseline_path = SRC_REPRO.parent.parent / ".repro-lint-baseline.json"
        known = baseline_io.load(baseline_path)
        new, _ = baseline_io.partition(result.findings, known)
        assert [finding.format() for finding in new] == []


class TestSuppressions:
    def _scan(self, tmp_path: Path, source: str) -> list:
        module = tmp_path / "core" / "snippet.py"
        module.parent.mkdir(exist_ok=True)
        module.write_text(textwrap.dedent(source))
        return analyze([tmp_path], default_rules()).findings

    def test_inline_disable_silences_one_line(self, tmp_path):
        findings = self._scan(
            tmp_path,
            """\
            def masks(index: int) -> tuple[int, int]:
                allowed = 1 << index  # repro-lint: disable=RPR002
                flagged = 1 << index
                return allowed, flagged
            """,
        )
        assert [finding.line for finding in findings] == [3]

    def test_file_level_disable_silences_module(self, tmp_path):
        findings = self._scan(
            tmp_path,
            """\
            # repro-lint: disable-file=RPR002
            def masks(index: int) -> int:
                return 1 << index
            """,
        )
        assert findings == []

    def test_file_level_disable_only_covers_listed_codes(self, tmp_path):
        findings = self._scan(
            tmp_path,
            """\
            # repro-lint: disable-file=RPR002
            import random

            def draw() -> float:
                return random.random()
            """,
        )
        assert [finding.rule for finding in findings] == ["RPR001"]


class TestProjectRules:
    """The whole-program passes on synthetic miniature trees."""

    def _write(self, tmp_path: Path, relpath: str, source: str) -> None:
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))

    def test_upward_import_is_a_layer_violation(self, tmp_path):
        self._write(tmp_path, "fd/low.py", "VALUE = 1\n")
        self._write(tmp_path, "fd/bad.py", "from ..core import driver as _d\n")
        self._write(tmp_path, "core/driver.py", "from ..fd import low as _low\n")
        findings = analyze([tmp_path], default_rules(), select=["RPR101"]).findings
        assert [finding.path for finding in findings] == ["fd/bad.py"]
        assert "layer violation" in findings[0].message

    def test_cycle_reported_on_every_member(self, tmp_path):
        self._write(tmp_path, "core/a.py", "from . import b as _b\n")
        self._write(tmp_path, "core/b.py", "from . import c as _c\n")
        self._write(tmp_path, "core/c.py", "from . import a as _a\n")
        findings = analyze([tmp_path], default_rules(), select=["RPR101"]).findings
        assert sorted(finding.path for finding in findings) == [
            "core/a.py",
            "core/b.py",
            "core/c.py",
        ]
        assert all("import cycle" in finding.message for finding in findings)

    def test_analysis_package_is_isolated(self, tmp_path):
        self._write(tmp_path, "analysis/engine.py", "VALUE = 1\n")
        self._write(tmp_path, "core/uses.py", "from ..analysis import engine\n")
        findings = analyze([tmp_path], default_rules(), select=["RPR101"]).findings
        assert [finding.path for finding in findings] == ["core/uses.py"]
        assert "isolated" in findings[0].message

    def test_purity_inference_follows_call_graph(self, tmp_path):
        """A Pure: contract is checked through a same-module helper call."""
        self._write(
            tmp_path,
            "core/kernels.py",
            """\
            def _helper(store: list) -> None:
                store.append(1)


            def outer(store: list) -> None:
                '''Pure: (falsely).'''
                _helper(store)
            """,
        )
        findings = analyze([tmp_path], default_rules(), select=["RPR102"]).findings
        assert len(findings) == 1
        assert "outer" in findings[0].message
        assert "'store'" in findings[0].message

    def test_contract_grammar_errors_are_reported(self, tmp_path):
        self._write(
            tmp_path,
            "core/kernels.py",
            """\
            def broken(values: list) -> None:
                '''Contradictory contract.

                Pure:
                Mutates: values
                '''
            """,
        )
        findings = analyze([tmp_path], default_rules(), select=["RPR102"]).findings
        assert len(findings) == 1
        assert "mutually exclusive" in findings[0].message

    def test_contract_naming_unknown_parameter(self, tmp_path):
        self._write(
            tmp_path,
            "core/kernels.py",
            """\
            def renamed(values: list) -> None:
                '''Mutates: old_name'''
                values.append(1)
            """,
        )
        findings = analyze([tmp_path], default_rules(), select=["RPR102"]).findings
        assert len(findings) == 1
        assert "not a parameter" in findings[0].message

    def test_inline_suppression_covers_purity_rule(self, tmp_path):
        self._write(
            tmp_path,
            "core/kernels.py",
            """\
            def leaky(values: list) -> None:  # repro-lint: disable=RPR102
                '''Pure: (falsely).'''
                values.append(1)
            """,
        )
        assert analyze([tmp_path], default_rules()).findings == []

    def test_file_suppression_covers_cycle_rule(self, tmp_path):
        self._write(
            tmp_path,
            "core/a.py",
            "# repro-lint: disable-file=RPR101\nfrom . import b as _b\n",
        )
        self._write(tmp_path, "core/b.py", "from . import a as _a\n")
        findings = analyze([tmp_path], default_rules(), select=["RPR101"]).findings
        assert [finding.path for finding in findings] == ["core/b.py"]

    def test_dead_export_flagged_and_referenced_export_not(self, tmp_path):
        """RPR103 on a rootless tree falls back to the scanned modules."""
        self._write(
            tmp_path,
            "pkg/__init__.py",
            """\
            from .impl import alive, dead

            __all__ = ["alive", "dead"]
            """,
        )
        self._write(
            tmp_path,
            "pkg/impl.py",
            """\
            def alive() -> int:
                return 1


            def dead() -> int:
                return 2


            _USED = alive
            """,
        )
        findings = analyze([tmp_path], default_rules(), select=["RPR103"]).findings
        assert len(findings) == 1
        assert "'dead'" in findings[0].message
        assert findings[0].path == "pkg/__init__.py"


class TestBaseline:
    def test_partition_absorbs_counted_findings(self, tmp_path):
        module = tmp_path / "core" / "legacy.py"
        module.parent.mkdir()
        module.write_text("def one(index: int) -> int:\n    return 1 << index\n")
        first = analyze([tmp_path], default_rules()).findings
        assert len(first) == 1
        baseline_path = tmp_path / "baseline.json"
        baseline_io.save(baseline_path, first)

        known = baseline_io.load(baseline_path)
        new, grandfathered = baseline_io.partition(first, known)
        assert new == [] and len(grandfathered) == 1

        # A second identical violation in the same file is NOT absorbed:
        # the baseline freezes debt, it does not license growth.
        module.write_text(
            "def one(index: int) -> int:\n    return 1 << index\n\n"
            "def two(index: int) -> int:\n    return 1 << index\n"
        )
        second = analyze([tmp_path], default_rules()).findings
        assert len(second) == 2
        new, grandfathered = baseline_io.partition(second, baseline_io.load(baseline_path))
        assert len(new) == 1 and len(grandfathered) == 1

    def test_load_missing_baseline_is_empty(self, tmp_path):
        assert baseline_io.load(tmp_path / "absent.json") == Counter()

    def test_partition_absorbs_earliest_line_first(self, tmp_path):
        """With one baselined slot, the earliest duplicate is absorbed."""
        module = tmp_path / "core" / "legacy.py"
        module.parent.mkdir()
        module.write_text("def one(index: int) -> int:\n    return 1 << index\n")
        baseline_path = tmp_path / "baseline.json"
        baseline_io.save(baseline_path, analyze([tmp_path], default_rules()).findings)

        module.write_text(
            "def zero(index: int) -> int:\n    return 1 << index\n\n"
            "def one(index: int) -> int:\n    return 1 << index\n"
        )
        findings = analyze([tmp_path], default_rules()).findings
        new, grandfathered = baseline_io.partition(
            findings, baseline_io.load(baseline_path)
        )
        assert [finding.line for finding in grandfathered] == [2]
        assert [finding.line for finding in new] == [5]

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version 99"):
            baseline_io.load(path)

    def test_load_rejects_versionless_document(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"findings": {}}))
        with pytest.raises(ValueError, match="version"):
            baseline_io.load(path)

    def test_load_rejects_corrupt_document(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["not", "a", "baseline"]))
        with pytest.raises(ValueError, match="not a repro-lint baseline"):
            baseline_io.load(path)


class TestCli:
    def test_exits_nonzero_on_each_rule_fixture(self, capsys):
        for code in sorted(set(EXPECTED_FIXTURE_RULES.values())):
            status = main([str(FIXTURES), "--select", code])
            out = capsys.readouterr().out
            assert status == 1, code
            assert code in out

    def test_exits_zero_on_shipped_tree(self, capsys):
        assert main([str(SRC_REPRO), "--fail-on-findings"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_output(self, capsys):
        status = main([str(FIXTURES), "--format", "json"])
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] >= len(EXPECTED_FIXTURE_RULES)
        rules = {finding["rule"] for finding in payload["findings"]}
        assert rules == set(EXPECTED_FIXTURE_RULES.values())

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        module = tmp_path / "core" / "legacy.py"
        module.parent.mkdir()
        module.write_text("def one(index: int) -> int:\n    return 1 << index\n")
        baseline = tmp_path / ".repro-lint-baseline.json"
        assert main([str(tmp_path), "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        assert baseline.exists()
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(set(EXPECTED_FIXTURE_RULES.values())):
            assert code in out

    def test_unknown_rule_code_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main([str(FIXTURES), "--select", "RPR999"])
        assert excinfo.value.code == 2

    def test_github_format_emits_workflow_annotations(self, tmp_path, capsys, monkeypatch):
        module = tmp_path / "core" / "unseeded.py"
        module.parent.mkdir()
        module.write_text(
            "import random\n\n\ndef draw() -> float:\n    return random.random()\n"
        )
        monkeypatch.chdir(tmp_path)
        status = main([str(tmp_path), "--format", "github"])
        out = capsys.readouterr().out
        assert status == 1
        assert "::error file=core/unseeded.py,line=" in out
        assert "title=RPR001::" in out
        assert "1 finding" in out

    def test_github_format_escapes_newlines_and_percent(self):
        from repro.analysis.cli import _annotation_escape

        assert _annotation_escape("a%b\nc\rd") == "a%25b%0Ac%0Dd"

    def test_corrupt_baseline_is_a_usage_error(self, tmp_path):
        baseline = tmp_path / ".repro-lint-baseline.json"
        baseline.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--baseline", str(baseline)])
        assert excinfo.value.code == 2

    def test_sanitize_requires_exactly_one_root(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    str(FIXTURES),
                    str(SRC_REPRO),
                    "--sanitize",
                    str(tmp_path / "out"),
                ]
            )
        assert excinfo.value.code == 2

    def test_module_entry_point(self):
        """``python -m repro.analysis`` works against a violating fixture."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_REPRO.parent) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(FIXTURES / "core")],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 1
        assert "RPR001" in completed.stdout
