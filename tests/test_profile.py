"""Tests for the one-call relation profiler."""

from __future__ import annotations

from repro import profile_relation
from repro.relation import Relation


class TestColumnProfiles:
    def test_patient_columns(self, patient_relation):
        profile = profile_relation(patient_relation)
        by_name = {column.name: column for column in profile.columns}
        assert by_name["Name"].is_unique
        assert by_name["Name"].cardinality == 9
        assert not by_name["Gender"].is_unique
        assert by_name["Gender"].cardinality == 3

    def test_constant_and_null_detection(self):
        relation = Relation.from_rows(
            [(1, "c", None), (2, "c", "x")], ["id", "const", "sparse"]
        )
        profile = profile_relation(relation)
        by_name = {column.name: column for column in profile.columns}
        assert by_name["const"].is_constant
        assert not by_name["id"].is_constant
        assert by_name["sparse"].null_count == 1

    def test_empty_relation_has_no_constant_columns(self):
        profile = profile_relation(Relation.from_rows([], ["a"]))
        assert not profile.columns[0].is_constant


class TestDiscoverySelection:
    def test_small_relation_profiled_exactly(self, patient_relation):
        profile = profile_relation(patient_relation)
        assert profile.exact
        assert profile.fds.algorithm == "Fdep"
        assert len(profile.fds) == 9

    def test_large_relation_uses_eulerfd(self, patient_relation):
        profile = profile_relation(patient_relation, exact_below_cells=10)
        assert not profile.exact
        assert profile.fds.algorithm == "EulerFD"

    def test_uccs_included(self, patient_relation):
        profile = profile_relation(patient_relation)
        assert len(profile.uccs) == 3


class TestRendering:
    def test_render_contains_sections(self, patient_relation):
        text = profile_relation(patient_relation).render()
        assert "Profile of patients" in text
        assert "Candidate keys" in text
        assert "Functional dependencies" in text
        assert "[Name] -> Age" in text

    def test_render_limits_fds(self, patient_relation):
        text = profile_relation(patient_relation).render(max_fds=2)
        assert "... and 7 more" in text
