"""Tests for the DFD randomized lattice-walk baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BruteForce
from repro.algorithms.dfd import Dfd
from repro.fd import FD
from repro.relation import Relation


class TestExactness:
    def test_patients(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert Dfd().discover(patient_relation).fds == truth

    def test_walk_seed_does_not_change_the_result(self, patient_relation):
        results = {
            Dfd(seed=seed).discover(patient_relation).fds
            for seed in range(5)
        }
        assert len(results) == 1

    def test_empty_relation(self):
        relation = Relation.from_rows([], ["a", "b"])
        assert Dfd().discover(relation).fds == {FD(0, 0), FD(0, 1)}

    def test_constant_and_key(self):
        relation = Relation.from_rows(
            [(1, "c"), (2, "c"), (3, "c")], ["k", "const"]
        )
        result = Dfd().discover(relation)
        # {} -> const dominates k -> const; const cannot determine the key.
        assert result.fds == {FD(0, 1)}

    def test_single_column(self):
        assert Dfd().discover(Relation.from_rows([(1,), (1,)], ["a"])).fds == {
            FD(0, 0)
        }
        assert (
            Dfd().discover(Relation.from_rows([(1,), (2,)], ["a"])).fds
            == frozenset()
        )

    def test_validations_cached(self, patient_relation):
        stats = Dfd().discover(patient_relation).stats
        # Far fewer validations than the full lattice (5 * 2^4 = 80).
        assert 0 < stats["validations"] < 80


class TestPropertyEquivalence:
    @st.composite
    @staticmethod
    def small_relations(draw):
        num_columns = draw(st.integers(min_value=1, max_value=5))
        num_rows = draw(st.integers(min_value=0, max_value=20))
        rows = [
            tuple(
                draw(st.integers(min_value=0, max_value=3))
                for _ in range(num_columns)
            )
            for _ in range(num_rows)
        ]
        return Relation.from_rows(rows, [f"c{i}" for i in range(num_columns)])

    @given(small_relations(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, relation, seed):
        assert (
            Dfd(seed=seed).discover(relation).fds
            == BruteForce().discover(relation).fds
        )
