"""Tests for the difference-/agree-set baselines (Dep-Miner, FastFDs)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BruteForce, DepMiner, FastFDs
from repro.algorithms.depminer import (
    maximal_agree_sets,
    minimal_transversals_levelwise,
)
from repro.algorithms.fastfds import minimal_covers_dfs
from repro.fd import attrset
from repro.relation import Relation

masks = st.integers(min_value=0, max_value=(1 << 7) - 1)


def naive_minimal_hitting_sets(edges: list[int], vertices: int) -> set[int]:
    if any(edge == 0 for edge in edges):
        return set()
    hitting = [
        mask
        for mask in attrset.all_subsets(vertices)
        if all(edge & mask for edge in edges)
    ]
    minimal: set[int] = set()
    for mask in sorted(hitting, key=attrset.size):
        if not any(attrset.is_subset(kept, mask) for kept in minimal):
            minimal.add(mask)
    return minimal


class TestMaximalAgreeSets:
    def test_keeps_only_maximal(self):
        agree = {0b001, 0b011, 0b100}
        assert set(maximal_agree_sets(agree, 3)) == {0b011, 0b100}

    def test_excludes_rhs_containing_sets(self):
        agree = {0b101, 0b010}
        assert maximal_agree_sets(agree, 0) == [0b010]

    def test_empty_input(self):
        assert maximal_agree_sets(set(), 0) == []


class TestHittingSetEngines:
    def test_no_edges_means_empty_transversal(self):
        assert minimal_transversals_levelwise([], 0b111) == [0]
        assert minimal_covers_dfs([], 0b111) == [0]

    def test_unhittable_edge(self):
        assert minimal_transversals_levelwise([0], 0b111) == []
        assert minimal_covers_dfs([0], 0b111) == []

    def test_textbook_instance(self):
        # Edges {a,b}, {b,c}: minimal hitting sets {b}, {a,c}.
        edges = [0b011, 0b110]
        expected = {0b010, 0b101}
        assert set(minimal_transversals_levelwise(edges, 0b111)) == expected
        assert set(minimal_covers_dfs(edges, 0b111)) == expected

    @given(st.lists(masks, min_size=0, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_both_engines_match_naive(self, edges):
        vertices = (1 << 7) - 1
        expected = naive_minimal_hitting_sets(edges, vertices)
        if not edges:
            expected = {0}
        assert set(minimal_transversals_levelwise(edges, vertices)) == expected
        assert set(minimal_covers_dfs(edges, vertices)) == expected


class TestDiscovery:
    def test_patients_depminer(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert DepMiner().discover(patient_relation).fds == truth

    def test_patients_fastfds(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert FastFDs().discover(patient_relation).fds == truth

    def test_empty_relation(self):
        relation = Relation.from_rows([], ["a", "b"])
        from repro.fd import FD

        assert DepMiner().discover(relation).fds == {FD(0, 0), FD(0, 1)}
        assert FastFDs().discover(relation).fds == {FD(0, 0), FD(0, 1)}

    def test_stats_recorded(self, patient_relation):
        dep = DepMiner().discover(patient_relation)
        fast = FastFDs().discover(patient_relation)
        assert dep.stats["hypergraph_edges"] > 0
        assert fast.stats["difference_sets"] > 0

    def test_randomized_cross_check(self):
        import random

        rng = random.Random(13)
        for _ in range(10):
            rows = [
                tuple(rng.randint(0, 2) for _ in range(4))
                for _ in range(rng.randint(2, 25))
            ]
            relation = Relation.from_rows(rows)
            truth = BruteForce().discover(relation).fds
            assert DepMiner().discover(relation).fds == truth
            assert FastFDs().discover(relation).fds == truth
