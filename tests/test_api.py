"""Tests for the top-level package API and result types."""

from __future__ import annotations

import pytest

import repro
from repro import available_algorithms, create, discover_fds
from repro.core.result import DiscoveryResult, Stopwatch, make_result
from repro.fd import FD


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_available_algorithms(self):
        algorithms = available_algorithms()
        for key in ("eulerfd", "tane", "fdep", "hyfd", "aidfd",
                    "bruteforce", "depminer", "fastfds"):
            assert key in algorithms

    def test_create_unknown(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            create("does-not-exist")

    def test_create_returns_fresh_instances(self):
        assert create("eulerfd") is not create("eulerfd")

    def test_discover_fds_default(self, patient_relation):
        result = discover_fds(patient_relation)
        assert result.algorithm == "EulerFD"
        assert len(result) == 9

    def test_discover_fds_named(self, patient_relation):
        result = discover_fds(patient_relation, "tane")
        assert result.algorithm == "Tane"

    def test_every_registered_algorithm_runs(self, patient_relation):
        expected = discover_fds(patient_relation, "bruteforce").fds
        for key in available_algorithms():
            result = discover_fds(patient_relation, key)
            assert result.fds == expected, key


class TestDiscoveryResult:
    def make(self) -> DiscoveryResult:
        watch = Stopwatch()
        return make_result(
            [FD.of([0], 1), FD.of([1], 0)],
            "TestAlgo",
            "rel",
            10,
            2,
            ["x", "y"],
            watch,
            stats={"k": 1},
        )

    def test_container_protocol(self):
        result = self.make()
        assert len(result) == 2
        assert FD.of([0], 1) in result
        assert FD.of([0], 0) not in result
        assert list(result) == sorted(result.fds)

    def test_format_fds_uses_names(self):
        result = self.make()
        assert result.format_fds() == ["[x] -> y", "[y] -> x"]

    def test_format_fds_limit(self):
        assert len(self.make().format_fds(limit=1)) == 1

    def test_summary(self):
        text = self.make().summary()
        assert "TestAlgo" in text
        assert "2 FDs" in text
        assert "10x2" in text

    def test_stats_copied(self):
        stats = {"a": 1}
        result = make_result(
            [], "A", "r", 1, 1, ["c"], Stopwatch(), stats=stats
        )
        stats["a"] = 2
        assert result.stats["a"] == 1

    def test_fds_frozen(self):
        result = self.make()
        with pytest.raises(AttributeError):
            result.fds = frozenset()
