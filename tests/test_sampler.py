"""Tests for the sampling module: sliding windows, capa, MLFQ rounds."""

from __future__ import annotations

import pytest

from repro.core import EulerFDConfig, SamplingModule
from repro.core.sampler import ClusterState
from repro.datasets import patients
from repro.relation import Relation, preprocess


def sampler_for(relation: Relation, **config_kwargs) -> SamplingModule:
    return SamplingModule(preprocess(relation), EulerFDConfig(**config_kwargs))


class TestClusterState:
    def make(self, size=6, window=2, history=3):
        return ClusterState(tuple(range(size)), window, history)

    def test_initial_state(self):
        cluster = self.make()
        assert not cluster.exhausted
        assert not cluster.retired
        assert cluster.active

    def test_exhaustion(self):
        cluster = self.make(size=3, window=4)
        assert cluster.exhausted
        assert not cluster.active

    def test_window_equal_to_size_not_exhausted(self):
        # window == len(rows) still yields exactly one pair (ends of cluster).
        cluster = self.make(size=3, window=3)
        assert not cluster.exhausted

    def test_retirement_after_zero_streak(self):
        cluster = self.make(history=3)
        for capa in (0.0, 0.0, 0.0):
            cluster.record(capa)
        assert cluster.retired

    def test_recent_nonzero_prevents_retirement(self):
        cluster = self.make(history=3)
        for capa in (0.0, 0.5, 0.0):
            cluster.record(capa)
        assert not cluster.retired

    def test_old_capa_falls_out_of_history(self):
        cluster = self.make(history=2)
        cluster.record(5.0)
        cluster.record(0.0)
        cluster.record(0.0)
        assert cluster.retired  # the 5.0 fell out of the window

    def test_revive_clears_streak(self):
        cluster = self.make(history=1)
        cluster.record(0.0)
        assert cluster.retired
        cluster.revive()
        assert cluster.active


class TestClusterCollection:
    def test_patient_clusters(self, patient_relation):
        sampler = sampler_for(patient_relation)
        # Age 2, Blood 2, Gender 2, Medicine 3 clusters; Name none.
        assert sampler.num_clusters == 9

    def test_dedupe_drops_identical_clusters(self):
        # Two columns with identical grouping produce identical clusters.
        relation = Relation.from_rows(
            [(1, "a"), (1, "a"), (2, "b"), (2, "b")], ["x", "y"]
        )
        with_dedupe = sampler_for(relation, dedupe_clusters=True)
        without = sampler_for(relation, dedupe_clusters=False)
        assert with_dedupe.num_clusters == 2
        assert without.num_clusters == 4


class TestRounds:
    def test_first_pass_samples_every_cluster(self, patient_relation):
        sampler = sampler_for(patient_relation)
        violations, stats = sampler.run_pass()
        # A full drain samples every cluster at least once and keeps
        # productive clusters going.
        assert stats.cluster_samples >= sampler.num_clusters
        assert stats.pairs_compared > 0
        assert violations  # the patient data has plenty of non-FDs

    def test_violations_have_novel_rhs_only(self, patient_relation):
        sampler = sampler_for(patient_relation)
        seen: set[tuple[int, int]] = set()
        for _ in range(20):
            violations, stats = sampler.run_pass()
            if stats.pairs_compared == 0:
                break
            for agree, novel in violations:
                for rhs in range(5):
                    if (novel >> rhs) & 1:
                        assert (agree, rhs) not in seen
                        seen.add((agree, rhs))

    def test_agree_mask_contains_cluster_attribute(self, patient_relation):
        """Sampling within a cluster guarantees at least one agreement."""
        sampler = sampler_for(patient_relation)
        violations, _ = sampler.run_pass()
        for agree, _ in violations:
            assert agree != 0

    def test_sampler_eventually_dries_up(self, patient_relation):
        sampler = sampler_for(patient_relation)
        for _ in range(100):
            _, stats = sampler.run_pass()
            if stats.pairs_compared == 0:
                break
        else:
            pytest.fail("sampler never dried up")
        assert not sampler.has_more()

    def test_exhaustive_sampling_covers_all_intra_cluster_pairs(self):
        """With retirement effectively disabled, every pair that agrees on
        some attribute is eventually compared (coverage, Section IV-C)."""
        relation = patients()
        data = preprocess(relation)
        sampler = SamplingModule(data, EulerFDConfig(retire_history=50))
        total = 0
        while sampler.has_more():
            _, stats = sampler.run_pass()
            if stats.pairs_compared == 0:
                break
            total += stats.pairs_compared
        expected = 0
        seen_pairs: set[tuple[int, int]] = set()
        registered = set()
        for _, rows in data.iter_clusters():
            if rows in registered:
                continue
            registered.add(rows)
            for window in range(2, len(rows) + 1):
                for i in range(len(rows) - window + 1):
                    expected += 1
        assert total == expected

    def test_total_counters_accumulate(self, patient_relation):
        sampler = sampler_for(patient_relation)
        sampler.run_pass()
        sampler.run_pass()
        assert sampler.rounds_run == 2
        assert sampler.total_pairs > 0


class TestRevive:
    def test_revive_reactivates_retired_clusters(self, patient_relation):
        sampler = sampler_for(patient_relation, retire_history=1)
        while sampler.has_more():
            _, stats = sampler.run_pass()
            if stats.pairs_compared == 0:
                break
        revived = sampler.revive()
        assert revived > 0
        assert sampler.has_more()
        assert sampler.revivals == 1

    def test_revive_skips_exhausted_clusters(self):
        relation = Relation.from_rows([(1,), (1,)], ["a"])  # one pair total
        sampler = sampler_for(relation)
        while sampler.has_more():
            _, stats = sampler.run_pass()
            if stats.pairs_compared == 0:
                break
        assert sampler.revive() == 0


class TestPairCap:
    def test_max_pairs_per_sample_thins_comparisons(self):
        rows = [(i % 2, i) for i in range(100)]  # one cluster of 50 per label
        relation = Relation.from_rows(rows, ["group", "id"])
        capped = sampler_for(relation, max_pairs_per_sample=5)
        _, stats = capped.run_pass(max_samples=capped.num_clusters)
        assert stats.cluster_samples == capped.num_clusters
        assert stats.pairs_compared <= 5 * capped.num_clusters

    def test_uncapped_first_sample_compares_all_window_positions(self):
        rows = [(0, i) for i in range(10)]  # a single 10-row cluster
        relation = Relation.from_rows(rows, ["group", "id"])
        sampler = sampler_for(relation)
        _, stats = sampler.run_pass(max_samples=1)
        assert stats.pairs_compared == 9  # window 2: positions 0..8

    def test_max_samples_bounds_a_pass(self, patient_relation):
        sampler = sampler_for(patient_relation)
        _, stats = sampler.run_pass(max_samples=3)
        assert stats.cluster_samples == 3


class TestAdaptivePolicy:
    def test_adaptive_config_still_discovers(self, patient_relation):
        from repro.core import EulerFD, MlfqPolicy
        from repro.core.config import EulerFDConfig

        config = EulerFDConfig(mlfq=MlfqPolicy(adaptive=True))
        result = EulerFD(config).discover(patient_relation)
        baseline = EulerFD().discover(patient_relation)
        assert result.fds == baseline.fds
