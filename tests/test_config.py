"""Tests for EulerFD configuration (thresholds, MLFQ ranges of Table IV)."""

from __future__ import annotations

import pytest

from repro.core import EulerFDConfig, MlfqPolicy, mlfq_ranges


class TestMlfqRanges:
    """Table IV: capa ranges for 1-7 queues."""

    def test_single_queue(self):
        assert mlfq_ranges(1) == (0.0,)

    def test_two_queues(self):
        assert mlfq_ranges(2) == (10.0, 0.0)

    def test_four_queues(self):
        assert mlfq_ranges(4) == (10.0, 1.0, 0.1, 0.0)

    def test_seven_queues_matches_table4(self):
        bounds = mlfq_ranges(7)
        assert bounds == pytest.approx(
            (10.0, 1.0, 0.1, 0.01, 0.001, 0.0001, 0.0)
        )

    def test_rejects_zero_queues(self):
        with pytest.raises(ValueError):
            mlfq_ranges(0)


class TestMlfqPolicy:
    def test_default_is_six_queues(self):
        policy = MlfqPolicy()
        assert policy.num_queues == 6
        assert policy.lower_bounds[0] == 10.0

    def test_queue_for_assigns_by_range(self):
        policy = MlfqPolicy.with_queues(4)  # bounds 10, 1, 0.1, 0
        assert policy.queue_for(25.0) == 0
        assert policy.queue_for(10.0) == 0  # inclusive lower bound
        assert policy.queue_for(1.25) == 1  # the paper's Fig. 3 example
        assert policy.queue_for(0.8) == 2  # capa 0.8 -> q3 in Fig. 3
        assert policy.queue_for(0.0) == 3

    def test_queue_for_infinity_is_top(self):
        assert MlfqPolicy().queue_for(float("inf")) == 0

    def test_queue_for_rejects_negative_and_nan(self):
        policy = MlfqPolicy()
        with pytest.raises(ValueError):
            policy.queue_for(-0.1)
        with pytest.raises(ValueError):
            policy.queue_for(float("nan"))

    def test_bounds_must_descend(self):
        with pytest.raises(ValueError):
            MlfqPolicy((0.1, 1.0, 0.0))

    def test_lowest_bound_must_be_zero(self):
        with pytest.raises(ValueError):
            MlfqPolicy((10.0, 1.0))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            MlfqPolicy(())


class TestEulerFDConfig:
    def test_paper_defaults(self):
        config = EulerFDConfig()
        assert config.th_ncover == 0.01
        assert config.th_pcover == 0.01
        assert config.mlfq.num_queues == 6
        assert config.initial_window == 2

    def test_with_queues(self):
        config = EulerFDConfig().with_queues(3)
        assert config.mlfq.num_queues == 3
        assert EulerFDConfig().mlfq.num_queues == 6  # original untouched

    def test_with_thresholds(self):
        config = EulerFDConfig().with_thresholds(th_ncover=0.1)
        assert config.th_ncover == 0.1
        assert config.th_pcover == 0.01
        config = config.with_thresholds(th_pcover=0.0)
        assert config.th_pcover == 0.0
        assert config.th_ncover == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            EulerFDConfig(th_ncover=-0.1)
        with pytest.raises(ValueError):
            EulerFDConfig(retire_history=0)
        with pytest.raises(ValueError):
            EulerFDConfig(initial_window=1)
        with pytest.raises(ValueError):
            EulerFDConfig(max_cycles=0)
        with pytest.raises(ValueError):
            EulerFDConfig(max_pairs_per_sample=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EulerFDConfig().th_ncover = 0.5
