"""Cross-algorithm properties: every exact algorithm must agree with the
brute-force oracle on arbitrary relations, and the approximate ones must
return FDs consistent with what they sampled."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import AidFd, BruteForce, EulerFD, Fdep, HyFD, Tane
from repro.fd import inference
from repro.metrics import semantic_equivalence
from repro.relation import Relation, fd_holds, preprocess


@st.composite
def small_relations(draw):
    num_columns = draw(st.integers(min_value=1, max_value=5))
    num_rows = draw(st.integers(min_value=0, max_value=24))
    cardinality = draw(st.integers(min_value=1, max_value=4))
    rows = [
        tuple(
            draw(st.integers(min_value=0, max_value=cardinality))
            for _ in range(num_columns)
        )
        for _ in range(num_rows)
    ]
    return Relation.from_rows(rows, [f"c{i}" for i in range(num_columns)])


class TestExactAlgorithmsMatchOracle:
    @given(small_relations())
    @settings(max_examples=60, deadline=None)
    def test_tane_matches_bruteforce(self, relation):
        assert (
            Tane().discover(relation).fds
            == BruteForce().discover(relation).fds
        )

    @given(small_relations())
    @settings(max_examples=60, deadline=None)
    def test_fdep_matches_bruteforce(self, relation):
        assert (
            Fdep().discover(relation).fds
            == BruteForce().discover(relation).fds
        )

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_hyfd_matches_bruteforce(self, relation):
        assert (
            HyFD().discover(relation).fds
            == BruteForce().discover(relation).fds
        )

    @given(small_relations())
    @settings(max_examples=30, deadline=None)
    def test_exact_covers_are_semantically_equivalent(self, relation):
        left = Tane().discover(relation).fds
        right = Fdep().discover(relation).fds
        assert semantic_equivalence(left, right)


class TestApproximateAlgorithmInvariants:
    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_eulerfd_reports_minimal_antichains(self, relation):
        result = EulerFD().discover(relation)
        by_rhs: dict[int, list[int]] = {}
        for fd in result.fds:
            assert not fd.is_trivial()
            by_rhs.setdefault(fd.rhs, []).append(fd.lhs)
        for masks in by_rhs.values():
            for left in masks:
                for right in masks:
                    if left != right:
                        assert left & ~right != 0  # incomparable

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_eulerfd_never_misses_below_truth(self, relation):
        """Approximate discovery can *overclaim* (miss violations) but
        must never report an FD more general than a true minimal FD is
        allowed to be: every true FD must be implied by the result."""
        truth = BruteForce().discover(relation).fds
        claimed = EulerFD().discover(relation).fds
        for fd in truth:
            assert inference.implies(claimed, fd)

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_aidfd_never_misses_below_truth(self, relation):
        truth = BruteForce().discover(relation).fds
        claimed = AidFd().discover(relation).fds
        for fd in truth:
            assert inference.implies(claimed, fd)

    @given(small_relations())
    @settings(max_examples=30, deadline=None)
    def test_validated_fds_subset_of_claims(self, relation):
        """Every claimed FD that happens to be valid must be minimal-valid
        (its immediate generalizations are invalid)."""
        data = preprocess(relation)
        claimed = EulerFD().discover(relation).fds
        truth = BruteForce().discover(relation).fds
        for fd in claimed:
            if fd_holds(data, fd):
                assert fd in truth
