"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.datasets import patients
from repro.relation import write_csv


@pytest.fixture()
def patients_csv(tmp_path):
    path = tmp_path / "patients.csv"
    write_csv(patients(), path)
    return str(path)


class TestDiscover:
    def test_discover_default_algorithm(self, patients_csv, capsys):
        assert main(["discover", patients_csv]) == 0
        out = capsys.readouterr().out
        assert "EulerFD" in out
        assert "9 FDs" in out
        assert "-> " in out

    def test_discover_tane(self, patients_csv, capsys):
        assert main(["discover", patients_csv, "--algorithm", "tane"]) == 0
        assert "Tane" in capsys.readouterr().out

    def test_discover_limit(self, patients_csv, capsys):
        assert main(["discover", patients_csv, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "and 7 more" in out

    def test_discover_max_rows(self, patients_csv, capsys):
        assert main(["discover", patients_csv, "--max-rows", "3"]) == 0
        assert "(3x5)" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self, patients_csv):
        with pytest.raises(SystemExit):
            main(["discover", patients_csv, "--algorithm", "nope"])


class TestDiscoverJson:
    def test_json_output_roundtrips(self, patients_csv, capsys):
        import json

        from repro.core.result import DiscoveryResult
        from repro.datasets import patients
        from repro.relation import preprocess
        from repro.algorithms import BruteForce

        assert main(["discover", patients_csv, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "EulerFD"
        assert payload["num_rows"] == 9
        relation = patients()
        rebuilt = DiscoveryResult.fds_from_dict(payload, relation.column_names)
        assert rebuilt == BruteForce().discover(relation).fds


class TestProfile:
    def test_profile_command(self, patients_csv, capsys):
        assert main(["profile", patients_csv]) == 0
        out = capsys.readouterr().out
        assert "Candidate keys" in out
        assert "Functional dependencies" in out


class TestCompare:
    def test_compare(self, patients_csv, capsys):
        assert main(
            ["compare", patients_csv, "--algorithms", "fdep", "eulerfd"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fdep" in out
        assert "EulerFD" in out
        assert "F1" in out


class TestGenerate:
    def test_generate_csv(self, tmp_path, capsys):
        target = tmp_path / "iris.csv"
        assert main(
            ["generate", "iris", str(target), "--rows", "25"]
        ) == 0
        assert target.exists()
        assert "25x5" in capsys.readouterr().out

    def test_generate_with_columns(self, tmp_path):
        target = tmp_path / "plista.csv"
        assert main(
            [
                "generate", "plista", str(target),
                "--rows", "10", "--columns", "6",
            ]
        ) == 0
        header = target.read_text().splitlines()[0]
        assert len(header.split(",")) == 6


class TestListings:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "iris" in out
        assert "uniprot" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "eulerfd" in out
        assert "tane" in out

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
