"""Tests for minimal unique column combination discovery."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.ucc import discover_uccs
from repro.fd import attrset
from repro.relation import Relation


def naive_minimal_uccs(rows: list[tuple], num_columns: int) -> set[int]:
    universe = attrset.universe(num_columns)
    unique_masks = []
    for mask in attrset.all_subsets(universe):
        columns = list(attrset.to_indices(mask))
        projections = [tuple(row[c] for c in columns) for row in rows]
        if len(set(projections)) == len(projections):
            unique_masks.append(mask)
    minimal: set[int] = set()
    for mask in sorted(unique_masks, key=attrset.size):
        if not any(attrset.is_subset(kept, mask) for kept in minimal):
            minimal.add(mask)
    return minimal


class TestPatients:
    def test_candidate_keys(self, patient_relation):
        result = discover_uccs(patient_relation)
        expected = {
            attrset.from_indices([0]),           # Name
            attrset.from_indices([1, 2, 3]),     # Age, Blood, Gender
            attrset.from_indices([1, 3, 4]),     # Age, Gender, Medicine
        }
        assert set(result.uccs) == expected

    def test_formatting(self, patient_relation):
        formatted = discover_uccs(patient_relation).format()
        assert "{Name}" in formatted

    def test_metadata(self, patient_relation):
        result = discover_uccs(patient_relation)
        assert result.num_rows == 9
        assert result.runtime_seconds >= 0
        assert len(result) == 3


class TestDegenerate:
    def test_empty_relation_trivially_unique(self):
        result = discover_uccs(Relation.from_rows([], ["a", "b"]))
        assert set(result.uccs) == {attrset.EMPTY}

    def test_single_row(self):
        result = discover_uccs(Relation.from_rows([(1, 2)], ["a", "b"]))
        assert set(result.uccs) == {attrset.EMPTY}

    def test_duplicate_rows_have_no_ucc(self):
        result = discover_uccs(Relation.from_rows([(1, 2), (1, 2)], ["a", "b"]))
        assert set(result.uccs) == set()

    def test_key_column(self):
        result = discover_uccs(
            Relation.from_rows([(1, "x"), (2, "x"), (3, "x")], ["k", "c"])
        )
        assert set(result.uccs) == {attrset.singleton(0)}

    def test_null_semantics(self):
        relation = Relation.from_rows([(None,), (None,)], ["a"])
        equal = discover_uccs(relation, null_equals_null=True)
        distinct = discover_uccs(relation, null_equals_null=False)
        assert set(equal.uccs) == set()  # the NULLs collide
        assert set(distinct.uccs) == {attrset.singleton(0)}


class TestAgainstNaive:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=1),
            ),
            min_size=2,
            max_size=18,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_exhaustive(self, rows):
        relation = Relation.from_rows(rows, ["a", "b", "c", "d"])
        result = discover_uccs(relation)
        assert set(result.uccs) == naive_minimal_uccs(rows, 4)
