"""Exact reproductions of the paper's worked examples (Tables I-II,
Examples 1-6, Figures 2-5).

These tests pin the implementation to the paper's semantics attribute by
attribute: N=Name(0), A=Age(1), B=Blood pressure(2), G=Gender(3),
M=Medicine(4); tuples t1..t9 are rows 0..8.
"""

from __future__ import annotations

from repro.algorithms import BruteForce
from repro.core.inversion import Inverter
from repro.datasets.patients import (
    AGE,
    BLOOD_PRESSURE,
    GENDER,
    MEDICINE,
    NAME,
    patients,
)
from repro.fd import FD, NegativeCover, attrset
from repro.relation import fd_holds, preprocess

N, A, B, G, M = NAME, AGE, BLOOD_PRESSURE, GENDER, MEDICINE


class TestTable1Claims:
    """Claims made in the introduction about Table I."""

    def setup_method(self):
        self.data = preprocess(patients())

    def test_age_depends_on_name(self):
        assert fd_holds(self.data, FD.of([N], A))

    def test_blood_pressure_determined_by_gender_and_medicine(self):
        assert fd_holds(self.data, FD.of([G, M], B))


class TestExample1:
    def setup_method(self):
        self.data = preprocess(patients())

    def test_ab_determines_m(self):
        assert fd_holds(self.data, FD.of([A, B], M))

    def test_n_determines_b_vacuously(self):
        assert fd_holds(self.data, FD.of([N], B))

    def test_g_does_not_determine_m(self):
        assert not fd_holds(self.data, FD.of([G], M))
        # Witnessed by t2 and t8 sharing "Male".
        from repro.relation import find_violation

        witness = find_violation(self.data, FD.of([G], M))
        assert witness is not None


class TestExample2:
    def test_ng_specializes_n(self):
        assert FD.of([N, G], M).specializes(FD.of([N], M))
        assert FD.of([N], M).generalizes(FD.of([N, G], M))

    def test_abg_and_agm_incomparable(self):
        left, right = FD.of([A, B, G], N), FD.of([A, G, M], N)
        assert not left.specializes(right)
        assert not left.generalizes(right)


class TestExample3:
    def setup_method(self):
        self.truth = BruteForce().discover(patients()).fds

    def test_ab_to_m_is_minimal(self):
        assert FD.of([A, B], M) in self.truth

    def test_ng_to_m_is_not_minimal(self):
        assert FD.of([N, G], M) not in self.truth
        assert FD.of([N], M) in self.truth

    def test_trivial_fd_not_reported(self):
        assert FD.of([A, B, M], M) not in self.truth


class TestExample5And6AndFigure2:
    def setup_method(self):
        self.data = preprocess(patients())

    def test_partition_age(self):
        clusters = sorted(
            tuple(c) for c in self.data.stripped[A].clusters
        )
        assert clusters == [(1, 4, 6), (3, 5)]  # {t2,t5,t7}, {t4,t6}

    def test_partition_gender(self):
        clusters = sorted(
            tuple(c) for c in self.data.stripped[G].clusters
        )
        assert clusters == [(0, 2, 3, 4, 5, 6), (1, 7)]

    def test_gender_labels_match_example5(self):
        # Female -> 1, Male -> 2, Gender-queer -> 3 (0-indexed here).
        assert list(self.data.labels(G)) == [0, 1, 0, 0, 0, 0, 0, 1, 2]


class TestFigure3Capa:
    """The running example of the sampling module: cluster c1 =
    {t1, t3, t4, t5, t6, t7} (Gender = Female) sampled at window 2."""

    def test_first_sample_pairs(self):
        rows = (0, 2, 3, 4, 5, 6)  # 0-indexed Female cluster
        window = 2
        pairs = [
            (rows[i], rows[i + window - 1])
            for i in range(len(rows) - window + 1)
        ]
        assert pairs == [(0, 2), (2, 3), (3, 4), (4, 5), (5, 6)]

    def test_t1_t3_comparison_yields_four_non_fds(self):
        data = preprocess(patients())
        agree = data.agree_mask(0, 2)
        assert agree == attrset.singleton(G)
        violated = attrset.universe(5) & ~agree
        assert attrset.size(violated) == 4  # G -/-> N, A, B, M


class TestFigure4NegativeCover:
    def test_construction(self):
        cover = NegativeCover(5)
        source_pairs = [(1, 6), (3, 6), (4, 5), (4, 6)]
        data = preprocess(patients())
        masks = [data.agree_mask(a, b) for a, b in source_pairs]
        # The four non-FDs of the figure: ABM, BG, BGM, AG -> each from
        # the corresponding tuple pair (t2,t7), (t4,t7), (t5,t6), (t5,t7).
        assert masks[0] == attrset.from_indices([A, B, M])
        assert masks[1] == attrset.from_indices([B, G])
        assert masks[2] == attrset.from_indices([B, G, M])
        assert masks[3] == attrset.from_indices([A, G])
        for mask in masks:
            cover.add(FD(mask, N))
        assert set(cover.lhs_masks(N)) == {
            attrset.from_indices([A, B, M]),
            attrset.from_indices([B, G, M]),
            attrset.from_indices([A, G]),
        }


class TestFigure5Inversion:
    def test_final_pcover_for_name(self):
        inverter = Inverter(5)
        inverter.process(
            [
                FD.of([M, B, G], N),
                FD.of([A, G], N),
                FD.of([A, M, B], N),
            ]
        )
        assert set(inverter.pcover.lhs_masks(N)) == {
            attrset.from_indices([A, B, G]),
            attrset.from_indices([A, M, G]),
        }

    def test_intermediate_step_of_figure_5a(self):
        """After inverting only MBG -/-> N, the cover for N is {A}."""
        inverter = Inverter(5)
        inverter.process([FD.of([M, B, G], N)])
        assert inverter.pcover.lhs_masks(N) == [attrset.singleton(A)]

    def test_intermediate_step_of_figure_5b(self):
        """After MBG and AG, the cover for N is {AB, AM}."""
        inverter = Inverter(5)
        inverter.process([FD.of([M, B, G], N)])
        inverter.process([FD.of([A, G], N)])
        assert set(inverter.pcover.lhs_masks(N)) == {
            attrset.from_indices([A, B]),
            attrset.from_indices([A, M]),
        }
