"""Fixture: RPR004 — mutable default argument."""


def accumulate(value: int, into: list[int] = []) -> list[int]:
    into.append(value)
    return into
