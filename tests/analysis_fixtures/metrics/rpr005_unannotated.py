"""Fixture: RPR005 — exported function missing annotations."""


def exported_helper(value):
    return value
