"""Fixture: RPR005 — exported function missing annotations."""


def exported_helper(value):
    return value


# Keeps the package's export referenced so the dead-export rule (RPR103)
# stays scoped to the deadpkg fixture.
_REFERENCED_EXPORT = exported_helper
