"""Fixture: RPR101 — an upward (metrics -> core) layer violation."""

from ..core import rpr001_unseeded as _core_helper

_UPWARD_DEPENDENCY = _core_helper
