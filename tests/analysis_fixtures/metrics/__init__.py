"""Fixture package exporting an unannotated function (feeds RPR005)."""

from .rpr005_unannotated import exported_helper

__all__ = ["exported_helper"]
