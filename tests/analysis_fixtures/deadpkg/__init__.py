"""Fixture package: RPR103 — ``__all__`` exporting a never-referenced name."""

from .helper import dead_export, used_export

__all__ = ["dead_export", "used_export"]
