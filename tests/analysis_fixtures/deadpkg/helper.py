"""Fixture helpers for the dead-export rule (RPR103)."""


def dead_export() -> int:
    return 1


def used_export() -> int:
    return 2


_REFERENCED_ELSEWHERE = used_export
