"""Fixture: RPR003 — algorithm class without a kind declaration."""


class MysteryAlgorithm:
    name = "Mystery"

    def discover(self, relation: object) -> object:
        return relation
