"""RPR110 fixture: attribute access on a must-released handle."""

from __future__ import annotations


def slurp(path: str) -> str:
    handle = open(path)
    text = handle.read()
    handle.close()
    return text + handle.name
