"""RPR111 fixture: unlink before close on a shared-memory segment.

``SharedMemory`` is deliberately unimported: the fixture is parsed, not
executed, and importing ``multiprocessing`` here would trip RPR105.
"""

from __future__ import annotations


def teardown(size: int) -> None:
    segment = SharedMemory(create=True, size=size)
    segment.unlink()
    segment.close()
