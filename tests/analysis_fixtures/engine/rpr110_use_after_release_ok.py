"""RPR110 clean variant: every use happens before the release."""

from __future__ import annotations


def slurp(path: str) -> str:
    handle = open(path)
    text = handle.read() + handle.name
    handle.close()
    return text
