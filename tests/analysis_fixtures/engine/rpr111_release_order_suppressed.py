"""RPR111 suppressed variant: inline disable on the early unlink."""

from __future__ import annotations


def teardown(size: int) -> None:
    segment = SharedMemory(create=True, size=size)
    segment.unlink()  # repro-lint: disable=RPR111
    segment.close()
