"""RPR110 suppressed variant: inline disable on the stale use."""

from __future__ import annotations


def slurp(path: str) -> str:
    handle = open(path)
    text = handle.read()
    handle.close()
    return text + handle.name  # repro-lint: disable=RPR110
