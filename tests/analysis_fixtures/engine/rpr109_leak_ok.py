"""RPR109 clean variant: try/finally releases on every path."""

from __future__ import annotations


def load(path: str) -> bytes:
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()
