"""RPR111 clean variant: the protocol's steps in declared order."""

from __future__ import annotations


def teardown(size: int) -> None:
    segment = SharedMemory(create=True, size=size)
    segment.close()
    segment.unlink()
