"""RPR109 suppressed variant: inline disable on the acquisition line."""

from __future__ import annotations


def load(path: str) -> bytes:
    handle = open(path)  # repro-lint: disable=RPR109
    data = handle.read()
    if not data:
        return b""
    handle.close()
    return data
