"""Fixture package (mirrors the src layout for path-scoped rules)."""
