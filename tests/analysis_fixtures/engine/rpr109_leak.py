"""RPR109 fixture: the early return skips the handle's release."""

from __future__ import annotations


def load(path: str) -> bytes:
    handle = open(path)
    data = handle.read()
    if not data:
        return b""
    handle.close()
    return data
