"""RPR106 clean variant: the capture is rebound immutable before fan-out.

The mutability analysis is flow-sensitive: ``state`` starts as a list
but is a tuple by the time the task function is dispatched, so no
finding fires.
"""

from __future__ import annotations


def fan_out_totals(pool, tasks: list) -> tuple:
    state = [0]
    state = tuple(state)

    def task(chunk):
        return (state[0], len(chunk))

    return tuple(pool.map_chunks(task, tasks))
