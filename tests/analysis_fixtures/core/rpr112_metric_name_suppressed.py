"""RPR112 suppressed variant: a reviewed literal behind the pragma."""

from __future__ import annotations


def counter(name: str, amount: float = 1) -> None:
    """Stand-in for the repro.obs front door."""


def record_pass(passes: int) -> None:
    counter("sampler.passes", passes)  # repro-lint: disable=RPR112
