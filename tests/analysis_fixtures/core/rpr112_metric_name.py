"""RPR112 fixture: ad-hoc metric-name literals at recording call sites."""

from __future__ import annotations


def counter(name: str, amount: float = 1) -> None:
    """Stand-in for the repro.obs front door."""


def metric_gauge_set(name: str, value: float) -> None:
    """Stand-in for the repro.obs metrics front door."""


def record_pass(passes: int, occupancy: float) -> None:
    counter("sampler.passes", passes)
    metric_gauge_set(f"mlfq.occupancy.{passes}", occupancy)
