"""RPR114 fixture: a streaming path that re-encodes the whole relation.

Both full-encode spellings the rule guards against: a bare
``preprocess(...)`` call rebuilding the label matrix per append, and an
``encode_matrix(...)`` call re-dictionarizing the columns.
"""

from __future__ import annotations


def per_append_reencode(relation, encoder) -> object:
    data = encoder.preprocess(relation)
    return data


def per_append_columnar(matrix, encode_matrix) -> object:
    return encode_matrix(matrix)
