"""RPR107 fixture: set-ordered provenance reaching result assembly."""

from __future__ import annotations


def make_result(fds: list, algorithm: str) -> tuple:
    return (tuple(fds), algorithm)


def collect(raw: list) -> tuple:
    masks = set(raw)
    fds: list = []
    for mask in masks:
        fds.append(mask + 1)
    return make_result(fds, "fixture")
