"""RPR107 clean variant: sorted() canonicalizes the set order at source."""

from __future__ import annotations


def make_result(fds: list, algorithm: str) -> tuple:
    return (tuple(fds), algorithm)


def collect_sorted(raw: list) -> tuple:
    masks = set(raw)
    fds: list = []
    for mask in sorted(masks):
        fds.append(mask + 1)
    return make_result(fds, "fixture")
