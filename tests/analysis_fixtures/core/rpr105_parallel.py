"""RPR105 fixture: raw concurrency imports outside the parallel engine."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def spawn_pool() -> ThreadPoolExecutor:
    return ThreadPoolExecutor(max_workers=multiprocessing.cpu_count())
