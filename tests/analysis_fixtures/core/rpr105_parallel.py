"""RPR105 fixture: raw concurrency imports outside the parallel engine."""

import multiprocessing
from concurrent.futures import ThreadPoolExecutor


def spawn_pool() -> ThreadPoolExecutor:
    """Hand a fresh executor to the caller.

    Owns: return
    """
    return ThreadPoolExecutor(max_workers=multiprocessing.cpu_count())
