"""RPR112 clean variant: names flow through catalog constants."""

from __future__ import annotations

SAMPLER_PASSES = "sampler.passes"
MLFQ_OCCUPANCY = "mlfq.occupancy"


def counter(name: str, amount: float = 1) -> None:
    """Stand-in for the repro.obs front door."""


def metric_gauge_set(name: str, value: float) -> None:
    """Stand-in for the repro.obs metrics front door."""


def record_pass(passes: int, occupancy: float) -> None:
    counter(SAMPLER_PASSES, passes)
    metric_gauge_set(MLFQ_OCCUPANCY, occupancy)
