"""Fixture: RPR102 — a declared-Pure kernel that mutates a parameter."""


def leaky_insert(items: list[int], value: int) -> list[int]:
    """Append ``value`` while claiming to touch nothing.

    Pure: (falsely) promises both parameters untouched.
    """
    items.append(value)
    return items
