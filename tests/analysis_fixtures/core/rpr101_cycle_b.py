"""Fixture: RPR101 — the other half of a two-module import cycle."""

from . import rpr101_cycle_a as _peer

_CYCLE_PEER = _peer
