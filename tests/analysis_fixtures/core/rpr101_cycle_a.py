"""Fixture: RPR101 — one half of a two-module import cycle."""

from . import rpr101_cycle_b as _peer

_CYCLE_PEER = _peer
