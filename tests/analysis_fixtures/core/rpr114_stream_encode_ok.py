"""RPR114 clean variant: the delta engine's O(batch) append idioms.

Streaming consumers read the execution context's delta-maintained
snapshot and push change batches through ``append_rows``; no full
re-encode appears anywhere on the path.
"""

from __future__ import annotations


def warm_snapshot(context) -> object:
    return context.data


def ingest_batch(context, batch: list) -> object:
    delta = context.append_rows(batch)
    return delta
