"""Fixture: RPR002 — raw shift arithmetic on attribute masks."""


def singleton_mask(index: int) -> int:
    return 1 << index


def has_attribute(mask: int, index: int) -> bool:
    return bool((mask >> index) & 1)
