"""RPR114 suppressed variant: inline disable silences the re-encode."""

from __future__ import annotations


def sanctioned_cold_start(relation, encoder) -> object:
    return encoder.preprocess(relation)  # repro-lint: disable=RPR114
