"""RPR106 fixture: a task function closing over mutable coordinator state."""

from __future__ import annotations


def fan_out_counts(pool, tasks: list) -> dict:
    seen: dict = {}

    def task(chunk):
        seen[chunk[0]] = len(chunk)
        return chunk

    pool.map_chunks(task, tasks)
    return seen
