"""RPR104 fixture: direct wall-clock reads outside obs/metrics."""

import time


def stamp() -> float:
    return time.time()


def tick() -> float:
    return time.perf_counter()
