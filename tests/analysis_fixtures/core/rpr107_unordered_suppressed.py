"""RPR107 justified variant: the ordered pragma marks a reviewed site."""

from __future__ import annotations


def make_result(fds: list, algorithm: str) -> tuple:
    return (tuple(fds), algorithm)


def collect_first(raw: list) -> tuple:
    masks = set(raw)
    fds: list = []
    for mask in masks:
        fds.append(mask + 1)
    return make_result(fds, "fixture")  # pragma: repro-lint ordered
