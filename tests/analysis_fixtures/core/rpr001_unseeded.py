"""Fixture: RPR001 — unseeded randomness and hash-ordered iteration."""

import random


def draw_badly() -> float:
    return random.random()  # global RNG


def make_rng() -> random.Random:
    return random.Random()  # no seed


def iterate_badly(mapping: dict[str, int]) -> list[str]:
    collected = []
    for key in mapping.keys():
        collected.append(key)
    for item in {"a", "b", "c"}:
        collected.append(item)
    return collected
