"""RPR106 suppressed variant: inline disable silences the escape."""

from __future__ import annotations


def fan_out_sizes(pool, tasks: list) -> dict:
    sizes: dict = {}

    def task(chunk):
        sizes[chunk[0]] = len(chunk)
        return chunk

    pool.map_chunks(task, tasks)  # repro-lint: disable=RPR106
    return sizes
