"""RPR113 suppressed variant: inline disable silences the widening."""

from __future__ import annotations

import numpy as np


def widened_suppressed(encoded, rhs: int) -> object:
    return encoded.column(rhs).astype(np.int64)  # repro-lint: disable=RPR113
