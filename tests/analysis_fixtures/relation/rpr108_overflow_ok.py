"""RPR108 clean variant: fold-limit guard + np.unique re-densify.

Mirrors ``relation/validate.fold_labels``: every path into the fold has
passed the false edge of a ``bound * cardinality >= _FOLD_LIMIT`` check,
so the width analysis proves the multiply safe.
"""

from __future__ import annotations

import numpy as np

_FOLD_LIMIT = 1 << 62


def fold_guarded(keys, labels) -> object:
    cardinality = int(labels.max(initial=0)) + 1
    bound = int(keys.max(initial=0)) + 1
    if bound * cardinality >= _FOLD_LIMIT:
        _, keys = np.unique(keys, return_inverse=True)
        keys = keys.astype(np.int64, copy=False)
        bound = int(keys.max(initial=0)) + 1
        if bound * cardinality >= _FOLD_LIMIT:
            raise OverflowError("group key fold exceeded int64")
    return keys * cardinality + labels
