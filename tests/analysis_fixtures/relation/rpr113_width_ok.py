"""RPR113 clean variant: narrow labels, sanctioned idioms only.

Buffers may pin ``dtype=np.int64`` (that is construction, not a label
copy), ``astype(np.int64, copy=False)`` is the no-op normalization used
by the guarded fold, and label columns travel at their dictionary width.
"""

from __future__ import annotations

import numpy as np


def narrow_labels(encoded, rhs: int) -> object:
    return encoded.column(rhs)


def scatter_buffer(domain: int) -> object:
    return np.empty(domain, dtype=np.int64)


def normalized(keys) -> object:
    return keys.astype(np.int64, copy=False)
