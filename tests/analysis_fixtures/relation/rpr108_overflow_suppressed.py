"""RPR108 suppressed variant: inline disable silences the fold."""

from __future__ import annotations


def fold_columns_suppressed(matrix) -> object:
    keys = matrix[:, 0]
    for column in range(1, 62):
        labels = matrix[:, column]
        cardinality = int(labels.max(initial=0)) + 1
        keys = keys * cardinality + labels  # repro-lint: disable=RPR108
    return keys
