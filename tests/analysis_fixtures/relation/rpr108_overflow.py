"""RPR108 fixture: the historical unguarded 62-column group-key fold.

61 folded binary columns already reach 2^61 distinct keys; one more
8-label fold crosses 2^64 and wraps int64 (the pre-guard bug in the
validation kernel).
"""

from __future__ import annotations


def fold_columns(matrix) -> object:
    keys = matrix[:, 0]
    for column in range(1, 62):
        labels = matrix[:, column]
        cardinality = int(labels.max(initial=0)) + 1
        keys = keys * cardinality + labels
    return keys
