"""Fixture: RPR006 — numpy construction without an explicit dtype."""

import numpy as np


def make_labels(num_rows: int) -> np.ndarray:
    return np.zeros(num_rows)
