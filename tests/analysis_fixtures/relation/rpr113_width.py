"""RPR113 fixture: label data widened to int64 on the hot path.

Both widening spellings the rule guards against: the ``astype`` copy
that re-inflates a dictionary-encoded column to 8 bytes per row, and a
``np.int64`` scalar minted from a label.
"""

from __future__ import annotations

import numpy as np


def widened_labels(encoded, rhs: int) -> object:
    return encoded.column(rhs).astype(np.int64)


def widened_scalar(label: int) -> object:
    return np.int64(label)
