"""Tests for the HyFD hybrid baseline."""

from __future__ import annotations

import pytest

from repro.algorithms import BruteForce, HyFD
from repro.fd import FD
from repro.relation import Relation


class TestExactness:
    def test_patients(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        assert HyFD().discover(patient_relation).fds == truth

    def test_rare_violation_caught_by_validation(self):
        """Construct a relation whose only violation of c0 -> c1 sits in
        rows sampling would reach last: the validation phase must find it
        regardless, because HyFD is exact."""
        rows = [(i, i % 7, i % 3) for i in range(60)]
        rows.append((0, 6, 0))  # violates c0 -> c1 via the pair (row 0)
        relation = Relation.from_rows(rows, ["c0", "c1", "c2"])
        result = HyFD().discover(relation)
        assert FD.of([0], 1) not in result.fds
        truth = BruteForce().discover(relation).fds
        assert result.fds == truth

    def test_empty_and_tiny_relations(self):
        assert HyFD().discover(Relation.from_rows([], ["a"])).fds == {FD(0, 0)}
        assert HyFD().discover(
            Relation.from_rows([(1, 2)], ["a", "b"])
        ).fds == {FD(0, 0), FD(0, 1)}

    def test_efficiency_threshold_zero_is_still_exact(self, patient_relation):
        """threshold 0 -> sampling runs to exhaustion before validating."""
        truth = BruteForce().discover(patient_relation).fds
        result = HyFD(efficiency_threshold=0.0).discover(patient_relation)
        assert result.fds == truth

    def test_large_efficiency_threshold_is_still_exact(self, patient_relation):
        """A huge threshold pushes all the work onto validation."""
        truth = BruteForce().discover(patient_relation).fds
        result = HyFD(efficiency_threshold=10.0).discover(patient_relation)
        assert result.fds == truth


class TestBehaviour:
    def test_phases_recorded(self, patient_relation):
        stats = HyFD().discover(patient_relation).stats
        assert stats["sampling_phases"] >= 1
        assert stats["validation_phases"] >= 1
        assert stats["validations"] > 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            HyFD(efficiency_threshold=-1.0)

    def test_randomized_cross_check(self):
        import random

        rng = random.Random(17)
        for _ in range(8):
            rows = [
                tuple(rng.randint(0, 3) for _ in range(4))
                for _ in range(rng.randint(2, 40))
            ]
            relation = Relation.from_rows(rows)
            assert (
                HyFD().discover(relation).fds
                == BruteForce().discover(relation).fds
            )
