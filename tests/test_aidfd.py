"""Tests for the AID-FD approximate baseline."""

from __future__ import annotations

import pytest

from repro.algorithms import AidFd, BruteForce
from repro.fd import FD
from repro.metrics import f1_score
from repro.relation import Relation


class TestDiscovery:
    def test_patients_exact_on_small_data(self, patient_relation):
        truth = BruteForce().discover(patient_relation).fds
        result = AidFd().discover(patient_relation)
        assert result.fds == truth

    def test_deterministic(self, patient_relation):
        assert (
            AidFd().discover(patient_relation).fds
            == AidFd().discover(patient_relation).fds
        )

    def test_stats(self, patient_relation):
        stats = AidFd().discover(patient_relation).stats
        assert stats["sweeps"] >= 1
        assert stats["pairs_compared"] > 0
        assert stats["ncover_size"] > 0

    def test_empty_relation(self):
        assert AidFd().discover(Relation.from_rows([], ["a"])).fds == {FD(0, 0)}

    def test_all_unique_relation(self):
        relation = Relation.from_rows([(1, "a"), (2, "b")], ["x", "y"])
        result = AidFd().discover(relation)
        assert result.fds == {FD.of([0], 1), FD.of([1], 0)}


class TestTermination:
    def test_max_sweeps_caps_sampling(self, patient_relation):
        capped = AidFd(max_sweeps=1).discover(patient_relation)
        assert capped.stats["sweeps"] == 1

    def test_zero_threshold_exhausts_clusters(self, patient_relation):
        """threshold 0 only stops on an unproductive sweep, so more pairs
        get compared than with the default threshold."""
        eager = AidFd(threshold=0.5).discover(patient_relation)
        thorough = AidFd(threshold=0.0).discover(patient_relation)
        assert (
            thorough.stats["pairs_compared"] >= eager.stats["pairs_compared"]
        )

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            AidFd(threshold=-0.5)


class TestAccuracyOrdering:
    def test_lower_threshold_is_at_least_as_accurate(self):
        import random

        rng = random.Random(31)
        rows = [
            (rng.randint(0, 19), rng.randint(0, 19), rng.randint(0, 4),
             rng.randint(0, 39))
            for _ in range(200)
        ]
        relation = Relation.from_rows(rows)
        truth = BruteForce().discover(relation).fds
        loose = f1_score(AidFd(threshold=0.5).discover(relation).fds, truth)
        tight = f1_score(AidFd(threshold=0.001).discover(relation).fds, truth)
        assert tight >= loose
