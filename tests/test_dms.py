"""Tests for the simulated DMS fleet (Section V-G substrate)."""

from __future__ import annotations

from repro.datasets import COLUMN_BUCKETS, ROW_BUCKETS, fleet


class TestFleet:
    def test_covers_every_bucket(self):
        members = list(fleet(datasets_per_bucket=1))
        coordinates = {(m.row_bucket, m.column_bucket) for m in members}
        assert coordinates == {
            (r, c)
            for r in range(len(ROW_BUCKETS))
            for c in range(len(COLUMN_BUCKETS))
        }

    SMALL_GRID = dict(
        row_buckets=((1, 10), (11, 60)),
        column_buckets=((2, 6), (7, 12)),
    )

    def test_shapes_respect_buckets(self):
        for member in fleet(datasets_per_bucket=2, **self.SMALL_GRID):
            grid_rows = self.SMALL_GRID["row_buckets"]
            grid_columns = self.SMALL_GRID["column_buckets"]
            min_rows, max_rows = grid_rows[member.row_bucket]
            min_columns, max_columns = grid_columns[member.column_bucket]
            assert min_rows <= member.relation.num_rows <= max_rows
            assert min_columns <= member.relation.num_columns <= max_columns

    def test_full_grid_shapes(self):
        for member in fleet(datasets_per_bucket=1):
            min_rows, max_rows = ROW_BUCKETS[member.row_bucket]
            min_columns, max_columns = COLUMN_BUCKETS[member.column_bucket]
            assert min_rows <= member.relation.num_rows <= max_rows
            assert min_columns <= member.relation.num_columns <= max_columns

    def test_deterministic(self):
        def snapshot(seed):
            return [
                member.relation.columns
                for member in fleet(
                    datasets_per_bucket=1, seed=seed, **self.SMALL_GRID
                )
            ]

        assert snapshot(7) == snapshot(7)
        assert snapshot(7) != snapshot(8)

    def test_datasets_per_bucket(self):
        members = list(fleet(datasets_per_bucket=3, **self.SMALL_GRID))
        assert len(members) == 3 * 2 * 2

    def test_custom_grid(self):
        members = list(
            fleet(
                datasets_per_bucket=1,
                row_buckets=((1, 5),),
                column_buckets=((2, 3),),
            )
        )
        assert len(members) == 1
        assert members[0].relation.num_rows <= 5
        assert 2 <= members[0].relation.num_columns <= 3

    def test_discoverable(self):
        from repro.core import EulerFD

        member = next(iter(fleet(datasets_per_bucket=1)))
        result = EulerFD().discover(member.relation)
        assert result.num_columns == member.relation.num_columns
