"""Tests for vectorized FD validation (group keys, violations)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import FD, attrset
from repro.relation import Relation, fd_holds, find_violation, group_keys, preprocess


def rel_of(rows):
    return preprocess(Relation.from_rows(rows))


class TestGroupKeys:
    def test_single_column(self):
        data = rel_of([(1,), (2,), (1,)])
        keys = group_keys(data, 0b1)
        assert keys[0] == keys[2] != keys[1]

    def test_multi_column(self):
        data = rel_of([(1, "a"), (1, "b"), (1, "a")])
        keys = group_keys(data, 0b11)
        assert keys[0] == keys[2] != keys[1]

    def test_empty_lhs_groups_everything(self):
        data = rel_of([(1,), (2,)])
        assert list(group_keys(data, 0)) == [0, 0]

    def test_empty_relation(self):
        data = preprocess(Relation.from_rows([], ["a"]))
        assert group_keys(data, 0b1).size == 0

    def test_fold_survives_many_columns(self):
        # 40 columns of cardinality 8 overflow a naive fold; the
        # re-densification path must keep grouping exact.
        import random

        rng = random.Random(2)
        rows = [tuple(rng.randint(0, 7) for _ in range(40)) for _ in range(30)]
        rows.append(rows[0])  # guarantee one true duplicate group
        data = rel_of(rows)
        keys = group_keys(data, attrset.universe(40))
        groups: dict[int, list[int]] = {}
        for row, key in enumerate(keys):
            groups.setdefault(int(key), []).append(row)
        expected: dict[tuple, list[int]] = {}
        for row_index, row in enumerate(rows):
            expected.setdefault(row, []).append(row_index)
        assert sorted(map(tuple, groups.values())) == sorted(
            map(tuple, expected.values())
        )


class TestFdHolds:
    def test_valid(self):
        data = rel_of([(1, "a"), (2, "b"), (1, "a")])
        assert fd_holds(data, FD.of([0], 1))

    def test_invalid(self):
        data = rel_of([(1, "a"), (1, "b")])
        assert not fd_holds(data, FD.of([0], 1))

    def test_empty_lhs_constant_column(self):
        data = rel_of([(1, "c"), (2, "c")])
        assert fd_holds(data, FD(0, 1))
        assert not fd_holds(data, FD(0, 0))

    def test_tiny_relations_always_hold(self):
        assert fd_holds(preprocess(Relation.from_rows([], ["a"])), FD(0, 0))
        assert fd_holds(rel_of([(1, 2)]), FD.of([0], 1))


class TestFindViolation:
    def test_returns_witness(self):
        data = rel_of([(1, "a"), (2, "x"), (1, "b")])
        witness = find_violation(data, FD.of([0], 1))
        assert witness is not None
        row_a, row_b = witness
        assert {row_a, row_b} == {0, 2}

    def test_none_when_valid(self):
        data = rel_of([(1, "a"), (2, "b")])
        assert find_violation(data, FD.of([0], 1)) is None

    def test_witness_actually_violates(self):
        import random

        rng = random.Random(8)
        rows = [tuple(rng.randint(0, 2) for _ in range(3)) for _ in range(25)]
        data = rel_of(rows)
        for lhs in range(1, 8):
            for rhs in range(3):
                if (lhs >> rhs) & 1:
                    continue
                witness = find_violation(data, FD(lhs, rhs))
                if witness is None:
                    assert fd_holds(data, FD(lhs, rhs))
                else:
                    row_a, row_b = witness
                    agree = data.agree_mask(row_a, row_b)
                    assert lhs & ~agree == 0  # agree on all of LHS
                    assert not (agree >> rhs) & 1  # differ on RHS


class TestFoldOverflow:
    """Regression: the RHS fold must carry the same guard as the LHS fold.

    Historically ``fd_holds`` folded ``keys * rhs_cardinality + rhs``
    without the ``_FOLD_LIMIT`` re-densify, so on wide high-cardinality
    relations the product wrapped int64 and two distinct (key, rhs)
    combinations could collide — making a violated FD look valid.
    """

    @staticmethod
    def wide_relation():
        # 61 LHS columns whose positional fold reaches 2**61 exactly, and
        # an 8-label RHS: the unguarded fold computes 2**61 * 8 == 2**64,
        # which wraps to 0 and collides with the key-0 group.  Values are
        # introduced in increasing order so label == value.
        width = 62
        zeros = (0,) * 60
        ones = (1,) * 60
        rows = [
            (0, *zeros, 0),  # key 0
            (0, *zeros, 1),  # key 0  -> the one true violation
            (1, *ones, 2),  # key 2**61 - 1
            (2, *zeros, 1),  # key 2**61: wraps onto the row above's slot
        ]
        # fillers raising RHS cardinality to 8, each with a unique key
        for i, rhs in enumerate((3, 4, 5, 6, 7)):
            middle = [0] * 60
            middle[i] = 1
            rows.append((1, *middle, rhs))
        return preprocess(Relation.from_rows(rows, [f"c{i}" for i in range(width)]))

    def test_construction_is_in_the_overflow_regime(self):
        data = self.wide_relation()
        lhs = attrset.universe(61)
        keys = group_keys(data, lhs)
        assert int(keys.max()) == 2**61
        rhs_cardinality = int(data.matrix[:, 61].max()) + 1
        assert rhs_cardinality == 8
        # the unguarded legacy fold really does collide: distinct counts
        # come out equal even though the FD is violated
        wrapped = keys * rhs_cardinality + data.matrix[:, 61]
        assert np.unique(wrapped).size == np.unique(keys).size

    def test_fd_holds_is_exact_despite_overflow(self):
        data = self.wide_relation()
        fd = FD(attrset.universe(61), 61)
        assert not fd_holds(data, fd)
        witness = find_violation(data, fd)
        assert witness is not None
        row_a, row_b = witness
        agree = data.agree_mask(row_a, row_b)
        assert fd.lhs & ~agree == 0
        assert not (agree >> fd.rhs) & 1


class TestAgainstNaive:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=25,
        ),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=150)
    def test_fd_holds_matches_naive(self, rows, lhs, rhs):
        relation = Relation.from_rows(rows, ["a", "b", "c"])
        data = preprocess(relation)
        fd = FD(lhs, rhs)
        groups: dict[tuple, set[int]] = {}
        columns = list(attrset.to_indices(lhs))
        for row in rows:
            key = tuple(row[c] for c in columns)
            groups.setdefault(key, set()).add(row[rhs])
        naive = all(len(values) == 1 for values in groups.values())
        assert fd_holds(data, fd) == naive
