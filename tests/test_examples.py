"""The example scripts are part of the public surface: they must run.

Each example is executed in-process (runpy) with a controlled argv; the
assertions check the narrative output, not timing.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(script: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "Discovered non-trivial minimal FDs" in out
        assert "[Name] -> Age" in out
        assert "pairs_compared" in out

    def test_data_obfuscation(self, capsys):
        out = run_example("data_obfuscation.py", [], capsys)
        assert "Labeled sensitive attributes" in out
        assert "Underlying sensitive attributes" in out
        # Name determines Age and Gender, so it must be protected.
        assert "Name" in out
        assert "tok#" in out

    def test_schema_normalization(self, capsys):
        out = run_example("schema_normalization.py", [], capsys)
        assert "Candidate keys" in out
        assert "BCNF decomposition" in out
        assert "All attributes covered" in out

    def test_compare_algorithms(self, capsys):
        out = run_example("compare_algorithms.py", ["iris", "100"], capsys)
        assert "Ground truth" in out
        assert "EulerFD" in out
        assert "Tane" in out

    def test_approximation_analysis(self, capsys):
        out = run_example("approximation_analysis.py", [], capsys)
        assert "Exact cover" in out
        assert "EulerFD cover" in out
        assert "Agreement" in out

    def test_incremental_profiling(self, capsys):
        out = run_example("incremental_profiling.py", [], capsys)
        assert "day 0" in out
        assert "city->country holds: True" in out
        assert "city->country holds: False" in out

    def test_data_quality(self, capsys):
        out = run_example("data_quality.py", [], capsys)
        assert "city -> country holds exactly: False" in out
        assert "city -> country holds approximately: True" in out
        assert "conflicting pair" in out
