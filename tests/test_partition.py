"""Tests for partitions and stripped partitions (Definitions 6-7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relation.partition import (
    StrippedPartition,
    full_partition_from_labels,
    partition_from_labels,
)

label_lists = st.lists(st.integers(min_value=0, max_value=5), max_size=30)


class TestConstruction:
    def test_from_labels(self):
        partition = partition_from_labels([0, 1, 0, 2, 1], 5)
        clusters = sorted(tuple(c) for c in partition.clusters)
        assert clusters == [(0, 2), (1, 4)]

    def test_rejects_singleton_clusters(self):
        with pytest.raises(ValueError):
            StrippedPartition([(0,)], 3)

    def test_full_partition_keeps_singletons(self):
        full = full_partition_from_labels([0, 1, 0])
        assert sorted(map(tuple, full)) == [(0, 2), (1,)]


class TestPaperExample5And6:
    """Partitions of attributes Age and Gender of Table I (0-indexed rows)."""

    AGE = [60, 32, 28, 49, 32, 49, 32, 41, 25]
    GENDER = ["F", "M", "F", "F", "F", "F", "F", "M", "Q"]

    def labels(self, values):
        seen = {}
        return [seen.setdefault(v, len(seen)) for v in values]

    def test_stripped_age(self):
        partition = partition_from_labels(self.labels(self.AGE), 9)
        clusters = sorted(tuple(c) for c in partition.clusters)
        # {t2, t5, t7} and {t4, t6} in the paper's 1-based numbering.
        assert clusters == [(1, 4, 6), (3, 5)]

    def test_stripped_gender(self):
        partition = partition_from_labels(self.labels(self.GENDER), 9)
        clusters = sorted(tuple(c) for c in partition.clusters)
        assert clusters == [(0, 2, 3, 4, 5, 6), (1, 7)]

    def test_full_partition_age_has_six_classes(self):
        assert len(full_partition_from_labels(self.labels(self.AGE))) == 6


class TestStatistics:
    def test_counts(self):
        partition = partition_from_labels([0, 0, 1, 2, 2, 2], 6)
        assert partition.num_clusters == 2
        assert partition.num_grouped_rows == 5
        # full classes: 1 singleton + 2 stripped = 3
        assert partition.num_classes_full == 3
        assert partition.error == 3  # (5 grouped - 2 clusters)

    def test_superkey_detection(self):
        assert partition_from_labels([0, 1, 2], 3).is_superkey()
        assert not partition_from_labels([0, 1, 0], 3).is_superkey()

    def test_empty_relation(self):
        partition = partition_from_labels([], 0)
        assert partition.num_classes_full == 0
        assert partition.is_superkey()


class TestProduct:
    def test_product_refines(self):
        left = partition_from_labels([0, 0, 0, 1, 1], 5)
        right = partition_from_labels([0, 0, 1, 1, 1], 5)
        product = left.product(right)
        clusters = sorted(tuple(c) for c in product.clusters)
        assert clusters == [(0, 1), (3, 4)]

    def test_product_with_superkey_is_empty(self):
        left = partition_from_labels([0, 0, 1], 3)
        right = partition_from_labels([0, 1, 2], 3)
        assert left.product(right).is_superkey()

    def test_product_commutes(self):
        left = partition_from_labels([0, 0, 1, 1, 0], 5)
        right = partition_from_labels([0, 1, 1, 0, 0], 5)
        assert left.product(right) == right.product(left)

    def test_product_requires_same_relation_size(self):
        with pytest.raises(ValueError):
            partition_from_labels([0, 0], 2).product(
                partition_from_labels([0, 0, 0], 3)
            )

    @given(label_lists, label_lists)
    @settings(max_examples=150)
    def test_product_matches_combined_labels(self, left_labels, right_labels):
        size = min(len(left_labels), len(right_labels))
        left_labels, right_labels = left_labels[:size], right_labels[:size]
        left = partition_from_labels(left_labels, size)
        right = partition_from_labels(right_labels, size)
        combined = [
            hash((a, b)) for a, b in zip(left_labels, right_labels)
        ]
        expected = partition_from_labels(
            [combined.index(value) for value in combined], size
        )
        assert left.product(right) == expected


class TestRefines:
    def test_fd_oracle(self):
        # labels of X and A: X -> A holds iff π_X refines π_A.
        x = partition_from_labels([0, 0, 1, 1], 4)
        a_held = partition_from_labels([5, 5, 6, 6], 4)
        a_broken = partition_from_labels([5, 6, 6, 6], 4)
        assert x.refines(a_held)
        assert not x.refines(a_broken)

    def test_everything_refines_constant(self):
        x = partition_from_labels([0, 1, 1, 2, 2], 5)
        constant = partition_from_labels([9, 9, 9, 9, 9], 5)
        assert x.refines(constant)


class TestEquality:
    def test_cluster_order_irrelevant(self):
        left = StrippedPartition([(0, 1), (2, 3)], 4)
        right = StrippedPartition([(3, 2), (1, 0)], 4)
        assert left == right
        assert hash(left) == hash(right)

    def test_different_sizes_unequal(self):
        assert StrippedPartition([(0, 1)], 2) != StrippedPartition([(0, 1)], 3)

    def test_not_equal_to_other_types(self):
        assert StrippedPartition([(0, 1)], 2) != "partition"
