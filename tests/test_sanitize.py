"""Tests for ``repro-lint --sanitize`` and the runtime contract shim.

Each behavioural test builds a miniature package under ``tmp_path``,
sanitizes it, and imports the shadow copy under a unique package name so
the instrumented wrappers execute for real — the closest in-process
analogue of running the suite with ``PYTHONPATH=build/sanitized``.
"""

from __future__ import annotations

import importlib
import itertools
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.sanitize import sanitize_package

SRC_REPRO = Path(repro.__file__).resolve().parent

_COUNTER = itertools.count()


def _build(tmp_path: Path, kern_source: str, extra: dict[str, str] | None = None):
    """Write a one-module package and return (package dir, shadow outdir)."""
    name = f"sanipkg_{next(_COUNTER)}"
    package = tmp_path / "input" / name
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    (package / "kern.py").write_text(textwrap.dedent(kern_source))
    for relpath, source in (extra or {}).items():
        (package / relpath).write_text(textwrap.dedent(source))
    return package, tmp_path / "shadow"


def _import_shadow(monkeypatch, package: Path, outdir: Path):
    """Sanitize ``package`` and import the shadow's ``kern`` module."""
    report = sanitize_package(package, outdir)
    monkeypatch.syspath_prepend(str(outdir))
    kern = importlib.import_module(f"{package.name}.kern")
    runtime = importlib.import_module(f"{package.name}._contracts_runtime")
    return kern, runtime, report


class TestRuntimeContracts:
    def test_pure_violation_raises(self, tmp_path, monkeypatch):
        package, outdir = _build(
            tmp_path,
            """\
            def leaky(values: list) -> list:
                '''Pure: (falsely).'''
                values.append(1)
                return values
            """,
        )
        kern, runtime, report = _import_shadow(monkeypatch, package, outdir)
        assert report.functions_instrumented == 1
        with pytest.raises(runtime.ContractViolation, match="'values'"):
            kern.leaky([1, 2])

    def test_honest_pure_passes(self, tmp_path, monkeypatch):
        package, outdir = _build(
            tmp_path,
            """\
            def total(values: list) -> int:
                '''Pure:'''
                return sum(values)
            """,
        )
        kern, _, _ = _import_shadow(monkeypatch, package, outdir)
        assert kern.total([1, 2, 3]) == 6
        assert kern.total.__wrapped__ is not None

    def test_mutates_allows_declared_and_catches_undeclared(
        self, tmp_path, monkeypatch
    ):
        package, outdir = _build(
            tmp_path,
            """\
            def push(store: list, item: int, log: list) -> None:
                '''Mutates: store'''
                store.append(item)


            def sneaky(store: list, item: int, log: list) -> None:
                '''Mutates: store'''
                store.append(item)
                log.append(item)
            """,
        )
        kern, runtime, _ = _import_shadow(monkeypatch, package, outdir)
        store: list = []
        kern.push(store, 7, [])
        assert store == [7]
        with pytest.raises(runtime.ContractViolation, match="'log'"):
            kern.sneaky(store, 8, [])

    def test_monotone_probe_enforced(self, tmp_path, monkeypatch):
        package, outdir = _build(
            tmp_path,
            """\
            class Box:
                def __init__(self) -> None:
                    self.items: set[int] = set()

                def __iter__(self):
                    return iter(set(self.items))

                def contains(self, item: int) -> bool:
                    return item in self.items

                def add(self, item: int) -> None:
                    '''Mutates: self

                    Monotone: self via contains
                    '''
                    self.items.add(item)

                def drop(self, item: int) -> None:
                    '''Mutates: self

                    Monotone: self via contains
                    '''
                    self.items.discard(item)
            """,
        )
        kern, runtime, report = _import_shadow(monkeypatch, package, outdir)
        assert report.functions_instrumented == 2
        box = kern.Box()
        box.add(1)
        box.add(2)  # old member 1 still contained: fine
        with pytest.raises(runtime.ContractViolation, match="contains"):
            box.drop(1)

    def test_check_budget_turns_wrapper_into_passthrough(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CONTRACTS_MAX_CHECKS", "0")
        package, outdir = _build(
            tmp_path,
            """\
            def leaky(values: list) -> list:
                '''Pure: (falsely).'''
                values.append(1)
                return values
            """,
        )
        kern, _, _ = _import_shadow(monkeypatch, package, outdir)
        assert kern.leaky([1]) == [1, 1]  # budget exhausted: no check ran

    def test_disable_env_strips_wrappers_at_import(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS_DISABLE", "1")
        package, outdir = _build(
            tmp_path,
            """\
            def leaky(values: list) -> list:
                '''Pure: (falsely).'''
                values.append(1)
                return values
            """,
        )
        kern, _, _ = _import_shadow(monkeypatch, package, outdir)
        assert not hasattr(kern.leaky, "__wrapped__")
        assert kern.leaky([1]) == [1, 1]

    def test_exceptions_propagate_without_after_checks(self, tmp_path, monkeypatch):
        package, outdir = _build(
            tmp_path,
            """\
            def explode(values: list) -> None:
                '''Pure:'''
                values.append(1)
                raise RuntimeError("boom")
            """,
        )
        kern, _, _ = _import_shadow(monkeypatch, package, outdir)
        with pytest.raises(RuntimeError, match="boom"):
            kern.explode([1])


class TestSanitizeStructure:
    def test_shadow_tree_layout(self, tmp_path, monkeypatch):
        package, outdir = _build(
            tmp_path,
            """\
            def total(values: list) -> int:
                '''Pure:'''
                return sum(values)
            """,
            extra={"plain.py": "UNTOUCHED = 1\n"},
        )
        _, _, report = _import_shadow(monkeypatch, package, outdir)
        shadow = outdir / package.name
        assert (shadow / "_contracts_runtime.py").exists()
        instrumented = (shadow / "kern.py").read_text()
        assert "Generated by `repro-lint --sanitize`" in instrumented
        assert "@_repro_contract__(pure=True)" in instrumented
        assert "from ._contracts_runtime import contract as _repro_contract__" in (
            instrumented
        )
        # Contract-free files are copied byte-for-byte.
        assert (shadow / "plain.py").read_text() == (package / "plain.py").read_text()
        assert report.files_instrumented == 1
        assert report.files_copied == 2  # __init__.py + plain.py

    def test_file_pragmas_survive_unparse(self, tmp_path):
        package, outdir = _build(
            tmp_path,
            """\
            # repro-lint: disable-file=RPR002
            def masked(index: int, sink: list) -> None:
                '''Mutates: sink'''
                sink.append(1 << index)
            """,
        )
        sanitize_package(package, outdir)
        instrumented = (outdir / package.name / "kern.py").read_text()
        assert "# repro-lint: disable-file=RPR002" in instrumented

    def test_ordered_pragmas_become_a_file_level_pass(self, tmp_path):
        # ast.unparse loses the site-level `# pragma: repro-lint ordered`
        # comments RPR107 reads, so an instrumented module that had any
        # must carry a file-level RPR107 pass in the shadow copy.
        package, outdir = _build(
            tmp_path,
            """\
            def merge(parts: list) -> set:
                '''Pure: parts'''
                return set(parts)  # pragma: repro-lint ordered
            """,
        )
        sanitize_package(package, outdir)
        instrumented = (outdir / package.name / "kern.py").read_text()
        assert "disable-file=RPR107" in instrumented

    def test_grammar_error_contracts_are_skipped_not_enforced(self, tmp_path):
        package, outdir = _build(
            tmp_path,
            """\
            def contradictory(values: list) -> None:
                '''Pure:
                Mutates: values
                '''
            """,
        )
        report = sanitize_package(package, outdir)
        assert report.skipped_contracts == ["kern.py:contradictory"]
        assert report.files_instrumented == 0
        # The broken-contract module falls back to a verbatim copy.
        assert (outdir / package.name / "kern.py").read_text() == (
            package / "kern.py"
        ).read_text()

    def test_rejects_non_package_directory(self, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        with pytest.raises(ValueError, match="__init__.py"):
            sanitize_package(bare, tmp_path / "out")


class TestRealPackage:
    def test_sanitized_repro_covers_smoke(self, tmp_path):
        """The sanitized real package imports and enforces the cover contracts."""
        outdir = tmp_path / "shadow"
        report = sanitize_package(SRC_REPRO, outdir)
        assert report.functions_instrumented >= 15
        script = textwrap.dedent(
            """\
            from repro.fd.covers import NegativeCover
            from repro.fd.fd import FD

            cover = NegativeCover(num_attributes=4)
            assert hasattr(NegativeCover.add, "__wrapped__"), "not instrumented"
            assert cover.add(FD.of([0, 1], 2))
            assert cover.covers(FD.of([0], 2))
            print("SANITIZED-OK")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(outdir)
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "SANITIZED-OK" in completed.stdout
