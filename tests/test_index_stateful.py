"""Stateful property testing of the three LHS indexes.

A hypothesis rule-based machine drives random add/remove/query sequences
against all three index implementations simultaneously and a plain-set
model; any divergence in any operation is a bug in one of them.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.fd import BinaryLhsTree, BitsetLhsIndex, FDTreeIndex

MASKS = st.integers(min_value=0, max_value=(1 << 8) - 1)


class IndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.model: set[int] = set()
        self.indexes = {
            "binary": BinaryLhsTree(),
            "trie": FDTreeIndex(),
            "bitset": BitsetLhsIndex(),
        }

    @rule(mask=MASKS)
    def add(self, mask):
        expected = mask not in self.model
        self.model.add(mask)
        for name, index in self.indexes.items():
            assert index.add(mask) == expected, name

    @rule(mask=MASKS)
    def remove(self, mask):
        expected = mask in self.model
        self.model.discard(mask)
        for name, index in self.indexes.items():
            assert index.remove(mask) == expected, name

    @rule(query=MASKS)
    def query_supersets(self, query):
        expected = sorted(m for m in self.model if query & ~m == 0)
        for name, index in self.indexes.items():
            assert index.find_supersets(query) == expected, name
            assert index.contains_superset(query) == bool(expected), name

    @rule(query=MASKS)
    def query_subsets(self, query):
        expected = sorted(m for m in self.model if m & ~query == 0)
        for name, index in self.indexes.items():
            assert index.find_subsets(query) == expected, name
            assert index.contains_subset(query) == bool(expected), name

    @rule(query=MASKS, attr=st.integers(min_value=0, max_value=7))
    def query_subset_containing(self, query, attr):
        expected = any(
            m & ~query == 0 and (m >> attr) & 1 for m in self.model
        )
        for name, index in self.indexes.items():
            assert index.contains_subset_containing(query, attr) == expected, name

    @invariant()
    def sizes_and_contents_agree(self):
        expected = sorted(self.model)
        for name, index in self.indexes.items():
            assert len(index) == len(self.model), name
            assert list(index) == expected, name
        tree = self.indexes["binary"]
        tree.check_invariants()


IndexMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestIndexes = IndexMachine.TestCase
