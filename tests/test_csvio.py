"""Tests for CSV input/output."""

from __future__ import annotations

import pytest

from repro.datasets import patients
from repro.relation import Relation, read_csv, write_csv


class TestRoundtrip:
    def test_write_then_read(self, tmp_path, patient_relation):
        path = tmp_path / "patients.csv"
        write_csv(patient_relation, path)
        loaded = read_csv(path)
        assert loaded.column_names == patient_relation.column_names
        assert loaded.num_rows == patient_relation.num_rows
        # Values come back as strings; Age 60 -> "60".
        assert loaded.row(0) == ("Kelly", "60", "High", "Female", "drugA")

    def test_nulls_roundtrip(self, tmp_path):
        relation = Relation.from_rows([("a", None), (None, "b")], ["x", "y"])
        path = tmp_path / "nulls.csv"
        write_csv(relation, path)
        loaded = read_csv(path)
        assert loaded.row(0) == ("a", None)
        assert loaded.row(1) == (None, "b")


class TestRead:
    def test_max_rows(self, tmp_path, patient_relation):
        path = tmp_path / "patients.csv"
        write_csv(patient_relation, path)
        loaded = read_csv(path, max_rows=3)
        assert loaded.num_rows == 3

    def test_no_header(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1,2\n3,4\n")
        loaded = read_csv(path, has_header=False)
        assert loaded.column_names == ("col_0", "col_1")
        assert loaded.num_rows == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;b\n1;2\n")
        loaded = read_csv(path, delimiter=";")
        assert loaded.column_names == ("a", "b")

    def test_custom_null_token(self, tmp_path):
        path = tmp_path / "na.csv"
        path.write_text("a,b\nNA,2\n")
        loaded = read_csv(path, null_token="NA")
        assert loaded.row(0) == (None, "2")

    def test_relation_name_from_stem(self, tmp_path):
        path = tmp_path / "mydata.csv"
        path.write_text("a\n1\n")
        assert read_csv(path).name == "mydata"
        assert read_csv(path, name="override").name == "override"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="row 1"):
            read_csv(path)

    def test_header_only_gives_empty_relation(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        loaded = read_csv(path)
        assert loaded.shape == (0, 2)
