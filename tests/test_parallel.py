"""The parallel execution engine: pool specs, sharded kernels, and the
cross-worker determinism guarantee.

The load-bearing suite here is :class:`TestCrossWorkerDeterminism`: FD
sets *and* run statistics must be byte-identical for ``jobs`` in
{serial, 2, 4} across EulerFD / HyFD / Fdep on several synthetic
datasets.  The dispatch thresholds are forced down so even the small
test relations actually fan out; without that the pool would fall back
to the inline path and the tests would assert nothing.
"""

from __future__ import annotations

import glob

import pytest

import repro.engine.parallel as parallel
import repro.engine.shm as shm
from repro.algorithms import create
from repro.bench.runner import run_algorithm, run_matrix
from repro.datasets import registry
from repro.engine import (
    ExecutionContext,
    JOBS_ENV,
    PoolSpec,
    WorkerPool,
    close_all_pools,
    get_pool,
    resolve_spec,
    use_context,
)
from repro.engine.parallel import chunk_pairs, chunk_ranges, merge_chunked
from repro.relation.preprocess import preprocess


@pytest.fixture
def tiny_thresholds(monkeypatch):
    """Force dispatch on small inputs so parallel paths actually run."""
    monkeypatch.setattr(parallel, "MIN_PAIRS_PER_WORKER", 1)
    monkeypatch.setattr(parallel, "MIN_GROUPS_PER_WORKER", 1)


@pytest.fixture(autouse=True)
def fresh_pools():
    """Every test starts and ends without cached pools or live segments."""
    close_all_pools()
    yield
    close_all_pools()


def _discover(algorithm: str, relation, jobs):
    context = ExecutionContext(relation, jobs=jobs)
    with use_context(context):
        result = create(algorithm).discover(relation)
    return result


# -- spec parsing --------------------------------------------------------------


class TestPoolSpec:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, ("serial", 1)),
            ("", ("serial", 1)),
            ("serial", ("serial", 1)),
            (1, ("serial", 1)),
            ("1", ("serial", 1)),
            (4, ("process", 4)),
            ("4", ("process", 4)),
            ("process:2", ("process", 2)),
            ("thread:3", ("thread", 3)),
            ("THREAD:3", ("thread", 3)),
        ],
    )
    def test_parse(self, value, expected):
        spec = PoolSpec.parse(value)
        assert (spec.kind, spec.jobs) == expected

    def test_bare_kind_uses_cpu_count(self):
        assert PoolSpec.parse("thread").jobs >= 2
        assert PoolSpec.parse("process").kind == "process"

    @pytest.mark.parametrize("value", ["fiber:2", "process:0", "0"])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            PoolSpec.parse(value)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "thread:2")
        assert resolve_spec() == PoolSpec("thread", 2)
        assert resolve_spec("process:3") == PoolSpec("process", 3)
        monkeypatch.delenv(JOBS_ENV)
        assert resolve_spec().is_serial

    def test_get_pool_caches_per_spec(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert get_pool("thread:2") is get_pool("thread:2")
        assert get_pool("thread:2") is not get_pool("thread:3")
        serial = get_pool(None)
        assert serial.is_serial and serial is get_pool("serial")


# -- chunk plans ---------------------------------------------------------------


class TestChunkPlans:
    @pytest.mark.parametrize("total,chunks", [(0, 4), (1, 4), (10, 3), (100, 7)])
    def test_ranges_cover_exactly_in_order(self, total, chunks):
        ranges = chunk_ranges(total, chunks)
        flat = [i for start, stop in ranges for i in range(start, stop)]
        assert flat == list(range(total))
        sizes = [stop - start for start, stop in ranges]
        assert sizes == sorted(sizes, reverse=True)  # never growing

    def test_pairs_preserve_order(self):
        rows_a, rows_b = list(range(10)), list(range(10, 20))
        chunks = chunk_pairs(rows_a, rows_b, 3)
        assert merge_chunked([list(a) for a, _ in chunks]) == rows_a
        assert merge_chunked([list(b) for _, b in chunks]) == rows_b


# -- kernel equivalence --------------------------------------------------------


@pytest.fixture(scope="module")
def sample_data():
    relation = registry.make("fd-reduced-30", rows=200, seed=11)
    return preprocess(relation, True)


KINDS = ["thread:2", "process:2"]


class TestShardedKernels:
    @pytest.mark.parametrize("jobs", KINDS)
    def test_agree_masks_match_serial(self, sample_data, jobs, tiny_thresholds):
        rows_a = list(range(0, 150))
        rows_b = list(range(50, 200))
        serial = sample_data.agree_masks_bulk(rows_a, rows_b)
        pool = get_pool(jobs)
        assert parallel.agree_masks_sharded(pool, sample_data, rows_a, rows_b) == serial
        assert pool.stats()["chunks"] > 0

    @pytest.mark.parametrize("jobs", KINDS)
    def test_distinct_masks_match_serial(self, sample_data, jobs, tiny_thresholds):
        serial = parallel.distinct_agree_masks_sharded(get_pool("serial"), sample_data)
        sharded = parallel.distinct_agree_masks_sharded(get_pool(jobs), sample_data)
        assert sharded == serial
        # Insertion-order preservation, not just set equality: iteration
        # order is what downstream cover construction consumes.
        assert list(sharded) == list(serial)

    @pytest.mark.parametrize("jobs", KINDS)
    def test_validate_many_matches_serial(self, sample_data, jobs, tiny_thresholds):
        relation = sample_data.relation
        candidates = [
            fd
            for fd in create("fdep").discover(relation).fds
        ]
        serial = ExecutionContext(relation, jobs="serial").validate_many(
            candidates, witnesses=True
        )
        sharded = ExecutionContext(relation, jobs=jobs).validate_many(
            candidates, witnesses=True
        )
        assert sharded == serial

    def test_small_batches_stay_inline(self, sample_data):
        pool = get_pool("thread:2")
        rows_a, rows_b = [0, 1], [2, 3]
        assert parallel.agree_masks_sharded(
            pool, sample_data, rows_a, rows_b
        ) == sample_data.agree_masks_bulk(rows_a, rows_b)
        assert pool.stats()["chunks"] == 0  # below threshold: no dispatch


# -- the determinism guarantee -------------------------------------------------


DATASETS = [
    ("fd-reduced-30", 300, 3),
    ("plista", 150, 7),
    ("balance-scale", 250, 1),
]
ALGORITHMS = ["eulerfd", "hyfd", "fdep"]


class TestCrossWorkerDeterminism:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("name,rows,seed", DATASETS)
    def test_fds_and_stats_identical_across_worker_counts(
        self, algorithm, name, rows, seed, tiny_thresholds
    ):
        relation = registry.make(name, rows=rows, seed=seed)
        baseline = _discover(algorithm, relation, "serial")
        for jobs in (2, 4):
            result = _discover(algorithm, relation, jobs)
            assert result.fds == baseline.fds, f"jobs={jobs}"
            assert result.stats == baseline.stats, f"jobs={jobs}"

    def test_thread_pool_matches_process_pool(self, tiny_thresholds):
        relation = registry.make("fd-reduced-30", rows=300, seed=3)
        thread = _discover("hyfd", relation, "thread:2")
        process = _discover("hyfd", relation, "process:2")
        assert thread.fds == process.fds
        assert thread.stats == process.stats


# -- shared-memory transport ---------------------------------------------------


class TestMatrixTransport:
    def test_publish_resolve_roundtrip(self, sample_data):
        handle, cleanup = shm.publish_matrix(sample_data.matrix)
        try:
            resolved = shm.resolve_matrix(handle)
            assert (resolved == sample_data.matrix).all()
        finally:
            cleanup()
        cleanup()  # idempotent

    def test_pickle_fallback_roundtrip(self, sample_data):
        handle, cleanup = shm.publish_matrix(
            sample_data.matrix, use_shared_memory=False
        )
        assert isinstance(handle, shm.PickledMatrix)
        resolved = shm.resolve_matrix(handle)
        assert (resolved == sample_data.matrix).all()
        cleanup()

    def test_discovery_on_pickle_fallback(self, monkeypatch, tiny_thresholds):
        """Platforms without shared memory still parallelize correctly."""
        monkeypatch.setattr(shm, "HAVE_SHARED_MEMORY", False)
        relation = registry.make("fd-reduced-30", rows=300, seed=3)
        baseline = _discover("fdep", relation, "serial")
        result = _discover("fdep", relation, 2)
        assert result.fds == baseline.fds
        assert result.stats == baseline.stats

    def test_no_leaked_segments_after_close(self, sample_data, tiny_thresholds):
        # Snapshot first: only segments *this* test publishes count, so a
        # stale segment from an unrelated crashed process cannot flake us.
        before = set(glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*"))
        pool = get_pool("process:2")
        parallel.agree_masks_sharded(
            pool, sample_data, list(range(150)), list(range(50, 200))
        )
        close_all_pools()
        leaked = set(glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*")) - before
        assert leaked == set()

    def test_closed_pool_refuses_to_publish(self, sample_data):
        """A stale context must fail loudly, not orphan a fresh segment."""
        pool = get_pool("process:2")
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.matrix_handle(sample_data.matrix)

    def test_pool_is_a_context_manager(self, sample_data, tiny_thresholds):
        before = set(glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*"))
        with WorkerPool(PoolSpec("process", 2)) as pool:
            assert pool.jobs == 2
            parallel.agree_masks_sharded(
                pool, sample_data, list(range(100)), list(range(50, 150))
            )
        assert pool._published == {}
        assert set(glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}*")) - before == set()

    def test_pool_context_manager_closes_on_error(self):
        pool = WorkerPool(PoolSpec("thread", 2))
        with pytest.raises(RuntimeError, match="boom"):
            with pool:
                raise RuntimeError("boom")
        with pytest.raises(RuntimeError, match="closed"):
            pool._ensure_executor()


# -- bench-harness surface -----------------------------------------------------


class TestBenchIntegration:
    def test_run_matrix_matches_serial(self, tiny_thresholds):
        relations = [
            registry.make("iris", rows=80, seed=1),
            registry.make("fd-reduced-30", rows=150, seed=2),
        ]
        serial = run_matrix(relations, algorithms=["Fdep", "EulerFD"], jobs="serial")
        fanned = run_matrix(
            relations, algorithms=["Fdep", "EulerFD"], jobs="process:2"
        )
        assert list(serial) == list(fanned)
        for key, run in serial.items():
            assert fanned[key].fds == run.fds, key
            assert fanned[key].stats == run.stats, key

    def test_run_matrix_rejects_unknown_algorithm(self):
        with pytest.raises(KeyError):
            run_matrix([registry.make("iris", rows=20, seed=1)], algorithms=["Nope"])

    def test_parallel_efficiency_populated(self, tiny_thresholds):
        relation = registry.make("fd-reduced-30", rows=300, seed=3)
        serial = run_algorithm(create("fdep").__class__, relation, jobs="serial")
        assert serial.jobs == 1 and serial.parallel_efficiency is None
        fanned = run_algorithm(
            create("fdep").__class__, relation, jobs="thread:2"
        )
        assert fanned.jobs == 2
        assert fanned.parallel_efficiency is not None
        assert fanned.parallel_efficiency > 0
        assert fanned.fds == serial.fds
