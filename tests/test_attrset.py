"""Unit and property tests for the bitmask attribute-set helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fd import attrset

masks = st.integers(min_value=0, max_value=(1 << 24) - 1)
indices = st.integers(min_value=0, max_value=23)


class TestBasics:
    def test_empty_is_zero(self):
        assert attrset.EMPTY == 0
        assert attrset.size(attrset.EMPTY) == 0

    def test_singleton(self):
        assert attrset.singleton(0) == 1
        assert attrset.singleton(3) == 8

    def test_singleton_rejects_negative(self):
        with pytest.raises(ValueError):
            attrset.singleton(-1)

    def test_from_indices(self):
        assert attrset.from_indices([0, 2, 5]) == 0b100101

    def test_from_indices_empty(self):
        assert attrset.from_indices([]) == attrset.EMPTY

    def test_from_indices_duplicates_collapse(self):
        assert attrset.from_indices([1, 1, 1]) == 0b10

    def test_to_indices_ascending(self):
        assert list(attrset.to_indices(0b100101)) == [0, 2, 5]

    def test_to_tuple(self):
        assert attrset.to_tuple(0b1010) == (1, 3)

    def test_to_indices_rejects_negative(self):
        with pytest.raises(ValueError):
            list(attrset.to_indices(-1))

    def test_universe(self):
        assert attrset.universe(0) == 0
        assert attrset.universe(3) == 0b111

    def test_universe_rejects_negative(self):
        with pytest.raises(ValueError):
            attrset.universe(-2)

    def test_contains(self):
        assert attrset.contains(0b101, 0)
        assert not attrset.contains(0b101, 1)
        assert attrset.contains(0b101, 2)

    def test_add_remove(self):
        mask = attrset.add(0b001, 2)
        assert mask == 0b101
        assert attrset.remove(mask, 0) == 0b100
        assert attrset.remove(mask, 1) == mask  # removing absent is a no-op

    def test_lowest_bit(self):
        assert attrset.lowest_bit(0b1000) == 3
        assert attrset.lowest_bit(0b1010) == 1

    def test_lowest_bit_of_empty_raises(self):
        with pytest.raises(ValueError):
            attrset.lowest_bit(0)


class TestSubsets:
    def test_is_subset_reflexive(self):
        assert attrset.is_subset(0b110, 0b110)

    def test_is_subset_strict(self):
        assert attrset.is_subset(0b100, 0b110)
        assert not attrset.is_subset(0b110, 0b100)

    def test_empty_subset_of_everything(self):
        assert attrset.is_subset(0, 0b1011)
        assert attrset.is_subset(0, 0)

    def test_is_proper_subset(self):
        assert attrset.is_proper_subset(0b100, 0b110)
        assert not attrset.is_proper_subset(0b110, 0b110)

    def test_subsets_one_smaller(self):
        got = set(attrset.subsets_one_smaller(0b1011))
        assert got == {0b1010, 0b1001, 0b0011}

    def test_subsets_one_smaller_of_empty(self):
        assert list(attrset.subsets_one_smaller(0)) == []

    def test_all_subsets_count(self):
        assert len(list(attrset.all_subsets(0b111))) == 8

    def test_all_subsets_membership(self):
        subsets = set(attrset.all_subsets(0b101))
        assert subsets == {0b000, 0b001, 0b100, 0b101}


class TestFormat:
    def test_format_with_names(self):
        assert attrset.format_mask(0b101, ["Name", "Age", "Gender"]) == (
            "{Name, Gender}"
        )

    def test_format_without_names(self):
        assert attrset.format_mask(0b110) == "{1, 2}"

    def test_format_empty(self):
        assert attrset.format_mask(0) == "{}"


class TestProperties:
    @given(masks)
    def test_indices_roundtrip(self, mask):
        assert attrset.from_indices(attrset.to_indices(mask)) == mask

    @given(masks)
    def test_size_matches_indices(self, mask):
        assert attrset.size(mask) == len(list(attrset.to_indices(mask)))

    @given(masks, masks)
    def test_subset_via_sets(self, a, b):
        expected = set(attrset.to_indices(a)) <= set(attrset.to_indices(b))
        assert attrset.is_subset(a, b) == expected

    @given(masks, indices)
    def test_add_then_contains(self, mask, index):
        assert attrset.contains(attrset.add(mask, index), index)

    @given(masks, indices)
    def test_remove_then_absent(self, mask, index):
        assert not attrset.contains(attrset.remove(mask, index), index)

    @given(st.integers(min_value=1, max_value=(1 << 24) - 1))
    def test_subsets_one_smaller_are_proper(self, mask):
        for subset in attrset.subsets_one_smaller(mask):
            assert attrset.is_proper_subset(subset, mask)
            assert attrset.size(subset) == attrset.size(mask) - 1
