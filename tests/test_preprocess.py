"""Tests for the preprocessing module (Section IV-B, Table II)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import patients
from repro.relation import Relation, preprocess


class TestLabelMatrix:
    def test_table2_reproduction(self, patient_relation):
        """Preprocessing Table I must yield exactly Table II."""
        data = preprocess(patient_relation)
        expected = np.array(
            [
                [1, 1, 1, 1, 1],
                [2, 2, 2, 2, 2],
                [3, 3, 3, 1, 3],
                [4, 4, 2, 1, 4],
                [5, 2, 3, 1, 3],
                [6, 4, 3, 1, 3],
                [7, 2, 2, 1, 2],
                [8, 5, 3, 2, 4],
                [9, 6, 2, 3, 2],
            ]
        ) - 1  # the paper labels from 1, we label from 0
        assert (data.matrix == expected).all()

    def test_labels_independent_per_column(self):
        relation = Relation.from_rows([("a", "a"), ("b", "a")], ["x", "y"])
        data = preprocess(relation)
        assert list(data.matrix[:, 0]) == [0, 1]
        assert list(data.matrix[:, 1]) == [0, 0]

    def test_matrix_is_readonly(self, patient_relation):
        data = preprocess(patient_relation)
        with pytest.raises(ValueError):
            data.matrix[0, 0] = 99

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            preprocess(Relation.from_rows([], column_names=[]))

    def test_cardinality(self, patient_relation):
        data = preprocess(patient_relation)
        assert data.cardinality(0) == 9  # Name: all distinct
        assert data.cardinality(3) == 3  # Gender: F, M, Q

    def test_cardinality_of_empty_relation(self):
        data = preprocess(Relation.from_rows([], ["a"]))
        assert data.cardinality(0) == 0


class TestNullSemantics:
    def test_null_equals_null(self):
        relation = Relation.from_rows([(None,), (None,), ("x",)], ["a"])
        data = preprocess(relation, null_equals_null=True)
        assert data.matrix[0, 0] == data.matrix[1, 0]
        assert data.matrix[2, 0] != data.matrix[0, 0]

    def test_null_not_equals_null(self):
        relation = Relation.from_rows([(None,), (None,), ("x",)], ["a"])
        data = preprocess(relation, null_equals_null=False)
        assert data.matrix[0, 0] != data.matrix[1, 0]

    def test_none_distinct_from_string_none(self):
        relation = Relation.from_rows([(None,), ("None",)], ["a"])
        data = preprocess(relation)
        assert data.matrix[0, 0] != data.matrix[1, 0]


class TestAgreeMask:
    def test_agree_mask_of_paper_pair(self, patient_relation):
        data = preprocess(patient_relation)
        # t2 and t8 (0-based rows 1, 7) share only Gender = Male (bit 3).
        assert data.agree_mask(1, 7) == 0b01000

    def test_agree_mask_identity(self, patient_relation):
        data = preprocess(patient_relation)
        assert data.agree_mask(2, 2) == 0b11111

    def test_agree_mask_disjoint(self):
        relation = Relation.from_rows([(1, 2), (3, 4)], ["a", "b"])
        data = preprocess(relation)
        assert data.agree_mask(0, 1) == 0

    def test_agree_mask_wide_relation(self):
        # More than 64 columns exercises the multi-byte packing path.
        width = 130
        row_a = list(range(width))
        row_b = [v if i % 3 == 0 else -v - 1 for i, v in enumerate(row_a)]
        relation = Relation.from_rows([row_a, row_b])
        data = preprocess(relation)
        expected = sum(1 << i for i in range(width) if i % 3 == 0)
        assert data.agree_mask(0, 1) == expected


class TestAgreeMasksBulk:
    def test_matches_single_pair_api(self, patient_relation):
        data = preprocess(patient_relation)
        rows_a = [0, 1, 2, 3]
        rows_b = [4, 5, 6, 7]
        bulk = data.agree_masks_bulk(rows_a, rows_b)
        singles = [data.agree_mask(a, b) for a, b in zip(rows_a, rows_b)]
        assert bulk == singles

    def test_empty_batch(self, patient_relation):
        data = preprocess(patient_relation)
        assert data.agree_masks_bulk([], []) == []

    def test_wide_bulk(self):
        width = 100
        rows = [tuple(range(width)), tuple(-v for v in range(width))]
        data = preprocess(Relation.from_rows(rows))
        masks = data.agree_masks_bulk([0], [1])
        assert masks == [1]  # only column 0 agrees (0 == -0)

    def test_random_agreement(self):
        import random

        rng = random.Random(1)
        rows = [tuple(rng.randint(0, 2) for _ in range(9)) for _ in range(30)]
        data = preprocess(Relation.from_rows(rows))
        rows_a = list(range(15))
        rows_b = list(range(15, 30))
        bulk = data.agree_masks_bulk(rows_a, rows_b)
        for a, b, mask in zip(rows_a, rows_b, bulk):
            assert mask == data.agree_mask(a, b)


class TestStrippedPartitions:
    def test_clusters_iteration(self, patient_relation):
        data = preprocess(patient_relation)
        clusters = list(data.iter_clusters())
        # Name is a key: no clusters; Age has 2; Blood 2; Gender 2; Medicine 3.
        attributes = [attribute for attribute, _ in clusters]
        assert attributes.count(0) == 0
        assert attributes.count(1) == 2
        assert attributes.count(3) == 2

    def test_partition_of_key_column_is_empty(self, patient_relation):
        data = preprocess(patient_relation)
        assert data.stripped[0].is_superkey()

    def test_labels_view(self, patient_relation):
        data = preprocess(patient_relation)
        assert list(data.labels(3)) == [0, 1, 0, 0, 0, 0, 0, 1, 2]
