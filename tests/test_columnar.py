"""The columnar encoded-matrix layer: encoding, fused kernels, mmap.

Equivalence is the load-bearing property here: the columnar backend must
produce byte-identical FD sets and agree masks to the canonical int64
kernels on every dataset, algorithm, and worker count — the encoding
changes storage width, never label values.
"""

from __future__ import annotations

import glob
import os
import tempfile

import numpy as np
import pytest

import repro.engine.parallel as parallel
from repro.algorithms import create
from repro.datasets import registry
from repro.engine import (
    ColumnarBackend,
    ExecutionContext,
    close_all_pools,
    get_backend,
    get_pool,
    use_context,
)
from repro.engine import shm
from repro.engine.columnar import (
    agree_masks_from_encoded,
    encoded_constant_on,
    encoded_group_keys,
    encoded_of,
    encoded_witness,
)
from repro.engine.shm import (
    EncodedView,
    InlineEncoded,
    MmapEncodedRef,
    publish_encoded,
    resolve_encoded,
    resolve_view,
)
from repro.engine.store import (
    ROW_REF_BYTES,
    label_width_bytes,
    partition_cost_bytes,
)
from repro.relation import Relation, preprocess
from repro.relation.preprocess import (
    EncodedMatrix,
    dtype_for_cardinality,
    encode_matrix,
)


@pytest.fixture(autouse=True)
def fresh_pools():
    close_all_pools()
    yield
    close_all_pools()


def _encoded_of_rows(rows, names=None):
    data = preprocess(Relation.from_rows(rows, names), True)
    return data, data.encoded_matrix()


# -- dtype selection -----------------------------------------------------------


class TestDtypeSelection:
    @pytest.mark.parametrize(
        "cardinality,expected",
        [
            (0, "uint8"),
            (1, "uint8"),
            (256, "uint8"),
            (257, "uint16"),
            (65536, "uint16"),
            (65537, "uint32"),
            (1 << 32, "uint32"),
        ],
    )
    def test_tight_ladder(self, cardinality, expected):
        assert dtype_for_cardinality(cardinality) == np.dtype(expected)

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            dtype_for_cardinality(-1)

    def test_u16_to_u32_promotion_on_real_labels(self):
        """A column crossing 65536 distinct labels promotes to uint32."""
        wide = np.arange(65537, dtype=np.int64).reshape(-1, 1)
        narrow = (np.arange(65537, dtype=np.int64) % 65536).reshape(-1, 1)
        assert encode_matrix(wide).dtypes == ("uint32",)
        assert encode_matrix(narrow).dtypes == ("uint16",)
        # values survive the narrowing cast bit-for-bit
        assert np.array_equal(
            encode_matrix(wide).column(0).astype(np.int64), wide[:, 0]
        )

    def test_single_value_and_all_distinct_columns(self):
        rows = [("k", i) for i in range(300)]
        _, encoded = _encoded_of_rows(rows, ["const", "key"])
        assert encoded.cardinalities == (1, 300)
        assert encoded.dtypes == ("uint8", "uint16")
        assert encoded.row_bytes == 3
        assert np.array_equal(encoded.column(0), np.zeros(300, dtype=np.uint8))

    def test_encoding_matches_matrix_labels(self):
        data, encoded = _encoded_of_rows(
            [(i % 7, i % 3, "x") for i in range(50)]
        )
        assert encoded.num_rows == 50
        assert encoded.num_columns == 3
        for j in range(3):
            assert np.array_equal(
                encoded.column(j).astype(np.int64), data.matrix[:, j]
            )
        assert encoded.nbytes == sum(c.nbytes for c in encoded.columns)

    def test_encoded_matrix_is_cached_and_read_only(self):
        data, encoded = _encoded_of_rows([(1, 2), (3, 4)])
        assert data.encoded is encoded
        assert data.encoded_matrix() is encoded
        with pytest.raises(ValueError):
            encoded.column(0)[0] = 1

    def test_lazy_until_asked(self):
        data = preprocess(Relation.from_rows([(1, 2), (3, 4)]), True)
        assert data.encoded is None
        data.encoded_matrix()
        assert data.encoded is not None


# -- null and degenerate labels ------------------------------------------------


class TestNullAndDegenerateLabels:
    ROWS = [
        ("a", None, ""),
        ("a", None, "x"),
        ("b", "", ""),
        ("b", None, "x"),
        (None, "", None),
    ]

    @pytest.mark.parametrize("null_equals_null", [True, False])
    def test_nan_and_empty_string_parity(self, null_equals_null):
        """NULL/empty-string labels validate identically on all backends."""
        relation = Relation.from_rows(self.ROWS, ["a", "b", "c"])
        contexts = {
            name: ExecutionContext(
                relation, backend=name, null_equals_null=null_equals_null
            )
            for name in ("numpy", "python", "columnar")
        }
        from repro.fd import FD, attrset

        universe = attrset.universe(3)
        for lhs in range(universe + 1):
            for rhs in range(3):
                fd = FD(lhs & ~attrset.singleton(rhs), rhs)
                outcomes = {
                    name: context.fd_holds(fd)
                    for name, context in contexts.items()
                }
                assert len(set(outcomes.values())) == 1, (fd, outcomes)

    def test_empty_relation(self):
        data = preprocess(Relation.from_rows([], ["a", "b"]), True)
        encoded = data.encoded_matrix()
        assert encoded.num_rows == 0
        assert encoded.cardinalities == (0, 0)
        keys = encoded_group_keys(encoded, [0, 1])
        assert keys.num_rows == 0
        assert encoded_constant_on(encoded, keys, 1)

    def test_single_row_relation(self):
        data = preprocess(Relation.from_rows([("x", "y")]), True)
        encoded = data.encoded_matrix()
        keys = encoded_group_keys(encoded, [0])
        assert encoded_constant_on(encoded, keys, 1)
        assert encoded_witness(encoded, keys, 1) is None


# -- kernel equivalence --------------------------------------------------------


class TestKernelEquivalence:
    def test_agree_masks_match_matrix_kernel(self):
        relation = registry.make("fd-reduced-30", rows=200, seed=11)
        data = preprocess(relation, True)
        encoded = data.encoded_matrix()
        rows_a = list(range(150))
        rows_b = list(range(50, 200))
        assert agree_masks_from_encoded(encoded, rows_a, rows_b) == (
            data.agree_masks_bulk(rows_a, rows_b)
        )

    def test_agree_masks_beyond_64_attributes(self):
        """> 64 columns exercises the per-pair decode fallback."""
        rng = np.random.default_rng(5)
        rows = [tuple(rng.integers(0, 3, size=70)) for _ in range(20)]
        data, encoded = _encoded_of_rows(rows)
        rows_a = list(range(10))
        rows_b = list(range(10, 20))
        assert agree_masks_from_encoded(encoded, rows_a, rows_b) == (
            data.agree_masks_bulk(rows_a, rows_b)
        )

    def test_backend_agree_masks_entry_point(self):
        data = preprocess(registry.make("bridges", rows=80, seed=1), True)
        backend = get_backend("columnar")
        assert isinstance(backend, ColumnarBackend)
        assert backend.needs_encoded
        rows_a, rows_b = [0, 1, 2, 3], [4, 5, 6, 7]
        assert backend.agree_masks(data, rows_a, rows_b) == (
            data.agree_masks_bulk(rows_a, rows_b)
        )

    def test_witness_is_deterministic_and_violating(self):
        relation = registry.make("echocardiogram", rows=100, seed=3)
        data = preprocess(relation, True)
        encoded = data.encoded_matrix()
        numpy_backend = get_backend("numpy")
        columnar = get_backend("columnar")
        from repro.fd import attrset

        for lhs_bits in range(1, 2 ** min(4, data.num_columns)):
            columns = list(attrset.to_indices(lhs_bits))
            keys = encoded_group_keys(encoded, columns)
            for rhs in range(data.num_columns):
                if (lhs_bits >> rhs) & 1:
                    continue
                pair = encoded_witness(encoded, keys, rhs)
                reference = numpy_backend.witness(
                    data, numpy_backend.group_keys(data, lhs_bits), rhs
                )
                assert pair == columnar.witness(
                    data, columnar.group_keys(data, lhs_bits), rhs
                )
                assert (pair is None) == (reference is None)
                if pair is not None:
                    row_a, row_b = pair
                    agree = data.agree_mask(row_a, row_b)
                    assert lhs_bits & ~agree == 0
                    assert not (agree >> rhs) & 1


# -- cross-backend end-to-end sweep --------------------------------------------


DATASETS = (("echocardiogram", 90), ("bridges", 90), ("fd-reduced-30", 150))
ALGORITHMS = ("tane", "hyfd", "eulerfd")


class TestCrossBackendSweep:
    @pytest.mark.parametrize("dataset,rows", DATASETS)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("jobs", ["serial", "process:2"])
    def test_fd_sets_identical_across_backends(self, dataset, rows, algorithm, jobs):
        relation = registry.make(dataset, rows=rows, seed=7)
        results = {}
        for backend in ("numpy", "python", "columnar"):
            context = ExecutionContext(relation, backend=backend, jobs=jobs)
            with use_context(context):
                results[backend] = create(algorithm).discover(relation).fds
        assert results["numpy"] == results["python"]
        assert results["numpy"] == results["columnar"]


# -- mmap transport ------------------------------------------------------------


def _mmap_files():
    return set(
        glob.glob(os.path.join(tempfile.gettempdir(), f"{shm.MMAP_PREFIX}*"))
    )


class TestMmapTransport:
    def test_round_trip(self):
        _, encoded = _encoded_of_rows([(i % 5, i, "k") for i in range(100)])
        before = _mmap_files()
        handle, cleanup = publish_encoded(encoded)
        try:
            assert isinstance(handle, MmapEncodedRef)
            assert os.path.exists(handle.path)
            attached = resolve_encoded(handle)
            assert attached.cardinalities == encoded.cardinalities
            assert attached.num_rows == encoded.num_rows
            for j in range(encoded.num_columns):
                assert np.array_equal(attached.column(j), encoded.column(j))
                assert attached.column(j).dtype == encoded.column(j).dtype
        finally:
            cleanup()
        assert _mmap_files() == before

    def test_cleanup_is_idempotent(self):
        _, encoded = _encoded_of_rows([(1, 2), (3, 4)])
        handle, cleanup = publish_encoded(encoded)
        cleanup()
        cleanup()
        assert not os.path.exists(handle.path)

    def test_inline_fallback(self):
        _, encoded = _encoded_of_rows([(1, 2), (3, 4)])
        handle, cleanup = publish_encoded(encoded, use_mmap=False)
        assert isinstance(handle, InlineEncoded)
        assert resolve_encoded(handle) is encoded
        cleanup()

    def test_empty_relation_round_trip(self):
        """Zero rows must not try to mmap an empty file."""
        data = preprocess(Relation.from_rows([], ["a", "b"]), True)
        encoded = data.encoded_matrix()
        handle, cleanup = publish_encoded(encoded)
        try:
            attached = resolve_encoded(handle)
            assert attached.num_rows == 0
            assert attached.num_columns == 2
        finally:
            cleanup()

    def test_resolve_view_wraps_encoded_handles(self):
        data, encoded = _encoded_of_rows([(1, 2), (3, 4), (1, 4)])
        view = resolve_view(InlineEncoded(encoded))
        assert isinstance(view, EncodedView)
        assert view.num_rows == 3
        assert view.num_columns == 2
        assert view.encoded_matrix() is encoded
        # matrix handles still resolve to the historical MatrixView
        matrix_view = resolve_view(shm.InlineMatrix(data.matrix))
        assert matrix_view.num_rows == 3
        assert not isinstance(matrix_view, EncodedView)

    def test_no_leaked_mmap_files_after_pool_close(self, monkeypatch):
        monkeypatch.setattr(parallel, "MIN_PAIRS_PER_WORKER", 1)
        before = _mmap_files()
        data = preprocess(registry.make("fd-reduced-30", rows=200, seed=11), True)
        pool = get_pool("process:2")
        backend = get_backend("columnar")
        masks = parallel.agree_masks_sharded(
            pool, data, list(range(150)), list(range(50, 200)), backend=backend
        )
        assert masks == data.agree_masks_bulk(list(range(150)), list(range(50, 200)))
        close_all_pools()
        assert _mmap_files() - before == set()

    def test_mmap_metrics_rise_and_fall(self):
        from repro.obs import names
        from repro.obs.metrics import collecting_metrics

        _, encoded = _encoded_of_rows([(i, i % 3) for i in range(64)])
        with collecting_metrics() as registry_:
            _, cleanup = publish_encoded(encoded)
            assert registry_.gauges[names.MMAP_FILES] == 1.0
            assert registry_.gauges[names.MMAP_BYTES] >= encoded.nbytes
            cleanup()
            assert registry_.gauges[names.MMAP_FILES] == 0.0
            assert registry_.gauges[names.MMAP_BYTES] == 0.0
            cleanup()  # idempotent: a second call must not go negative
            assert registry_.gauges[names.MMAP_FILES] == 0.0


# -- store cost model ----------------------------------------------------------


class TestStoreCostModel:
    def test_label_width_defaults_to_int64(self):
        data = preprocess(Relation.from_rows([(1, 2), (3, 4)]), True)
        assert label_width_bytes(data) == ROW_REF_BYTES

    def test_label_width_follows_widest_encoded_column(self):
        rows = [(i % 3, i) for i in range(300)]
        data, encoded = _encoded_of_rows(rows)
        assert encoded.dtypes == ("uint8", "uint16")
        assert label_width_bytes(data) == 2

    def test_partition_cost_scales_with_row_ref_bytes(self):
        data = preprocess(
            Relation.from_rows([(1, 0), (1, 0), (2, 1), (2, 1)]), True
        )
        partition = data.stripped[0]
        wide = partition_cost_bytes(partition)
        narrow = partition_cost_bytes(partition, 1)
        assert wide is not None and narrow is not None
        assert wide - narrow == (ROW_REF_BYTES - 1) * partition.num_grouped_rows

    def test_partition_cost_none_for_foreign_objects(self):
        assert partition_cost_bytes(object(), 1) is None

    def test_columnar_context_charges_narrow_rows(self):
        relation = registry.make("fd-reduced-30", rows=120, seed=2)
        wide = ExecutionContext(relation, backend="numpy")
        narrow = ExecutionContext(relation, backend="columnar")
        assert wide.partitions.row_ref_bytes == ROW_REF_BYTES
        assert narrow.partitions.row_ref_bytes < ROW_REF_BYTES
        assert (
            narrow.partitions.resident_bytes < wide.partitions.resident_bytes
        )
