"""Tests for the negative and positive covers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import (
    FD,
    BitsetLhsIndex,
    NegativeCover,
    PositiveCover,
    attribute_frequency_priority,
    minimal_cover_from_fds,
)

# Attribute initials of the paper's patient schema: N=0, A=1, B=2, G=3, M=4.
N, A, B, G, M = range(5)


class TestNegativeCover:
    def test_requires_positive_width(self):
        with pytest.raises(ValueError):
            NegativeCover(0)

    def test_add_and_contains(self):
        cover = NegativeCover(5)
        assert cover.add(FD.of([A, B], M))
        assert FD.of([A, B], M) in cover
        assert len(cover) == 1

    def test_rejects_trivial(self):
        cover = NegativeCover(3)
        with pytest.raises(ValueError):
            cover.add(FD.of([0, 1], 1))

    def test_generalization_is_redundant(self):
        """Figure 4: BG -/-> N is discarded because MBG -/-> N exists."""
        cover = NegativeCover(5)
        cover.add(FD.of([M, B, G], N))
        assert not cover.add(FD.of([B, G], N))
        assert len(cover) == 1

    def test_specialization_evicts_generalization(self):
        cover = NegativeCover(5)
        cover.add(FD.of([B, G], N))
        assert cover.add(FD.of([M, B, G], N))
        assert len(cover) == 1
        assert FD.of([B, G], N) not in cover
        assert FD.of([M, B, G], N) in cover

    def test_duplicate_is_rejected(self):
        cover = NegativeCover(5)
        cover.add(FD.of([A], B))
        assert not cover.add(FD.of([A], B))

    def test_same_lhs_different_rhs_kept_separately(self):
        cover = NegativeCover(5)
        assert cover.add(FD.of([A], B))
        assert cover.add(FD.of([A], M))
        assert len(cover) == 2

    def test_covers_generalizations(self):
        cover = NegativeCover(5)
        cover.add(FD.of([A, B, G], M))
        assert cover.covers(FD.of([A, B], M))  # Lemma 1
        assert cover.covers(FD.of([A, B, G], M))
        assert not cover.covers(FD.of([A, B, M], N))

    def test_add_all_counts_growth(self):
        cover = NegativeCover(5)
        added = cover.add_all(
            [FD.of([A], B), FD.of([A], B), FD.of([A, G], B)]
        )
        assert added == 2  # duplicate skipped, specialization evicts
        assert len(cover) == 1

    def test_iteration_yields_fds(self):
        cover = NegativeCover(3)
        cover.add(FD.of([0], 1))
        cover.add(FD.of([1], 2))
        assert set(cover) == {FD.of([0], 1), FD.of([1], 2)}

    def test_paper_figure4_contents(self):
        """Alg. 2 on AMB, MBG, BG, AG -> N keeps exactly AMB, MBG, AG."""
        cover = NegativeCover(5)
        for lhs in ([A, M, B], [M, B, G], [B, G], [A, G]):
            cover.add(FD.of(lhs, N))
        assert set(cover) == {
            FD.of([A, M, B], N),
            FD.of([M, B, G], N),
            FD.of([A, G], N),
        }


class TestNegativeCoverAntichain:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 6) - 1),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=150)
    def test_stored_masks_form_antichain_of_maxima(self, raw):
        cover = NegativeCover(7)
        inserted: set[tuple[int, int]] = set()
        for lhs, rhs in raw:
            lhs &= ~(1 << rhs)  # keep non-trivial
            cover.add(FD(lhs, rhs))
            inserted.add((lhs, rhs))
        for rhs in range(7):
            stored = cover.lhs_masks(rhs)
            # Antichain: no stored mask contains another.
            for left in stored:
                for right in stored:
                    if left != right:
                        assert left & ~right != 0
            # Maxima: every stored mask was inserted, and every inserted
            # mask is covered by some stored one.
            originals = {lhs for lhs, r in inserted if r == rhs}
            assert set(stored) <= originals
            for lhs in originals:
                assert any(lhs & ~kept == 0 for kept in stored)


class TestPositiveCover:
    def test_seeded_with_most_general(self):
        cover = PositiveCover(3)
        assert len(cover) == 3
        assert FD(0, 0) in cover and FD(0, 2) in cover

    def test_unseeded(self):
        cover = PositiveCover(3, seed_most_general=False)
        assert len(cover) == 0

    def test_add_blocked_by_generalization(self):
        cover = PositiveCover(4, seed_most_general=False)
        cover.add(FD.of([0], 3))
        assert not cover.add(FD.of([0, 1], 3))
        assert len(cover) == 1

    def test_add_evicts_specializations(self):
        cover = PositiveCover(4, seed_most_general=False)
        cover.add(FD.of([0, 1], 3))
        cover.add(FD.of([0, 2], 3))
        assert cover.add(FD.of([0], 3))
        assert set(cover) == {FD.of([0], 3)}

    def test_add_minimal_skips_eviction_check(self):
        cover = PositiveCover(4, seed_most_general=False)
        assert cover.add_minimal(FD.of([0], 3))
        assert not cover.add_minimal(FD.of([0], 3))
        assert len(cover) == 1

    def test_remove(self):
        cover = PositiveCover(3)
        assert cover.remove(FD(0, 1))
        assert not cover.remove(FD(0, 1))
        assert len(cover) == 2

    def test_find_generalizations(self):
        cover = PositiveCover(4, seed_most_general=False)
        cover.add(FD.of([0], 3))
        cover.add(FD.of([1], 3))
        cover.add(FD.of([2], 1))
        generals = cover.find_generalizations(FD.of([0, 1, 2], 3))
        assert generals == [0b001, 0b010]

    def test_rejects_trivial(self):
        cover = PositiveCover(3, seed_most_general=False)
        with pytest.raises(ValueError):
            cover.add(FD.of([1], 1))

    def test_to_fd_set_snapshot(self):
        cover = PositiveCover(2)
        snapshot = cover.to_fd_set()
        cover.remove(FD(0, 0))
        assert FD(0, 0) in snapshot

    def test_custom_index_factory(self):
        cover = PositiveCover(3, index_factory=BitsetLhsIndex)
        assert len(cover) == 3
        # Adding a specialization of the seeded {} -> 1 is correctly blocked.
        assert not cover.add(FD.of([0], 1))
        cover.remove(FD(0, 1))
        assert cover.add(FD.of([0], 1))
        assert FD.of([0], 1) in cover


class TestMinimalCoverFromFds:
    def test_drops_trivial(self):
        fds = [FD.of([0, 1], 1), FD.of([0], 2)]
        assert minimal_cover_from_fds(fds, 3) == {FD.of([0], 2)}

    def test_drops_dominated(self):
        fds = [FD.of([0], 2), FD.of([0, 1], 2)]
        assert minimal_cover_from_fds(fds, 3) == {FD.of([0], 2)}

    def test_keeps_incomparable(self):
        fds = [FD.of([0], 2), FD.of([1], 2)]
        assert minimal_cover_from_fds(fds, 3) == set(fds)

    def test_empty(self):
        assert minimal_cover_from_fds([], 3) == set()


class TestAttributeFrequencyPriority:
    def test_rare_attributes_ranked_first(self):
        non_fds = [FD.of([0, 1], 2), FD.of([0], 2), FD.of([0, 1], 3)]
        priority = attribute_frequency_priority(non_fds, 4)
        # Attribute 0 appears 3x, 1 appears 2x, 2/3 never.
        assert priority[2] < priority[0]
        assert priority[3] < priority[1] < priority[0]

    def test_ties_break_by_index(self):
        priority = attribute_frequency_priority([], 3)
        assert list(priority) == [0, 1, 2]
