"""Exhaustive FD discovery — the ground-truth oracle for small inputs.

Checks every candidate ``X -> A`` by hashing rows on their ``X`` labels.
Exponential in the number of attributes (``O(2^m * m * n)``), so it exists
purely to validate the real algorithms on small relations in the test
suite; it refuses schemas wide enough to be a mistake.
"""

from __future__ import annotations

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..fd import FD, attrset
from ..relation.preprocess import preprocess
from ..relation.relation import Relation
from ..relation.validate import fd_holds
from .base import register


@register("bruteforce")
class BruteForce:
    """Candidate-by-candidate verification over the whole lattice."""

    name = "BruteForce"
    kind = "exact"

    def __init__(self, max_columns: int = 14, null_equals_null: bool = True) -> None:
        self.max_columns = max_columns
        self.null_equals_null = null_equals_null

    def discover(self, relation: Relation) -> DiscoveryResult:
        if relation.num_columns > self.max_columns:
            raise ValueError(
                f"BruteForce is an oracle for <= {self.max_columns} columns; "
                f"got {relation.num_columns}"
            )
        watch = Stopwatch()
        data = preprocess(relation, self.null_equals_null)
        num_attributes = data.num_columns
        fds: list[FD] = []
        checks = 0
        for rhs in range(num_attributes):
            others = attrset.universe(num_attributes) & ~attrset.singleton(rhs)
            valid_lhss: list[int] = []
            # Ascending cardinality so minimality reduces to a subset check
            # against already-accepted LHSs.
            candidates = sorted(attrset.all_subsets(others), key=attrset.size)
            for lhs in candidates:
                if any(attrset.is_subset(seen, lhs) for seen in valid_lhss):
                    continue
                checks += 1
                if fd_holds(data, FD(lhs, rhs)):
                    valid_lhss.append(lhs)
            fds.extend(FD(lhs, rhs) for lhs in valid_lhss)
        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={"validations": checks},
        )
