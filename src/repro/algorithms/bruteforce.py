"""Exhaustive FD discovery — the ground-truth oracle for small inputs.

Checks every candidate ``X -> A`` level by level through the execution
context's batched validator: all non-dominated LHSs of one size share a
``validate_many`` call, so group keys are folded once per LHS and the
minimality pruning stays exact (two LHSs of equal size are never in a
subset relation, so a level cannot dominate itself).  Exponential in the
number of attributes (``O(2^m * m * n)``), so it exists purely to
validate the real algorithms on small relations in the test suite; it
refuses schemas wide enough to be a mistake.
"""

from __future__ import annotations

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..fd import FD, attrset
from ..relation.relation import Relation
from .base import execution_context, register


@register("bruteforce")
class BruteForce:
    """Candidate-by-candidate verification over the whole lattice."""

    name = "BruteForce"
    kind = "exact"

    def __init__(self, max_columns: int = 14, null_equals_null: bool = True) -> None:
        self.max_columns = max_columns
        self.null_equals_null = null_equals_null

    def discover(self, relation: Relation) -> DiscoveryResult:
        if relation.num_columns > self.max_columns:
            raise ValueError(
                f"BruteForce is an oracle for <= {self.max_columns} columns; "
                f"got {relation.num_columns}"
            )
        watch = Stopwatch()
        context = execution_context(relation, self.null_equals_null)
        num_attributes = context.num_attributes
        fds: list[FD] = []
        checks = 0
        for rhs in range(num_attributes):
            others = attrset.universe(num_attributes) & ~attrset.singleton(rhs)
            valid_lhss: list[int] = []
            # Ascending cardinality so minimality reduces to a subset check
            # against already-accepted LHSs; one batched validation per
            # lattice level.
            by_size: dict[int, list[int]] = {}
            for lhs in attrset.all_subsets(others):
                by_size.setdefault(attrset.size(lhs), []).append(lhs)
            for size in sorted(by_size):
                batch = [
                    lhs
                    for lhs in sorted(by_size[size])
                    if not any(
                        attrset.is_subset(seen, lhs) for seen in valid_lhss
                    )
                ]
                if not batch:
                    continue
                checks += len(batch)
                outcomes = context.validate_many(
                    [FD(lhs, rhs) for lhs in batch]
                )
                valid_lhss.extend(
                    outcome.fd.lhs for outcome in outcomes if outcome.holds
                )
            fds.extend(FD(lhs, rhs) for lhs in valid_lhss)
        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={"validations": checks},
        )
