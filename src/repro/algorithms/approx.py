"""Discovery of approximate dependencies: minimal FDs with g3 <= ε.

Kruse & Naumann [18] (and Tane's approximate mode before them) relax the
FD definition itself: ``X -> A`` is an *approximate dependency* at error
threshold ε when deleting at most an ε-fraction of tuples makes it exact
(the g3 measure of :mod:`repro.metrics.error`).  This is orthogonal to
the paper's notion of approximate *discovery* — here the dependencies are
soft, the search is exhaustive — and is exactly what Section II-C
contrasts EulerFD against.

g3 is monotone non-increasing in the LHS, so ε-validity is upward-closed
in the lattice and the minimal ε-valid FDs are found level-wise with
subset pruning, like Tane but with the error-tolerant validity test.

At ε = 0 the output coincides with exact discovery (property-tested
against the brute-force oracle).
"""

from __future__ import annotations

from itertools import combinations

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..fd import FD, attrset
from ..metrics.error import violation_profile
from ..relation.preprocess import PreprocessedRelation
from ..relation.relation import Relation
from .base import execution_context


class ApproxFDs:
    """Level-wise discovery of minimal ε-approximate dependencies."""

    name = "ApproxFDs"
    kind = "approximate"

    def __init__(
        self,
        epsilon: float = 0.01,
        null_equals_null: bool = True,
        max_columns: int = 20,
    ) -> None:
        if not 0.0 <= epsilon < 1.0:
            raise ValueError(f"epsilon must be in [0, 1), got {epsilon}")
        self.epsilon = epsilon
        self.null_equals_null = null_equals_null
        self.max_columns = max_columns

    def discover(self, relation: Relation) -> DiscoveryResult:
        if relation.num_columns > self.max_columns:
            raise ValueError(
                f"ApproxFDs enumerates the lattice per RHS; "
                f"{relation.num_columns} columns exceeds the "
                f"max_columns={self.max_columns} safety bound"
            )
        watch = Stopwatch()
        data = execution_context(relation, self.null_equals_null).data
        num_attributes = data.num_columns
        fds: list[FD] = []
        checks = 0
        for rhs in range(num_attributes):
            found, performed = self._minimal_for_rhs(data, rhs, num_attributes)
            fds.extend(FD(lhs, rhs) for lhs in found)
            checks += performed
        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={"validations": checks, "epsilon": self.epsilon},
        )

    def _minimal_for_rhs(
        self, data: PreprocessedRelation, rhs: int, num_attributes: int
    ) -> tuple[list[int], int]:
        others = [a for a in range(num_attributes) if a != rhs]
        minimal: list[int] = []
        checks = 0
        if self._eps_valid(data, attrset.EMPTY, rhs):
            return [attrset.EMPTY], 1
        checks += 1
        for level in range(1, len(others) + 1):
            for combo in combinations(others, level):
                lhs = attrset.from_indices(combo)
                if any(found & ~lhs == 0 for found in minimal):
                    continue  # dominated by a smaller ε-valid LHS
                checks += 1
                if self._eps_valid(data, lhs, rhs):
                    minimal.append(lhs)
            if minimal and level >= max(
                attrset.size(found) for found in minimal
            ) + num_attributes:
                break  # unreachable in practice; defensive bound
        return minimal, checks

    def _eps_valid(self, data: PreprocessedRelation, lhs: int, rhs: int) -> bool:
        return violation_profile(data, FD(lhs, rhs)).g3 <= self.epsilon


def discover_approximate_fds(
    relation: Relation, epsilon: float = 0.01
) -> DiscoveryResult:
    """Convenience wrapper: minimal FDs violated by at most ε of the tuples."""
    return ApproxFDs(epsilon=epsilon).discover(relation)
