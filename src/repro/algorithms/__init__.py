"""FD discovery algorithms: EulerFD's baselines and the oracle.

Importing this package registers every algorithm with the registry in
:mod:`repro.algorithms.base`; ``create("tane")`` etc. then builds default
instances.  EulerFD itself lives in :mod:`repro.core` but is registered
here too so callers address all algorithms uniformly.
"""

from ..core.eulerfd import EulerFD
from .aidfd import AidFd
from .approx import ApproxFDs, discover_approximate_fds
from .base import FDAlgorithm, available_algorithms, create, register
from .bruteforce import BruteForce
from .depminer import DepMiner
from .dfd import Dfd
from .fastfds import FastFDs
from .fdep import Fdep
from .hyfd import HyFD
from .tane import Tane, TaneBudgetExceeded
from .ucc import UccResult, discover_uccs

register("eulerfd")(EulerFD)

__all__ = [
    "AidFd",
    "ApproxFDs",
    "BruteForce",
    "DepMiner",
    "Dfd",
    "EulerFD",
    "FDAlgorithm",
    "FastFDs",
    "Fdep",
    "HyFD",
    "Tane",
    "TaneBudgetExceeded",
    "UccResult",
    "available_algorithms",
    "create",
    "discover_approximate_fds",
    "discover_uccs",
    "register",
]
