"""FastFDs — difference-set based exact discovery [36].

FastFDs is the depth-first sibling of Dep-Miner: instead of a levelwise
transversal computation it enumerates minimal covers of the *difference
sets* (complements of agree sets) with a greedy DFS.  At every node the
remaining attributes are re-ordered by how many still-uncovered
difference sets they appear in (ties by attribute index, as in the
paper), the search branches on that ordering, and a cover is emitted only
when every chosen attribute is critical — which is exactly minimality.
"""

from __future__ import annotations

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..fd import FD, attrset
from ..relation.relation import Relation
from .base import execution_context, register
from .depminer import maximal_agree_sets
from .fdep import compute_agree_masks


def minimal_covers_dfs(edges: list[int], vertices: int) -> list[int]:
    """Minimal hitting sets via FastFDs' ordered depth-first search."""
    if not edges:
        return [0]
    if any(edge == 0 for edge in edges):
        return []
    covers: list[int] = []

    def order(candidates: int, uncovered: list[int]) -> list[int]:
        counts: dict[int, int] = {}
        for edge in uncovered:
            remaining = edge & candidates
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                vertex = bit.bit_length() - 1
                counts[vertex] = counts.get(vertex, 0) + 1
        return sorted(counts, key=lambda v: (-counts[v], v))

    def is_minimal(cover: int) -> bool:
        remaining = cover
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            if not any(edge & cover == bit for edge in edges):
                return False  # this attribute covers nothing exclusively
        return True

    def search(chosen: int, candidates: int, uncovered: list[int]) -> None:
        if not uncovered:
            if is_minimal(chosen):
                covers.append(chosen)
            return
        ordered = order(candidates, uncovered)
        if not ordered:
            return  # uncovered edges left but no usable attribute
        for position, vertex in enumerate(ordered):
            bit = attrset.singleton(vertex)
            still = [edge for edge in uncovered if not edge & bit]
            # Attributes are consumed in order: later branches may not
            # reuse earlier ones, which makes the enumeration non-redundant.
            remaining_candidates = attrset.from_indices(ordered[position + 1 :])
            search(chosen | bit, remaining_candidates, still)

    search(0, vertices, list(edges))
    deduped: list[int] = []
    for cover in sorted(covers, key=attrset.size):
        if not any(kept & ~cover == 0 for kept in deduped):
            deduped.append(cover)
    return deduped


@register("fastfds")
class FastFDs:
    """Exact discovery via DFS over difference-set covers."""

    name = "FastFDs"
    kind = "exact"

    def __init__(self, null_equals_null: bool = True) -> None:
        self.null_equals_null = null_equals_null

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        data = execution_context(relation, self.null_equals_null).data
        num_attributes = data.num_columns
        universe = attrset.universe(num_attributes)
        # sorted(): canonical agree-set order into the difference sets (RPR107)
        agree_masks = sorted(compute_agree_masks(data))
        fds: list[FD] = []
        difference_sets = 0
        for rhs in range(num_attributes):
            others = universe & ~attrset.singleton(rhs)
            maximal = maximal_agree_sets(agree_masks, rhs)
            edges = [others & ~mask for mask in maximal]
            difference_sets += len(edges)
            for lhs in minimal_covers_dfs(edges, others):
                fds.append(FD(lhs, rhs))
        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={
                "distinct_agree_sets": len(agree_masks),
                "difference_sets": difference_sets,
            },
        )
