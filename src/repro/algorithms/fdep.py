"""Fdep — dependency induction by exhaustive pairwise comparison [11].

Fdep compares *every* pair of tuples, collects the complete negative
cover, and inverts it into the positive cover.  It scales well with the
number of attributes (the lattice is never enumerated) but quadratically
with the number of tuples — exactly the trade-off Table III shows, where
Fdep wins on narrow-and-short relations and times out on lineitem/weather.

Our implementation vectorizes the pairwise agree-set computation with
numpy (compare one label row against all following rows, pack the
equality bits) and reuses the shared negative-cover + inversion machinery,
so the induction semantics are byte-identical to EulerFD's.
"""

from __future__ import annotations

import numpy as np

from ..core.inversion import Inverter
from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..engine.parallel import WorkerPool, distinct_agree_masks_sharded
from ..fd import FD, NegativeCover, attrset
from ..obs import span
from ..relation.preprocess import PreprocessedRelation
from ..relation.relation import Relation
from .base import execution_context, register


@register("fdep")
class Fdep:
    """Exact FD induction from all-pairs comparisons."""

    name = "Fdep"
    kind = "exact"

    def __init__(self, null_equals_null: bool = True) -> None:
        self.null_equals_null = null_equals_null

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        context = execution_context(relation, self.null_equals_null)
        data = context.data
        num_attributes = data.num_columns
        with span("agree_sets"):
            # sorted(): canonicalize the agree-set order so negative-cover
            # insertion never depends on set iteration order (RPR107).
            agree_masks = sorted(compute_agree_masks(data, pool=context.pool))
        ncover = NegativeCover(num_attributes)
        pending: list[FD] = []
        universe = attrset.universe(num_attributes)
        with span("ncover"):
            for agree in agree_masks:
                remaining = universe & ~agree
                while remaining:
                    bit = remaining & -remaining
                    remaining ^= bit
                    non_fd = FD(agree, bit.bit_length() - 1)
                    if ncover.add(non_fd):
                        pending.append(non_fd)
        inverter = Inverter(num_attributes)
        with span("inversion"):
            inversion = inverter.process(pending)
        pairs = relation.num_rows * (relation.num_rows - 1) // 2
        return make_result(
            inverter.pcover,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={
                "pairs_compared": pairs,
                "distinct_agree_sets": len(agree_masks),
                "ncover_size": len(ncover),
                "candidates_added": inversion.candidates_added,
            },
        )


def compute_agree_masks(
    data: PreprocessedRelation, pool: WorkerPool | None = None
) -> set[int]:
    """Distinct agree sets over all tuple pairs, as bitmasks.

    For each anchor row the label matrix is compared against every later
    row in one vectorized operation; the resulting boolean block is packed
    into little-endian bytes so each pair's agree set materializes as a
    Python int without a per-attribute loop.

    With a parallel ``pool``, anchor ranges fan out across the workers
    and per-range results merge in range order; the merged set receives
    new elements in exactly the serial scan's insertion sequence, so the
    sweep is byte-identical at any worker count.

    The *full* agree set (mask of all attributes) is excluded: duplicate
    tuples violate nothing.
    """
    matrix = data.matrix
    num_rows, num_attributes = matrix.shape
    universe = attrset.universe(num_attributes)
    if pool is not None and not pool.is_serial:
        masks = distinct_agree_masks_sharded(pool, data)
    else:
        masks = set()
        for anchor in range(num_rows - 1):
            equal = matrix[anchor + 1 :] == matrix[anchor]
            packed = np.packbits(equal, axis=1, bitorder="little")
            row_bytes = packed.tobytes()
            width = packed.shape[1]
            for offset in range(0, len(row_bytes), width):
                masks.add(
                    int.from_bytes(row_bytes[offset : offset + width], "little")
                )
    masks.discard(universe)
    return masks
