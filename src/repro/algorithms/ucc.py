"""Minimal unique column combinations (UCCs) — key discovery.

A *unique column combination* is an attribute set on which no two tuples
agree; minimal UCCs are the candidate keys of the instance.  UCC
discovery is the sibling problem of FD discovery (and the first half of
the paper's DMS workflow needs keys to decide what uniquely identifies a
record), and it falls out of the same machinery: an attribute set is a
UCC exactly when it intersects the *complement* of every maximal agree
set, so the minimal UCCs are the minimal hitting sets of those
complements.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import Stopwatch
from ..fd import attrset
from ..relation.relation import Relation
from .base import execution_context
from .depminer import minimal_transversals_levelwise
from .fdep import compute_agree_masks


@dataclass(frozen=True)
class UccResult:
    """Minimal unique column combinations of one relation."""

    uccs: frozenset[int]
    relation_name: str
    num_rows: int
    num_columns: int
    column_names: tuple[str, ...]
    runtime_seconds: float

    def __len__(self) -> int:
        return len(self.uccs)

    def __iter__(self):
        return iter(sorted(self.uccs))

    def format(self) -> list[str]:
        return [
            attrset.format_mask(mask, self.column_names) for mask in sorted(self.uccs)
        ]


def discover_uccs(relation: Relation, null_equals_null: bool = True) -> UccResult:
    """Find all minimal unique column combinations of ``relation``.

    Degenerate cases follow key semantics: a relation with fewer than two
    rows is trivially unique on the empty set; a relation with duplicate
    tuples has no UCC at all.
    """
    watch = Stopwatch()
    data = execution_context(relation, null_equals_null).data
    num_attributes = data.num_columns
    universe = attrset.universe(num_attributes)
    if relation.num_rows <= 1:
        masks: list[int] = [attrset.EMPTY]
    else:
        agree_masks = compute_agree_masks(data)
        has_duplicates = any(
            len(cluster) > 1
            for cluster in _duplicate_clusters(data)
        )
        if has_duplicates:
            masks = []
        else:
            maximal = _maximal(agree_masks)
            edges = [universe & ~mask for mask in maximal]
            masks = minimal_transversals_levelwise(edges, universe)
    return UccResult(
        uccs=frozenset(masks),
        relation_name=relation.name,
        num_rows=relation.num_rows,
        num_columns=relation.num_columns,
        column_names=relation.column_names,
        runtime_seconds=watch.elapsed(),
    )


def _maximal(agree_masks: set[int]) -> list[int]:
    ordered = sorted(agree_masks, key=lambda mask: -mask.bit_count())
    maximal: list[int] = []
    for mask in ordered:
        if not any(mask & ~kept == 0 for kept in maximal):
            maximal.append(mask)
    return maximal


def _duplicate_clusters(data):
    """Groups of fully identical rows."""
    groups: dict[bytes, list[int]] = {}
    for row in range(data.num_rows):
        key = data.matrix[row].tobytes()
        groups.setdefault(key, []).append(row)
    return [rows for rows in groups.values() if len(rows) > 1]
