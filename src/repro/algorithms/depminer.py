"""Dep-Miner — agree-set based exact discovery [22].

Dep-Miner computes the *agree sets* of all tuple pairs, keeps per RHS
attribute the maximal agree sets excluding it, and derives the minimal
FDs as the minimal transversals (hitting sets) of the complements: a LHS
is valid for ``A`` exactly when it intersects the complement of every
maximal agree set that excludes ``A`` — otherwise the LHS sits inside
some agree set whose tuple pair violates it.

The transversals are computed levelwise, as in the original algorithm:
candidates of size *k* that fail to hit every complement are expanded by
the attributes behind their highest member (ordered enumeration, so no
candidate is generated twice).

Difference- and agree-set algorithms pay the same O(n²) pair scan as
Fdep but a different induction cost — the reason Table III's taxonomy
calls them "moderately scalable in both dimensions".
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..fd import FD, attrset
from ..relation.relation import Relation
from .base import execution_context, register
from .fdep import compute_agree_masks


def maximal_agree_sets(agree_masks: Iterable[int], excluding: int) -> list[int]:
    """The maximal agree sets (by set inclusion) not containing ``excluding``.

    The size-descending scan breaks ties on the mask value so the
    output order is canonical regardless of how ``agree_masks`` was
    produced (RPR107: no set-iteration order may escape).
    """
    relevant = sorted(
        (mask for mask in agree_masks if not attrset.contains(mask, excluding)),
        key=lambda mask: (-mask.bit_count(), mask),
    )
    maximal: list[int] = []
    for mask in relevant:
        if not any(mask & ~kept == 0 for kept in maximal):
            maximal.append(mask)
    return maximal


def minimal_transversals_levelwise(edges: list[int], vertices: int) -> list[int]:
    """Minimal hitting sets of ``edges`` over the ``vertices`` mask.

    Levelwise enumeration: grow candidate vertex sets in canonical order,
    emit a candidate the moment it hits every edge (by construction the
    first time any of its subsets does, hence minimal), and expand only
    candidates that still miss an edge.
    """
    if not edges:
        return [0]
    if any(edge == 0 for edge in edges):
        return []  # an unhittable (empty) edge: no transversal exists
    vertex_list = list(attrset.to_indices(vertices))
    transversals: list[int] = []
    # (candidate mask, index of the first uncovered edge) frontier.
    frontier: list[int] = [0]
    while frontier:
        next_frontier: list[int] = []
        for candidate in frontier:
            uncovered = [edge for edge in edges if edge & candidate == 0]
            if not uncovered:
                if not any(
                    known & ~candidate == 0 for known in transversals
                ):
                    transversals.append(candidate)
                continue
            # Expand only with vertices beyond the candidate's highest
            # member that appear in some uncovered edge.
            floor = candidate.bit_length()
            expandable = 0
            for edge in uncovered:
                expandable |= edge
            for vertex in vertex_list:
                if vertex < floor:
                    continue
                bit = attrset.singleton(vertex)
                if expandable & bit:
                    next_frontier.append(candidate | bit)
        frontier = next_frontier
    return transversals


@register("depminer")
class DepMiner:
    """Exact discovery via maximal agree sets and minimal transversals."""

    name = "Dep-Miner"
    kind = "exact"

    def __init__(self, null_equals_null: bool = True) -> None:
        self.null_equals_null = null_equals_null

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        data = execution_context(relation, self.null_equals_null).data
        num_attributes = data.num_columns
        universe = attrset.universe(num_attributes)
        # sorted(): canonical agree-set order into the hypergraph (RPR107)
        agree_masks = sorted(compute_agree_masks(data))
        fds: list[FD] = []
        hypergraph_edges = 0
        for rhs in range(num_attributes):
            others = universe & ~attrset.singleton(rhs)
            maximal = maximal_agree_sets(agree_masks, rhs)
            edges = [others & ~mask for mask in maximal]
            hypergraph_edges += len(edges)
            for lhs in minimal_transversals_levelwise(edges, others):
                fds.append(FD(lhs, rhs))
        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={
                "distinct_agree_sets": len(agree_masks),
                "hypergraph_edges": hypergraph_edges,
            },
        )
