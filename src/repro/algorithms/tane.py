"""Tane — level-wise lattice traversal with stripped partitions [14].

The representative exact lattice-traversal baseline.  Candidate LHSs are
visited level by level; validity of ``X\\{A} -> A`` is decided by comparing
equivalence-class counts of the stripped partitions ``π(X\\{A})`` and
``π(X)`` (Definition 7 — the class counts of the corresponding *full*
partitions are recovered from the stripped form).  The classic RHS⁺
candidate sets (``C+``) provide minimality pruning, and the key-pruning
rule removes superkeys from the lattice while emitting their remaining
dependencies.

Every partition is obtained through the execution context's
:class:`~repro.engine.store.PartitionStore`: level ``l`` partitions are
derived by partition product from their cached level ``l-1`` parents,
the store's LRU bounds resident memory (standing in for the explicit
retention bookkeeping Tane used to carry), and a store shared across
runs — one per dataset in the benchmark harness — lets later algorithms
and repeats reuse the lattice prefix.  The lattice-width budget
reproduces the paper's 32 GB memory limit on wide relations (Table III)
as a configurable ``max_level``/``max_level_width``.
"""

from __future__ import annotations

from itertools import combinations

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..engine import PartitionStore
from ..fd import FD, attrset
from ..obs import counter, span
from ..obs.names import TANE_VALIDATIONS
from ..relation.relation import Relation
from .base import execution_context, register


class TaneBudgetExceeded(RuntimeError):
    """Raised when the lattice grows beyond the configured budget."""


@register("tane")
class Tane:
    """Exact level-wise FD discovery."""

    name = "Tane"
    kind = "exact"

    def __init__(
        self,
        null_equals_null: bool = True,
        max_level: int | None = None,
        max_level_width: int | None = None,
    ) -> None:
        self.null_equals_null = null_equals_null
        self.max_level = max_level
        self.max_level_width = max_level_width

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        context = execution_context(relation, self.null_equals_null)
        store = context.partitions
        num_attributes = context.num_attributes
        universe = attrset.universe(num_attributes)
        fds: list[FD] = []

        cplus: dict[int, int] = {attrset.EMPTY: universe}
        level: list[int] = [attrset.singleton(a) for a in range(num_attributes)]
        level_number = 1
        validations = 0

        while level:
            if self.max_level is not None and level_number > self.max_level:
                raise TaneBudgetExceeded(
                    f"lattice level {level_number} exceeds max_level="
                    f"{self.max_level}"
                )
            if (
                self.max_level_width is not None
                and len(level) > self.max_level_width
            ):
                raise TaneBudgetExceeded(
                    f"lattice level {level_number} holds {len(level)} nodes, "
                    f"exceeding max_level_width={self.max_level_width}"
                )
            with span("level", level=level_number, width=len(level)):
                level_validations = 0
                # -- COMPUTE_DEPENDENCIES -------------------------------
                level_cplus: dict[int, int] = {}
                for lhs in level:
                    candidates = universe
                    for subset in attrset.subsets_one_smaller(lhs):
                        candidates &= cplus.get(subset, 0)
                    level_cplus[lhs] = candidates
                for lhs in level:
                    candidates = level_cplus[lhs] & lhs
                    remaining = candidates
                    while remaining:
                        bit = remaining & -remaining
                        remaining ^= bit
                        rhs = bit.bit_length() - 1
                        generalization = lhs ^ bit
                        level_validations += 1
                        if (
                            store.get(generalization).num_classes_full
                            == store.get(lhs).num_classes_full
                        ):
                            fds.append(FD(generalization, rhs))
                            level_cplus[lhs] &= ~bit
                            level_cplus[lhs] &= lhs  # drop all of R \ X
                # -- PRUNE ----------------------------------------------
                pruned: list[int] = []
                for lhs in level:
                    if level_cplus[lhs] == 0:
                        continue
                    if store.get(lhs).is_superkey():
                        # A superkey determines every attribute; emit the
                        # minimal dependencies and drop the node (supersets
                        # of a superkey can never carry a minimal FD).
                        remaining = level_cplus[lhs] & ~lhs
                        while remaining:
                            bit = remaining & -remaining
                            remaining ^= bit
                            rhs = bit.bit_length() - 1
                            level_validations += 1
                            if self._key_fd_is_minimal(lhs, rhs, store):
                                fds.append(FD(lhs, rhs))
                        continue
                    pruned.append(lhs)
                # -- GENERATE_NEXT_LEVEL --------------------------------
                level = self._next_level(pruned, store, self.max_level_width)
                cplus = level_cplus
                level_number += 1
                validations += level_validations
                counter(TANE_VALIDATIONS, level_validations)

        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={"validations": validations, "levels": level_number - 1},
        )

    @staticmethod
    def _key_fd_is_minimal(lhs: int, rhs: int, store: PartitionStore) -> bool:
        """Direct minimality test for the key-pruning output rule.

        The paper's original rule intersects RHS⁺ sets of sibling lattice
        nodes which may never have been generated (their sub-lattice was
        key-pruned away earlier); treating those as empty silently drops
        minimal FDs.  ``X -> A`` with superkey ``X`` is minimal iff no
        immediate generalization ``X \\ {B} -> A`` holds — validity is
        monotone in the LHS — and each check compares ``π(X \\ {B})``
        with the store-derived ``π((X \\ {B}) ∪ {A})`` (a product with
        the cached singleton ``π(A)`` on a cold cache).
        """
        rhs_bit = attrset.singleton(rhs)
        remaining = lhs
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            generalization = lhs ^ bit
            base = store.get(generalization)
            joint = store.get(generalization | rhs_bit)
            if joint.num_classes_full == base.num_classes_full:
                return False
        return True

    @staticmethod
    def _next_level(
        level: list[int],
        store: PartitionStore,
        max_width: int | None,
    ) -> list[int]:
        """Prefix-block join: combine nodes differing in their last attribute.

        The width budget is enforced *while generating*, before partition
        products are materialized — a level that would blow the budget
        must not first allocate millions of partitions (this is the "ML"
        the paper reports for Tane on wide schemas).  Surviving
        candidates are primed into the partition store, whose derivation
        finds both just-visited parents cached and multiplies them.
        """
        level_set = set(level)
        blocks: dict[int, list[int]] = {}
        for lhs in level:
            highest = attrset.highest_bit_mask(lhs)
            blocks.setdefault(lhs ^ highest, []).append(lhs)
        candidates: list[int] = []
        for members in blocks.values():
            members.sort()
            for left, right in combinations(members, 2):
                candidate = left | right
                if any(
                    subset not in level_set
                    for subset in attrset.subsets_one_smaller(candidate)
                ):
                    continue
                candidates.append(candidate)
                if max_width is not None and len(candidates) > max_width:
                    raise TaneBudgetExceeded(
                        f"next lattice level exceeds max_level_width="
                        f"{max_width} during generation"
                    )
        candidates.sort()
        for candidate in candidates:
            store.get(candidate)
        return candidates
