"""DFD — randomized depth-first lattice traversal [1].

DFD (Abedjan, Schulze, Naumann, CIKM 2014) explores each RHS attribute's
LHS lattice with randomized walks instead of Tane's level-wise sweep.
Nodes are classified as *dependencies* or *non-dependencies*; a walk that
starts on a dependency descends through dependency children until it
reaches a **minimal dependency**, a walk that starts on a non-dependency
ascends through non-dependency parents until it reaches a **maximal
non-dependency**.  Two pruning indexes — the minimal dependencies and the
maximal non-dependencies found so far — answer most classification
queries without touching the data (Lemma 1 in both directions).

When a walk finishes, the unexplored *holes* are re-seeded: any minimal
dependency still missing must intersect the complement of every known
maximal non-dependency, so the new seeds are the minimal hitting sets of
those complements, minus nodes the indexes already classify.  No seeds
left ⇒ the minimal-dependency index is complete — each walk records at
least one new lattice node, so termination is guaranteed.

Validity checks use the vectorized group-key validation with an
LHS-level cache; the walk order is driven by a seeded RNG, so runs are
deterministic yet follow random-walk exploration.
"""

from __future__ import annotations

import random

from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..engine import ExecutionContext
from ..fd import FD, attrset
from ..fd.lhs_index import BitsetLhsIndex
from ..relation.relation import Relation
from .base import execution_context, register
from .depminer import minimal_transversals_levelwise


@register("dfd")
class Dfd:
    """Exact discovery via per-RHS randomized lattice walks."""

    name = "DFD"
    kind = "exact"

    def __init__(self, seed: int = 0, null_equals_null: bool = True) -> None:
        self.seed = seed
        self.null_equals_null = null_equals_null

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        context = execution_context(relation, self.null_equals_null)
        num_attributes = context.num_attributes
        rng = random.Random(self.seed)
        fds: list[FD] = []
        validations = 0
        for rhs in range(num_attributes):
            walker = _LatticeWalker(context, rhs, num_attributes, rng)
            fds.extend(FD(lhs, rhs) for lhs in walker.minimal_dependencies())
            validations += walker.validations
        return make_result(
            fds,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={"validations": validations},
        )


class _LatticeWalker:
    """Randomized walks over one RHS attribute's LHS lattice."""

    def __init__(
        self,
        context: ExecutionContext,
        rhs: int,
        num_attributes: int,
        rng: random.Random,
    ) -> None:
        self.context = context
        self.rhs = rhs
        self.universe = attrset.universe(num_attributes) & ~attrset.singleton(rhs)
        self.rng = rng
        self.min_deps = BitsetLhsIndex()
        self.max_non_deps = BitsetLhsIndex()
        self.validations = 0
        self._cache: dict[int, bool] = {}

    def _is_dependency(self, lhs: int) -> bool:
        """Classify one node: pruning indexes first, cache, then the data."""
        if self.min_deps.contains_subset(lhs):
            return True
        if self.max_non_deps.contains_superset(lhs):
            return False
        cached = self._cache.get(lhs)
        if cached is None:
            self.validations += 1
            cached = self.context.fd_holds(FD(lhs, self.rhs))
            self._cache[lhs] = cached
        return cached

    def minimal_dependencies(self) -> list[int]:
        seeds = [self.universe]
        while seeds:
            node = seeds.pop(self.rng.randrange(len(seeds)))
            self._walk(node)
            seeds = self._next_seeds()
        return list(self.min_deps)

    def _walk(self, node: int) -> None:
        """One monotone walk: down to a minimal dependency, or up to a
        maximal non-dependency.  Every walk records a new index entry."""
        if self._is_dependency(node):
            while True:
                dependency_children = [
                    child
                    for child in attrset.subsets_one_smaller(node)
                    if self._is_dependency(child)
                ]
                if not dependency_children:
                    self.min_deps.add(node)
                    return
                node = self.rng.choice(dependency_children)
        else:
            while True:
                non_dependency_parents = [
                    node | bit
                    for bit in _bits(self.universe & ~node)
                    if not self._is_dependency(node | bit)
                ]
                if not non_dependency_parents:
                    self.max_non_deps.add(node)
                    return
                node = self.rng.choice(non_dependency_parents)

    def _next_seeds(self) -> list[int]:
        """Seeds covering the unexplored lattice regions (the "holes").

        Every undiscovered minimal dependency must escape all known
        maximal non-dependencies, so the candidates are the minimal
        hitting sets of their complements; already-classified candidates
        are dropped.  An empty result proves completeness.
        """
        complements = [
            self.universe & ~non_dep for non_dep in self.max_non_deps
        ]
        if not complements:
            # No non-dependency recorded yet: either the very first walk
            # found a dependency chain straight away (then {} or deeper
            # holes may remain unexplored only if nothing was classified
            # below), or nothing ran yet.  The hitting-set of an empty
            # hypergraph is the empty set.
            candidates = [attrset.EMPTY]
        else:
            candidates = minimal_transversals_levelwise(
                complements, self.universe
            )
        return [
            seed
            for seed in candidates
            if not self.min_deps.contains_subset(seed)
            and not self.max_non_deps.contains_superset(seed)
        ]


def _bits(mask: int):
    while mask:
        bit = mask & -mask
        mask ^= bit
        yield bit
