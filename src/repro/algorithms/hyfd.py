"""HyFD — hybrid sampling + induction + validation [26].

HyFD alternates two phases until the candidate set is *provably* exact:

1. **Sampling/induction** — compare tuple pairs drawn from partition
   clusters at progressively larger distances, grow the negative cover,
   and invert it into candidate FDs (shared machinery with EulerFD).
2. **Validation** — check every candidate against the *entire* relation.
   Each violated candidate contributes the full agree set of a violating
   tuple pair back to the negative cover, and control returns to phase 1.

The loop terminates when a validation pass finds no violations, at which
point the positive cover is exact: every FD it contains was verified on
all tuples, and minimality is maintained by the inversion machinery.

The phase-switching heuristic follows the original: sampling continues
while it stays "efficient" (novel violations per compared pair above a
threshold), otherwise control moves to validation — the design that
Table III shows paying off on large-but-regular datasets and drowning in
candidate counts on wide ones.
"""

from __future__ import annotations

from ..core.inversion import Inverter
from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..engine.parallel import WorkerPool, agree_masks_sharded
from ..fd import FD, NegativeCover, attrset
from ..obs import counter, span
from ..obs.names import (
    HYFD_PAIRS_COMPARED,
    HYFD_VALIDATIONS,
    HYFD_VIOLATED_CANDIDATES,
)
from ..relation.preprocess import PreprocessedRelation
from ..relation.relation import Relation
from .base import execution_context, register


@register("hyfd")
class HyFD:
    """Exact hybrid FD discovery."""

    name = "HyFD"
    kind = "exact"

    def __init__(
        self,
        efficiency_threshold: float = 0.005,
        null_equals_null: bool = True,
        dedupe_clusters: bool = True,
        max_iterations: int = 10_000,
    ) -> None:
        if efficiency_threshold < 0:
            raise ValueError("efficiency threshold must be non-negative")
        self.efficiency_threshold = efficiency_threshold
        self.null_equals_null = null_equals_null
        self.dedupe_clusters = dedupe_clusters
        self.max_iterations = max_iterations

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        context = execution_context(relation, self.null_equals_null)
        data = context.data
        num_attributes = data.num_columns
        universe = attrset.universe(num_attributes)

        ncover = NegativeCover(num_attributes)
        inverter = Inverter(num_attributes)
        pending: list[FD] = []
        seen: dict[int, int] = {}
        for attribute in range(num_attributes):
            if data.cardinality(attribute) > 1:
                self._admit(attrset.EMPTY, attrset.singleton(attribute), ncover,
                            pending, seen)

        clusters = context.sampling_clusters(self.dedupe_clusters)
        distance = 1
        pairs_compared = 0
        validations = 0
        sampling_phases = 0
        validation_phases = 0

        for _ in range(self.max_iterations):
            # ---- phase 1: sampling while efficient -----------------------
            sampling_phases += 1
            phase_pairs = 0
            with span("sampling", phase=sampling_phases):
                while True:
                    swept, novel = self._sweep(data, clusters, distance, ncover,
                                               pending, seen, universe,
                                               context.pool)
                    pairs_compared += swept
                    phase_pairs += swept
                    distance += 1
                    if swept == 0:
                        break
                    if novel / swept < self.efficiency_threshold:
                        break
                counter(HYFD_PAIRS_COMPARED, phase_pairs)
            with span("inversion", phase=sampling_phases):
                inverter.process(pending)
            pending.clear()
            # ---- phase 2: full validation --------------------------------
            # One batched pass over the candidate cover: the context sorts
            # by LHS and folds each distinct LHS's group keys exactly once,
            # so the per-candidate cost collapses to the RHS check.
            validation_phases += 1
            violated = 0
            with span("validation", phase=validation_phases):
                outcomes = context.validate_many(
                    list(inverter.pcover), witnesses=True
                )
                validations += len(outcomes)
                for outcome in outcomes:
                    if outcome.holds:
                        continue
                    violated += 1
                    row_a, row_b = outcome.witness
                    agree = data.agree_mask(row_a, row_b)
                    novel_mask = (universe & ~agree) & ~seen.get(agree, 0)
                    if novel_mask:
                        self._admit(agree, novel_mask, ncover, pending, seen)
                counter(HYFD_VALIDATIONS, len(outcomes))
                counter(HYFD_VIOLATED_CANDIDATES, violated)
            if violated == 0 and not pending:
                break
            inverter.process(pending)
            pending.clear()
        else:
            raise RuntimeError("HyFD did not converge within max_iterations")

        return make_result(
            inverter.pcover,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={
                "pairs_compared": pairs_compared,
                "validations": validations,
                "sampling_phases": sampling_phases,
                "validation_phases": validation_phases,
                "ncover_size": len(ncover),
            },
        )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _admit(
        agree: int,
        rhs_mask: int,
        ncover: NegativeCover,
        pending: list[FD],
        seen: dict[int, int],
    ) -> None:
        seen[agree] = seen.get(agree, 0) | rhs_mask
        remaining = rhs_mask
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            non_fd = FD(agree, bit.bit_length() - 1)
            if ncover.add(non_fd):
                pending.append(non_fd)

    def _sweep(
        self,
        data: PreprocessedRelation,
        clusters: list[tuple[int, ...]],
        distance: int,
        ncover: NegativeCover,
        pending: list[FD],
        seen: dict[int, int],
        universe: int,
        pool: WorkerPool | None = None,
    ) -> tuple[int, int]:
        """Compare all intra-cluster pairs at ``distance``; return (pairs, novel)."""
        swept = 0
        novel_total = 0
        if pool is not None and not pool.is_serial:
            # Parallel sweep: concatenate every cluster's pairs in cluster
            # order and fan the one big comparison out across the pool.
            # Mask order equals the serial per-cluster loop's, so the
            # seen-dict and cover updates below replay identically.
            rows_a: list[int] = []
            rows_b: list[int] = []
            for rows in clusters:
                if len(rows) <= distance:
                    continue
                swept += len(rows) - distance
                rows_a.extend(rows[:-distance])
                rows_b.extend(rows[distance:])
            masks = agree_masks_sharded(pool, data, rows_a, rows_b)
            for agree in masks:
                novel = (universe & ~agree) & ~seen.get(agree, 0)
                if novel:
                    novel_total += novel.bit_count()
                    self._admit(agree, novel, ncover, pending, seen)
            return swept, novel_total
        for rows in clusters:
            if len(rows) <= distance:
                continue
            swept += len(rows) - distance
            masks = data.agree_masks_bulk(
                list(rows[:-distance]), list(rows[distance:])
            )
            for agree in masks:
                novel = (universe & ~agree) & ~seen.get(agree, 0)
                if novel:
                    novel_total += novel.bit_count()
                    self._admit(agree, novel, ncover, pending, seen)
        return swept, novel_total
