"""Common interface and registry for FD-discovery algorithms.

Every algorithm — EulerFD itself, the exact baselines (Tane, Fdep, HyFD,
Dep-Miner, FastFDs, brute force) and the approximate baseline AID-FD —
consumes a :class:`~repro.relation.relation.Relation` and produces a
:class:`~repro.core.result.DiscoveryResult` holding the non-trivial
minimal FDs, so benchmarks and metrics treat them uniformly.
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from typing import Protocol, runtime_checkable

from ..core.result import DiscoveryResult
from ..engine import ExecutionContext, acquire_context
from ..obs import current_recorder, span
from ..relation.relation import Relation


KIND_EXACT = "exact"
KIND_APPROXIMATE = "approximate"


@runtime_checkable
class FDAlgorithm(Protocol):
    """An FD discovery algorithm.

    Implementations declare ``kind`` as ``"exact"`` (the discovered set
    is provably the complete minimal cover) or ``"approximate"``
    (sampling-based; the set may over- or under-claim).  The benchmark
    harness relies on this to pick ground-truth producers, and lint rule
    RPR003 enforces the declaration on every class in this package.
    """

    name: str
    kind: str

    def discover(self, relation: Relation) -> DiscoveryResult:
        """Discover the non-trivial minimal FDs of ``relation``."""


_REGISTRY: dict[str, Callable[[], FDAlgorithm]] = {}


def execution_context(
    relation: Relation, null_equals_null: bool = True
) -> ExecutionContext:
    """The compat shim keeping ``discover(relation)`` signatures intact.

    Resolves the engine context an algorithm should run against: the
    caller-installed shared context when one serves this relation under
    the same NULL semantics (:func:`repro.engine.use_context`), otherwise
    a freshly built default context.  Every algorithm in this package
    obtains partitions and validation exclusively through the returned
    context — never from the relation kernels directly.
    """
    return acquire_context(relation, null_equals_null)


def instrument_discover(cls: type) -> type:
    """The shared observability hook: trace every ``discover`` call.

    Wraps the class's ``discover`` so that, when a recorder is installed
    (:func:`repro.obs.recording`), the whole run is enclosed in a
    ``discover`` span carrying the algorithm and relation names — every
    registered algorithm gets a uniform trace root without touching its
    body.  With tracing disabled the wrapper is one thread-local read
    and a tail call, preserving the zero-overhead promise.  Idempotent:
    re-registering a class does not stack wrappers.
    """
    original = cls.discover
    if getattr(original, "__repro_traced__", False):
        return cls

    @functools.wraps(original)
    def discover(self: FDAlgorithm, relation: Relation) -> DiscoveryResult:
        if current_recorder() is None:
            return original(self, relation)
        with span(
            "discover",
            algorithm=getattr(self, "name", cls.__name__),
            relation=relation.name,
        ):
            return original(self, relation)

    discover.__repro_traced__ = True  # type: ignore[attr-defined]
    cls.discover = discover
    return cls


def register(key: str) -> Callable[[type], type]:
    """Class decorator registering a zero-argument-constructible algorithm.

    Registration routes through :func:`instrument_discover`, so being in
    the registry implies being traceable.
    """

    def decorate(cls: type) -> type:
        _REGISTRY[key] = instrument_discover(cls)
        return cls

    return decorate


def available_algorithms() -> list[str]:
    """Registered algorithm keys, sorted."""
    return sorted(_REGISTRY)

def create(key: str) -> FDAlgorithm:
    """Instantiate a registered algorithm with its default configuration."""
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {key!r}; available: {available_algorithms()}"
        ) from None
    return factory()
