"""Common interface and registry for FD-discovery algorithms.

Every algorithm — EulerFD itself, the exact baselines (Tane, Fdep, HyFD,
Dep-Miner, FastFDs, brute force) and the approximate baseline AID-FD —
consumes a :class:`~repro.relation.relation.Relation` and produces a
:class:`~repro.core.result.DiscoveryResult` holding the non-trivial
minimal FDs, so benchmarks and metrics treat them uniformly.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol, runtime_checkable

from ..core.result import DiscoveryResult
from ..relation.relation import Relation


KIND_EXACT = "exact"
KIND_APPROXIMATE = "approximate"


@runtime_checkable
class FDAlgorithm(Protocol):
    """An FD discovery algorithm.

    Implementations declare ``kind`` as ``"exact"`` (the discovered set
    is provably the complete minimal cover) or ``"approximate"``
    (sampling-based; the set may over- or under-claim).  The benchmark
    harness relies on this to pick ground-truth producers, and lint rule
    RPR003 enforces the declaration on every class in this package.
    """

    name: str
    kind: str

    def discover(self, relation: Relation) -> DiscoveryResult:
        """Discover the non-trivial minimal FDs of ``relation``."""


_REGISTRY: dict[str, Callable[[], FDAlgorithm]] = {}


def register(key: str) -> Callable[[type], type]:
    """Class decorator registering a zero-argument-constructible algorithm."""

    def decorate(cls: type) -> type:
        _REGISTRY[key] = cls
        return cls

    return decorate


def available_algorithms() -> list[str]:
    """Registered algorithm keys, sorted."""
    return sorted(_REGISTRY)

def create(key: str) -> FDAlgorithm:
    """Instantiate a registered algorithm with its default configuration."""
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {key!r}; available: {available_algorithms()}"
        ) from None
    return factory()
