"""AID-FD — approximate induction with naive non-repeating sampling [3].

The representative approximate baseline of the paper (Bleifuß et al.,
CIKM 2016).  Differences from EulerFD that the evaluation isolates:

* sampling sweeps every cluster uniformly at increasing pair distances —
  no notion of per-cluster contribution, so quiet clusters are revisited
  exactly as often as productive ones;
* one global stopping criterion: sampling halts for good once the
  negative cover's growth rate per sweep drops below the threshold;
* inversion runs exactly once at the end — there is no second cycle and
  no possibility of re-sampling after inspecting the positive cover.
"""

from __future__ import annotations

from ..core.inversion import Inverter
from ..core.result import DiscoveryResult, Stopwatch, make_result
from ..fd import FD, NegativeCover, attrset
from ..obs import counter, point, span
from ..obs.names import AIDFD_PAIRS_COMPARED, GR_NCOVER
from ..relation.relation import Relation
from .base import execution_context, register


@register("aidfd")
class AidFd:
    """Approximate discovery: round-based sampling, single inversion."""

    name = "AID-FD"
    kind = "approximate"

    def __init__(
        self,
        threshold: float = 0.01,
        null_equals_null: bool = True,
        dedupe_clusters: bool = True,
        max_sweeps: int | None = None,
    ) -> None:
        if threshold < 0:
            raise ValueError("the growth threshold must be non-negative")
        self.threshold = threshold
        self.null_equals_null = null_equals_null
        self.dedupe_clusters = dedupe_clusters
        self.max_sweeps = max_sweeps

    def discover(self, relation: Relation) -> DiscoveryResult:
        watch = Stopwatch()
        context = execution_context(relation, self.null_equals_null)
        data = context.data
        num_attributes = data.num_columns
        universe = attrset.universe(num_attributes)

        clusters = context.sampling_clusters(self.dedupe_clusters)
        ncover = NegativeCover(num_attributes)
        pending: list[FD] = []
        for attribute in range(num_attributes):
            if data.cardinality(attribute) > 1:
                non_fd = FD(0, attribute)
                if ncover.add(non_fd):
                    pending.append(non_fd)

        seen: dict[int, int] = {}
        pairs_compared = 0
        sweeps = 0
        distance = 1
        while True:
            if self.max_sweeps is not None and sweeps >= self.max_sweeps:
                break
            swept_pairs = 0
            size_before = max(len(ncover), 1)
            added = 0
            with span("sampling", sweep=sweeps + 1):
                for rows in clusters:
                    if len(rows) <= distance:
                        continue
                    swept_pairs += len(rows) - distance
                    masks = data.agree_masks_bulk(
                        list(rows[:-distance]), list(rows[distance:])
                    )
                    for agree in masks:
                        novel = (universe & ~agree) & ~seen.get(agree, 0)
                        if not novel:
                            continue
                        seen[agree] = seen.get(agree, 0) | novel
                        remaining = novel
                        while remaining:
                            bit = remaining & -remaining
                            remaining ^= bit
                            non_fd = FD(agree, bit.bit_length() - 1)
                            if ncover.add(non_fd):
                                pending.append(non_fd)
                                added += 1
                counter(AIDFD_PAIRS_COMPARED, swept_pairs)
            sweeps += 1
            pairs_compared += swept_pairs
            point(GR_NCOVER, float(sweeps), added / size_before)
            if swept_pairs == 0:
                break  # every cluster exhausted: the cover is exact
            if added / size_before <= self.threshold:
                break  # termination criterion reached; AID-FD never resumes
            distance += 1

        inverter = Inverter(num_attributes)
        with span("inversion"):
            inversion = inverter.process(pending)
        return make_result(
            inverter.pcover,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={
                "sweeps": sweeps,
                "pairs_compared": pairs_compared,
                "ncover_size": len(ncover),
                "pcover_size": len(inverter.pcover),
                "candidates_added": inversion.candidates_added,
            },
        )
