"""The inversion module (Algorithm 3, Fig. 5).

Inversion turns the negative cover into the positive cover: every FD
candidate that generalizes a known non-FD is invalid (Lemma 1), so it is
removed and replaced by its minimal specializations that escape the
non-FD's LHS.

The inverter here is *incremental*: it processes only the non-FDs added to
the negative cover since the previous inversion, against the persistent
positive cover.  This is equivalent to re-running the batch algorithm —
after processing a non-FD ``X``, no cover entry is a subset of ``X``, and
every later candidate inherits an attribute outside ``X`` from its parent,
so processing order between non-FDs is irrelevant — while doing only the
marginal work each cycle, which is exactly what the double-cycle structure
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..fd import FD, PositiveCover, attrset
from ..fd.fd import sort_for_cover_insertion
from ..obs import counter
from ..obs.names import (
    INVERTER_CANDIDATES_ADDED,
    INVERTER_CANDIDATES_REMOVED,
    INVERTER_NON_FDS_INVERTED,
)


@dataclass
class InversionStats:
    """Bookkeeping of one inversion run."""

    non_fds_processed: int = 0
    candidates_removed: int = 0
    candidates_added: int = 0


class Inverter:
    """Specializes a persistent positive cover against incoming non-FDs."""

    def __init__(self, num_attributes: int, pcover: PositiveCover | None = None) -> None:
        self.num_attributes = num_attributes
        self.pcover = (
            pcover if pcover is not None else PositiveCover(num_attributes)
        )
        self._universe = attrset.universe(num_attributes)

    def process(self, non_fds: Iterable[FD]) -> InversionStats:
        """Invert a batch of non-FDs into the positive cover (Alg. 3, 11-20).

        Mutates: self
            (specializes ``self.pcover`` in place; the batch itself is
            only read)
        """
        stats = InversionStats()
        for non_fd in sort_for_cover_insertion(non_fds):
            self._invert_one(non_fd, stats)
            stats.non_fds_processed += 1
        counter(INVERTER_NON_FDS_INVERTED, stats.non_fds_processed)
        counter(INVERTER_CANDIDATES_REMOVED, stats.candidates_removed)
        counter(INVERTER_CANDIDATES_ADDED, stats.candidates_added)
        return stats

    def _invert_one(self, non_fd: FD, stats: InversionStats) -> None:
        """Replace every candidate invalidated by one non-FD (Alg. 3 body).

        Mutates: self, stats
        """
        pcover = self.pcover
        rhs = non_fd.rhs
        rhs_bit = attrset.singleton(rhs)
        tree = pcover.index_for(rhs)
        # Attributes allowed to extend an invalidated candidate: anything
        # outside the non-FD's LHS and distinct from the RHS, so the new
        # candidate provably escapes this violation.
        extensions = self._universe & ~non_fd.lhs & ~rhs_bit
        for general in tree.find_subsets(non_fd.lhs):
            pcover.remove(FD(general, rhs))
            stats.candidates_removed += 1
            remaining = extensions
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                candidate_lhs = general | bit
                # A stored generalization of ``general | bit`` must contain
                # ``bit`` (otherwise it would have been a subset of the
                # antichain member ``general``), so the restricted query
                # applies; and when none exists, no stored specialization
                # can exist either — take the eviction-free insertion path.
                if tree.contains_subset_containing(
                    candidate_lhs, bit.bit_length() - 1
                ):
                    continue
                pcover.add_minimal(FD(candidate_lhs, rhs))
                stats.candidates_added += 1
