"""Configuration of the EulerFD algorithm.

Defaults follow Section V-A of the paper: ``Th_Ncover = Th_Pcover = 0.01``
and the 6-queue MLFQ of Table IV.  Everything the experiments of Sections
V-E/V-F vary (queue count, capa ranges, thresholds) is a plain field here
so the benchmark harness can sweep it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


def mlfq_ranges(num_queues: int) -> tuple[float, ...]:
    """Lower bounds of the capa ranges for ``num_queues`` queues (Table IV).

    Returned highest priority first.  The top queue is ``[10, +inf)`` and
    the remaining ranges are exponentially divided by decades, the last
    one reaching down to 0 — exactly the paper's Table IV: e.g. 4 queues
    give ``[10, inf), [1, 10), [0.1, 1), [0, 0.1)``.
    """
    if num_queues < 1:
        raise ValueError(f"need at least one queue, got {num_queues}")
    if num_queues == 1:
        return (0.0,)
    bounds = [10.0 / (10.0**level) for level in range(num_queues - 1)]
    bounds.append(0.0)
    return tuple(bounds)


@dataclass(frozen=True)
class MlfqPolicy:
    """Multilevel-feedback-queue parameters (Section V-E).

    ``lower_bounds`` holds the inclusive lower capa bound of each queue,
    highest priority first; a cluster with capa ``c`` is assigned to the
    first queue whose bound is ``<= c``.  ``adaptive`` enables the paper's
    future-work extension: re-dividing the bounds from the observed capa
    distribution at the start of every sampling pass.
    """

    lower_bounds: tuple[float, ...] = field(default_factory=lambda: mlfq_ranges(6))
    adaptive: bool = False

    def __post_init__(self) -> None:
        if not self.lower_bounds:
            raise ValueError("an MLFQ needs at least one queue")
        if list(self.lower_bounds) != sorted(self.lower_bounds, reverse=True):
            raise ValueError(
                f"queue bounds must be strictly ordered high to low, got "
                f"{self.lower_bounds}"
            )
        if self.lower_bounds[-1] != 0.0:
            raise ValueError("the lowest-priority queue must reach capa 0")

    @property
    def num_queues(self) -> int:
        return len(self.lower_bounds)

    def queue_for(self, capa: float) -> int:
        """Queue index (0 = highest priority) for a capa value."""
        if capa < 0 or math.isnan(capa):
            raise ValueError(f"capa must be a non-negative number, got {capa}")
        for index, bound in enumerate(self.lower_bounds):
            if capa >= bound:
                return index
        return self.num_queues - 1

    @classmethod
    def with_queues(cls, num_queues: int, adaptive: bool = False) -> "MlfqPolicy":
        """The Table IV preset for ``num_queues`` queues."""
        return cls(mlfq_ranges(num_queues), adaptive)


@dataclass(frozen=True)
class EulerFDConfig:
    """All tunables of EulerFD.

    * ``th_ncover`` / ``th_pcover`` — the empirical growth-rate stopping
      thresholds of the two cycles (Algorithms 2 and 3); 0.01 per Sec. V-F.
    * ``mlfq`` — queue policy (Table IV, 6 queues by default).
    * ``retire_history`` — a cluster permanently retires once its average
      capa over this many most recent samples is 0 (Algorithm 1, line 17).
    * ``initial_window`` — sliding-window size of the first sample of each
      cluster (Algorithm 1, line 3).
    * ``max_cycles`` — safety bound on outer double-cycle iterations; the
      growth-rate criteria terminate far earlier in practice.
    * ``dedupe_clusters`` — drop clusters containing exactly the same rows
      as an already-registered cluster of another attribute; such twins
      can only replay identical tuple pairs.
    * ``max_pairs_per_sample`` — optional cap on tuple pairs drawn from a
      single cluster in one sample (evenly thinned); ``None`` reproduces
      the paper's unbounded sliding window.
    * ``null_equals_null`` — NULL comparison semantics at preprocessing.
    """

    th_ncover: float = 0.01
    th_pcover: float = 0.01
    mlfq: MlfqPolicy = field(default_factory=MlfqPolicy)
    retire_history: int = 3
    initial_window: int = 2
    max_cycles: int = 64
    dedupe_clusters: bool = True
    max_pairs_per_sample: int | None = None
    null_equals_null: bool = True

    def __post_init__(self) -> None:
        if self.th_ncover < 0 or self.th_pcover < 0:
            raise ValueError("growth-rate thresholds must be non-negative")
        if self.retire_history < 1:
            raise ValueError("retire_history must be at least 1")
        if self.initial_window < 2:
            raise ValueError("a sliding window needs at least 2 tuples")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be at least 1")
        if self.max_pairs_per_sample is not None and self.max_pairs_per_sample < 1:
            raise ValueError("max_pairs_per_sample must be positive when set")

    def with_queues(self, num_queues: int) -> "EulerFDConfig":
        """Copy of this config with a Table IV MLFQ of ``num_queues``."""
        return replace(self, mlfq=MlfqPolicy.with_queues(num_queues))

    def with_thresholds(
        self, th_ncover: float | None = None, th_pcover: float | None = None
    ) -> "EulerFDConfig":
        """Copy of this config with overridden stopping thresholds."""
        return replace(
            self,
            th_ncover=self.th_ncover if th_ncover is None else th_ncover,
            th_pcover=self.th_pcover if th_pcover is None else th_pcover,
        )
