"""The EulerFD driver: four modules wired into the double-cycle (Fig. 1).

Control flow per Section IV:

1. *Preprocess* the relation into a label matrix and stripped partitions.
2. **First cycle** — alternate sampling rounds with negative-cover
   construction while the cover's growth rate ``GR_Ncover`` stays above
   ``Th_Ncover`` (Algorithm 2, lines 6-10).
3. *Invert* the newly gathered non-FDs into the positive cover and
   evaluate ``GR_Pcover``; while it exceeds ``Th_Pcover``, return to
   sampling — the **second cycle** (Algorithm 3, lines 5-9).
4. Emit the positive cover as the approximate set of non-trivial minimal
   FDs.

One exactness shortcut: the empty-LHS violations ``{} -/-> A`` are read
directly off the per-column cardinalities during preprocessing (a column
with two distinct values can never be constant).  Sampling inside clusters
can never observe an empty agree set, so without the seed the degenerate
all-unique relation would be mis-profiled.
"""

from __future__ import annotations

from ..engine import acquire_context
from ..fd import FD, NegativeCover
from ..obs import phase_memory, point, span
from ..obs.names import (
    GR_NCOVER,
    GR_PCOVER,
    MEM_PHASE_CYCLE,
    MEM_PHASE_INVERSION,
    MEM_PHASE_NCOVER,
    MEM_PHASE_SAMPLING,
)
from ..relation.relation import Relation
from .config import EulerFDConfig
from .inversion import Inverter
from .result import DiscoveryResult, Stopwatch, make_result
from .sampler import SamplingModule


class EulerFD:
    """Approximate FD discovery via adaptive sampling and double-cycle
    induction (the paper's contribution)."""

    name = "EulerFD"
    kind = "approximate"

    def __init__(self, config: EulerFDConfig | None = None) -> None:
        self.config = config if config is not None else EulerFDConfig()

    def discover(self, relation: Relation) -> DiscoveryResult:
        """Run EulerFD on ``relation`` and return the discovered FDs."""
        watch = Stopwatch()
        config = self.config
        context = acquire_context(relation, config.null_equals_null)
        data = context.data
        num_attributes = data.num_columns

        ncover = NegativeCover(num_attributes)
        inverter = Inverter(num_attributes)
        # Non-FDs admitted to the negative cover but not yet inverted.
        pending: list[FD] = []
        for attribute in range(num_attributes):
            if data.cardinality(attribute) > 1:
                non_fd = FD(0, attribute)
                if ncover.add(non_fd):
                    pending.append(non_fd)

        sampler = SamplingModule(
            data,
            config,
            clusters=context.sampling_clusters(config.dedupe_clusters),
            pool=context.pool,
            backend=context.backend,
        )
        cycles = 0
        rounds = 0
        inversions = 0
        final_gr_ncover = 0.0
        final_gr_pcover = 0.0

        while cycles < config.max_cycles:
            cycles += 1
            with span("cycle", cycle=cycles), phase_memory(MEM_PHASE_CYCLE):
                # ---- first cycle: sampling vs negative-cover growth ------
                # Each iteration is a full Algorithm-1 drain; while the
                # negative cover keeps growing fast, retired clusters get a
                # fresh streak and sampling continues (Alg. 2, lines 7-8).
                while True:
                    with span("sampling", cycle=cycles), phase_memory(
                        MEM_PHASE_SAMPLING
                    ):
                        violations, pass_stats = sampler.run_pass()
                    if pass_stats.pairs_compared == 0:
                        break  # the sampler is dry; hand over to inversion
                    rounds += 1
                    size_before = max(len(ncover), 1)
                    with span("ncover", cycle=cycles), phase_memory(
                        MEM_PHASE_NCOVER
                    ):
                        added = self._grow_ncover(violations, ncover, pending)
                    final_gr_ncover = added / size_before
                    # The trajectory behind Algorithm 2's stopping rule
                    # (paper Fig. 11): one point per sampling round.
                    point(GR_NCOVER, rounds, final_gr_ncover, cycle=cycles)
                    if final_gr_ncover <= config.th_ncover:
                        break
                    sampler.revive()
                # ---- inversion and the second cycle ----------------------
                pcover_before = max(len(inverter.pcover), 1)
                with span("inversion", cycle=cycles), phase_memory(
                    MEM_PHASE_INVERSION
                ):
                    inversion_stats = inverter.process(pending)
                pending.clear()
                inversions += 1
                final_gr_pcover = inversion_stats.candidates_added / pcover_before
                point(GR_PCOVER, cycles, final_gr_pcover, cycle=cycles)
            if final_gr_pcover <= config.th_pcover:
                break
            if not sampler.has_more() and sampler.revive() == 0:
                break  # nothing left to sample, accept the current cover

        return make_result(
            inverter.pcover,
            self.name,
            relation.name,
            relation.num_rows,
            num_attributes,
            relation.column_names,
            watch,
            stats={
                "cycles": cycles,
                "sampling_rounds": rounds,
                "inversions": inversions,
                "pairs_compared": sampler.total_pairs,
                "new_non_fds": sampler.total_new_non_fds,
                "ncover_size": len(ncover),
                "pcover_size": len(inverter.pcover),
                "clusters": sampler.num_clusters,
                "revivals": sampler.revivals,
                "final_gr_ncover": final_gr_ncover,
                "final_gr_pcover": final_gr_pcover,
            },
        )

    @staticmethod
    def _grow_ncover(
        violations: list[tuple[int, int]],
        ncover: NegativeCover,
        pending: list[FD],
    ) -> int:
        """Algorithm 2: admit sampled violations, counting real growth."""
        added = 0
        for agree, novel_rhs in violations:
            remaining = novel_rhs
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                non_fd = FD(agree, bit.bit_length() - 1)
                if ncover.add(non_fd):
                    pending.append(non_fd)
                    added += 1
        return added
