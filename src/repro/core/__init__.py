"""EulerFD core: configuration, sampling, covers, inversion, driver."""

from .config import EulerFDConfig, MlfqPolicy, mlfq_ranges
from .eulerfd import EulerFD
from .incremental import IncrementalEulerFD
from .inversion import Inverter, InversionStats
from .mlfq import MultilevelFeedbackQueue
from .result import DiscoveryResult, Stopwatch, make_result
from .sampler import ClusterState, RoundStats, SamplingModule

__all__ = [
    "ClusterState",
    "DiscoveryResult",
    "EulerFD",
    "EulerFDConfig",
    "IncrementalEulerFD",
    "Inverter",
    "InversionStats",
    "MlfqPolicy",
    "MultilevelFeedbackQueue",
    "RoundStats",
    "SamplingModule",
    "Stopwatch",
    "make_result",
    "mlfq_ranges",
]
