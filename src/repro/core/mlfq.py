"""A multilevel feedback queue over sampling clusters (Section IV-C).

Classic MLFQ scheduling [Corbató et al. 1962] keeps several FIFO queues of
decreasing priority and learns where each process belongs from observed
behaviour.  EulerFD treats *clusters* as processes and their sampling
capacity ``capa`` as the observed behaviour: clusters whose recent samples
yielded many new non-FDs are scheduled before clusters that went quiet.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from .config import MlfqPolicy

T = TypeVar("T")


class MultilevelFeedbackQueue(Generic[T]):
    """Priority buckets of FIFO queues, keyed by capa ranges.

    ``push`` assigns an item to the queue matching its capa and appends it
    at the tail (Algorithm 1: "reassigns it to the tail of a new queue");
    ``pop`` removes the head of the highest-priority non-empty queue.
    """

    __slots__ = ("policy", "_queues", "_size")

    def __init__(self, policy: MlfqPolicy) -> None:
        self.policy = policy
        self._queues: list[deque[T]] = [deque() for _ in range(policy.num_queues)]
        self._size = 0

    def push(self, item: T, capa: float) -> int:
        """Enqueue ``item`` by its capa; return the queue index used."""
        index = self.policy.queue_for(capa)
        self._queues[index].append(item)
        self._size += 1
        return index

    def pop(self) -> T:
        """Dequeue from the highest-priority non-empty queue.

        Raises ``IndexError`` when the MLFQ is empty, mirroring
        ``deque.popleft``.
        """
        for queue in self._queues:
            if queue:
                self._size -= 1
                return queue.popleft()
        raise IndexError("pop from an empty multilevel feedback queue")

    def queue_sizes(self) -> tuple[int, ...]:
        """Current occupancy per queue, highest priority first."""
        return tuple(len(queue) for queue in self._queues)

    def clear(self) -> None:
        for queue in self._queues:
            queue.clear()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultilevelFeedbackQueue(sizes={self.queue_sizes()})"
