"""Incremental FD maintenance under tuple insertions.

DMS re-profiles production tables on a schedule (Section V-G processes
half a million datasets a week); most of those tables only *grew* since
the last run.  Insertions can only invalidate FDs, never revalidate them
— a new tuple adds violating pairs but removes none — so the discovery
state moves monotonically down the lattice and the negative-cover /
inversion machinery can absorb batches of new rows without starting over.

:class:`IncrementalEulerFD` keeps the covers alive across appends:

* the **base** relation is profiled once — either exhaustively (every
  tuple pair, exact) or with EulerFD's sampling (approximate);
* each **append** compares every new tuple against all tuples it shares
  a stripped-partition cluster with (plus the other new ones), which
  covers *every* pair involving a new tuple that could violate anything;
  the resulting non-FDs stream through the same incremental inverter.

With an exhaustive base, the maintained cover stays exact after every
append (property-tested against from-scratch discovery); with a sampled
base it keeps EulerFD's approximation guarantees while doing only
O(batch × cluster) work per append.
"""

from __future__ import annotations

from typing import Any

from ..algorithms.fdep import compute_agree_masks
from ..engine.parallel import WorkerPool, agree_masks_sharded, get_pool
from ..fd import FD, NegativeCover, attrset
from ..obs import counter, span
from ..obs.names import INCREMENTAL_PAIRS_COMPARED
from ..relation.preprocess import preprocess
from ..relation.relation import Relation
from .config import EulerFDConfig
from .inversion import Inverter
from .result import DiscoveryResult, Stopwatch, make_result
from .sampler import SamplingModule


class IncrementalEulerFD:
    """FD discovery state that survives tuple insertions."""

    def __init__(
        self,
        relation: Relation,
        config: EulerFDConfig | None = None,
        exhaustive_base: bool = False,
        jobs: int | str | WorkerPool | None = None,
    ) -> None:
        self.config = config if config is not None else EulerFDConfig()
        self.exhaustive_base = exhaustive_base
        self.pool = jobs if isinstance(jobs, WorkerPool) else get_pool(jobs)
        self._columns: list[list[Any]] = [
            list(column) for column in relation.columns
        ]
        self._column_names = relation.column_names
        self._name = relation.name
        self.num_attributes = relation.num_columns
        self._universe = attrset.universe(self.num_attributes)
        self.ncover = NegativeCover(self.num_attributes)
        self.inverter = Inverter(self.num_attributes)
        self._seen: dict[int, int] = {}
        self.appends = 0
        self.pairs_compared = 0
        self._profile_base()

    # -- public API -------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    def append(self, rows: list[tuple[Any, ...]]) -> DiscoveryResult:
        """Insert ``rows`` and return the refreshed discovery result."""
        watch = Stopwatch()
        for row in rows:
            if len(row) != self.num_attributes:
                raise ValueError(
                    f"row arity {len(row)} != schema width {self.num_attributes}"
                )
        first_new = self.num_rows
        for index, column in enumerate(self._columns):
            column.extend(row[index] for row in rows)
        self.appends += 1
        with span("append", batch=self.appends, rows=len(rows)):
            pending = self._compare_new_rows(first_new)
            with span("inversion", batch=self.appends):
                self.inverter.process(pending)
        return self._snapshot(watch)

    def current_result(self) -> DiscoveryResult:
        """The current cover without new work."""
        return self._snapshot(Stopwatch())

    # -- internals ----------------------------------------------------------------

    def _relation(self) -> Relation:
        return Relation.from_columns(
            self._columns, self._column_names, name=self._name
        )

    def _profile_base(self) -> None:
        with span("profile_base", exhaustive=self.exhaustive_base):
            relation = self._relation()
            data = preprocess(relation, self.config.null_equals_null)
            pending: list[FD] = []
            self._seed_empty_lhs(data, pending)
            if self.exhaustive_base:
                # sorted(): canonical admit order for the base profile (RPR107)
                for agree in sorted(compute_agree_masks(data, pool=self.pool)):
                    self._admit(agree, self._universe & ~agree, pending)
                self.pairs_compared += data.num_rows * (data.num_rows - 1) // 2
            else:
                sampler = SamplingModule(data, self.config, pool=self.pool)
                while sampler.has_more():
                    violations, stats = sampler.run_pass()
                    if stats.pairs_compared == 0:
                        break
                    for agree, novel in violations:
                        self._admit(agree, novel, pending)
                    sampler.revive()
                self.pairs_compared += sampler.total_pairs
            self.inverter.process(pending)

    def _seed_empty_lhs(self, data, pending: list[FD]) -> None:
        for attribute in range(self.num_attributes):
            if data.cardinality(attribute) > 1:
                non_fd = FD(0, attribute)
                if self.ncover.add(non_fd):
                    pending.append(non_fd)

    def _compare_new_rows(self, first_new: int) -> list[FD]:
        """Compare each new tuple against every cluster-mate (old and new)."""
        relation = self._relation()
        data = preprocess(relation, self.config.null_equals_null)
        pending: list[FD] = []
        self._seed_empty_lhs(data, pending)
        matrix = data.matrix
        num_rows = data.num_rows
        partners: dict[int, set[int]] = {
            row: set() for row in range(first_new, num_rows)
        }
        for column in range(self.num_attributes):
            groups: dict[int, list[int]] = {}
            labels = matrix[:, column]
            for row in range(num_rows):
                groups.setdefault(int(labels[row]), []).append(row)
            for group in groups.values():
                if len(group) < 2:
                    continue
                news = [row for row in group if row >= first_new]
                if not news:
                    continue
                for new_row in news:
                    partners[new_row].update(group)
        rows_a: list[int] = []
        rows_b: list[int] = []
        for new_row, mates in partners.items():
            for mate in mates:
                if mate < new_row:  # each unordered pair once
                    rows_a.append(mate)
                    rows_b.append(new_row)
        self.pairs_compared += len(rows_a)
        counter(INCREMENTAL_PAIRS_COMPARED, len(rows_a))
        if rows_a:
            for agree in agree_masks_sharded(self.pool, data, rows_a, rows_b):
                self._admit(agree, self._universe & ~agree, pending)
        return pending

    def _admit(self, agree: int, rhs_mask: int, pending: list[FD]) -> None:
        # Single seen-dict lookup: the admit path runs once per sampled
        # mask, so the doubled .get() it used to do was pure overhead.
        prior = self._seen.get(agree, 0)
        novel = rhs_mask & ~prior
        if not novel:
            return
        self._seen[agree] = prior | novel
        remaining = novel
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            non_fd = FD(agree, bit.bit_length() - 1)
            if self.ncover.add(non_fd):
                pending.append(non_fd)

    def _snapshot(self, watch: Stopwatch) -> DiscoveryResult:
        return make_result(
            self.inverter.pcover,
            "IncrementalEulerFD",
            self._name,
            self.num_rows,
            self.num_attributes,
            self._column_names,
            watch,
            stats={
                "appends": self.appends,
                "pairs_compared": self.pairs_compared,
                "ncover_size": len(self.ncover),
                "pcover_size": len(self.inverter.pcover),
                "exhaustive_base": self.exhaustive_base,
            },
        )
