"""Incremental FD maintenance under tuple insertions.

DMS re-profiles production tables on a schedule (Section V-G processes
half a million datasets a week); most of those tables only *grew* since
the last run.  Insertions can only invalidate FDs, never revalidate them
— a new tuple adds violating pairs but removes none — so the discovery
state moves monotonically down the lattice and the negative-cover /
inversion machinery can absorb batches of new rows without starting over.

:class:`IncrementalEulerFD` keeps the covers alive across appends:

* the **base** relation is profiled once — either exhaustively (every
  tuple pair, exact) or with EulerFD's sampling (approximate);
* each **append** flows through the delta execution engine
  (DESIGN.md §12): the owned :class:`~repro.engine.ExecutionContext`
  extends its preprocessed matrix, columnar encoding and partition
  store in place, and the returned
  :class:`~repro.relation.preprocess.AppendDelta` names exactly the
  clusters the new rows landed in.  Pairs are read off those touched
  clusters — every pair involving a new tuple that could violate
  anything, deduplicated across attributes in one vectorized
  ``np.unique`` — and their agree masks stream through the same
  incremental inverter.

With an exhaustive base, the maintained cover stays exact after every
append (property-tested against from-scratch discovery); with a sampled
base it keeps EulerFD's approximation guarantees while doing only
O(batch × cluster) work per append — no re-encoding, no partition
rebuild, no per-row Python grouping loop.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.fdep import compute_agree_masks
from ..engine.backends import Backend
from ..engine.context import ExecutionContext
from ..engine.parallel import WorkerPool, agree_masks_sharded
from ..fd import FD, NegativeCover, attrset
from ..obs import counter, metric_inc, metric_time, span
from ..obs.names import (
    INCREMENTAL_PAIRS_COMPARED,
    INCREMENTAL_APPEND_SECONDS,
    INCREMENTAL_ROWS_TOTAL,
)
from ..relation.preprocess import AppendDelta
from ..relation.relation import Relation
from .config import EulerFDConfig
from .inversion import Inverter
from .result import DiscoveryResult, Stopwatch, make_result
from .sampler import SamplingModule


class IncrementalEulerFD:
    """FD discovery state that survives tuple insertions."""

    def __init__(
        self,
        relation: Relation,
        config: EulerFDConfig | None = None,
        exhaustive_base: bool = False,
        jobs: int | str | WorkerPool | None = None,
        backend: str | Backend | None = None,
    ) -> None:
        self.config = config if config is not None else EulerFDConfig()
        self.exhaustive_base = exhaustive_base
        # The engine owns a private delta-enabled context: appends extend
        # the label dictionaries, encoded columns and cached partitions
        # in place instead of re-preprocessing the grown relation.
        self.context = ExecutionContext(
            relation,
            backend=backend,
            null_equals_null=self.config.null_equals_null,
            jobs=jobs,
            delta=True,
        )
        self.pool = self.context.pool
        self._column_names = relation.column_names
        self._name = relation.name
        self.num_attributes = relation.num_columns
        self._universe = attrset.universe(self.num_attributes)
        self.ncover = NegativeCover(self.num_attributes)
        self.inverter = Inverter(self.num_attributes)
        self._seen: dict[int, int] = {}
        self._last_fds: frozenset[FD] | None = None
        self.sampler: SamplingModule | None = None
        self.appends = 0
        self.pairs_compared = 0
        self._profile_base()

    # -- public API -------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self.context.num_rows

    def append(self, rows: list[tuple[Any, ...]]) -> DiscoveryResult:
        """Insert ``rows`` and return the refreshed discovery result.

        The result's ``stats`` carry ``fds_added`` / ``fds_retracted``
        relative to the previous snapshot; callers wanting the FDs
        themselves diff two results via :meth:`DiscoveryResult.diff`.

        Mutates: self
        """
        watch = Stopwatch()
        for row in rows:
            if len(row) != self.num_attributes:
                raise ValueError(
                    f"row arity {len(row)} != schema width {self.num_attributes}"
                )
        self.appends += 1
        with span("append", batch=self.appends, rows=len(rows)), metric_time(
            INCREMENTAL_APPEND_SECONDS
        ):
            metric_inc(INCREMENTAL_ROWS_TOTAL, float(len(rows)))
            delta = self.context.append_rows(rows)
            if self.sampler is not None:
                self.sampler.extend_clusters(delta, self.context.data)
            pending = self._compare_new_rows(delta)
            with span("inversion", batch=self.appends):
                self.inverter.process(pending)
        return self._snapshot(watch)

    def current_result(self) -> DiscoveryResult:
        """The current cover without new work."""
        return self._snapshot(Stopwatch())

    # -- internals ----------------------------------------------------------------

    def _profile_base(self) -> None:
        with span("profile_base", exhaustive=self.exhaustive_base):
            data = self.context.data
            pending: list[FD] = []
            self._seed_empty_lhs(
                tuple(
                    data.cardinality(attribute)
                    for attribute in range(self.num_attributes)
                ),
                pending,
            )
            if self.exhaustive_base:
                # sorted(): canonical admit order for the base profile (RPR107)
                for agree in sorted(compute_agree_masks(data, pool=self.pool)):
                    self._admit(agree, self._universe & ~agree, pending)
                self.pairs_compared += data.num_rows * (data.num_rows - 1) // 2
            else:
                # The sampler outlives the base profile: appends extend its
                # cluster states in place, so a streaming driver can keep
                # sampling never-compared pairs of the grown relation.
                sampler = SamplingModule(
                    data,
                    self.config,
                    clusters=self.context.sampling_clusters(
                        self.config.dedupe_clusters
                    ),
                    pool=self.pool,
                    backend=self.context.backend,
                )
                while sampler.has_more():
                    violations, stats = sampler.run_pass()
                    if stats.pairs_compared == 0:
                        break
                    for agree, novel in violations:
                        self._admit(agree, novel, pending)
                    sampler.revive()
                self.pairs_compared += sampler.total_pairs
                self.sampler = sampler
            self.inverter.process(pending)

    def _seed_empty_lhs(
        self, cardinalities: tuple[int, ...], pending: list[FD]
    ) -> None:
        for attribute in range(self.num_attributes):
            if cardinalities[attribute] > 1:
                non_fd = FD(0, attribute)
                if self.ncover.add(non_fd):
                    pending.append(non_fd)

    def _compare_new_rows(self, delta: AppendDelta) -> list[FD]:
        """Compare each new tuple against every cluster-mate (old and new).

        Pairs come straight off the delta's touched clusters — the
        post-append clusters containing at least one new row, per
        attribute — instead of regrouping the whole matrix: within a
        cluster (ascending rows) every new member pairs with all earlier
        members, which enumerates each unordered pair involving a new
        row exactly once per attribute.  Cross-attribute duplicates are
        collapsed by one ``np.unique`` over ``a * num_rows + b`` keys,
        whose sorted order also makes the admit sequence canonical
        (RPR107).  Work is O(batch × cluster), never O(relation).

        Mutates: self
        """
        data = self.context.data
        pending: list[FD] = []
        self._seed_empty_lhs(delta.cardinalities, pending)
        first_new = delta.first_new
        num_rows = delta.num_rows
        pair_keys: list[np.ndarray] = []
        for column_clusters in delta.touched:
            for cluster in column_clusters:
                members = np.asarray(cluster, dtype=np.int64)
                split = int(np.searchsorted(members, first_new))
                for position in range(split, members.size):
                    # all earlier cluster-mates of one new row
                    pair_keys.append(
                        members[:position] * num_rows + members[position]
                    )
        if pair_keys:
            keys = np.unique(np.concatenate(pair_keys))
            rows_a = (keys // num_rows).astype(np.intp)
            rows_b = (keys % num_rows).astype(np.intp)
        else:
            rows_a = rows_b = np.empty(0, dtype=np.intp)
        self.pairs_compared += int(rows_a.size)
        counter(INCREMENTAL_PAIRS_COMPARED, int(rows_a.size))
        metric_inc(INCREMENTAL_PAIRS_COMPARED, float(rows_a.size))
        if rows_a.size:
            masks = agree_masks_sharded(
                self.pool, data, rows_a, rows_b, backend=self.context.backend
            )
            for agree in masks:
                self._admit(agree, self._universe & ~agree, pending)
        return pending

    def _admit(self, agree: int, rhs_mask: int, pending: list[FD]) -> None:
        # Single seen-dict lookup: the admit path runs once per sampled
        # mask, so the doubled .get() it used to do was pure overhead.
        prior = self._seen.get(agree, 0)
        novel = rhs_mask & ~prior
        if not novel:
            return
        self._seen[agree] = prior | novel
        remaining = novel
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            non_fd = FD(agree, bit.bit_length() - 1)
            if self.ncover.add(non_fd):
                pending.append(non_fd)

    def _snapshot(self, watch: Stopwatch) -> DiscoveryResult:
        fds = frozenset(self.inverter.pcover)
        stats: dict[str, Any] = {
            "appends": self.appends,
            "pairs_compared": self.pairs_compared,
            "ncover_size": len(self.ncover),
            "pcover_size": len(fds),
            "exhaustive_base": self.exhaustive_base,
        }
        previous = self._last_fds
        if previous is not None:
            stats["fds_added"] = len(fds - previous)
            stats["fds_retracted"] = len(previous - fds)
        result = make_result(
            sorted(fds),
            "IncrementalEulerFD",
            self._name,
            self.num_rows,
            self.num_attributes,
            self._column_names,
            watch,
            stats=stats,
        )
        self._last_fds = fds
        return result
