"""The sampling module: MLFQ over clusters + sliding windows (Algorithm 1).

Tuple pairs are drawn only inside stripped-partition clusters, so every
comparison is guaranteed to agree on at least one attribute and can always
contribute a non-FD.  Within a cluster, the *sliding window* pairs the
first and last tuple of a window that slides across the cluster; each
sample of the same cluster uses a window one larger than the last, so no
tuple pair is ever compared twice (Fig. 3).

Across clusters, a multilevel feedback queue schedules which cluster to
sample next.  After each sample the cluster's *capa* —

    capa = (number of new non-FDs) / (number of tuple pairs just compared)

— decides the queue it re-enters; clusters whose recent samples stopped
producing retire permanently (Algorithm 1, line 17).

The module hands out work in *passes* — full drains of the MLFQ, exactly
one execution of Algorithm 1's main loop — so the negative-cover module
can evaluate its growth-rate stopping criterion between passes; that
hand-off is the first of the two cycles of Figure 1.  ``revive`` clears
retirement streaks to give quiet clusters a fresh chance when either
cycle decides that sampling should continue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..engine.parallel import WorkerPool, agree_masks_sharded
from ..fd import attrset
from ..obs import counter, gauge
from ..obs.names import (
    MLFQ_DEMOTIONS,
    MLFQ_OCCUPANCY,
    MLFQ_PROMOTIONS,
    SAMPLER_CLUSTER_VISITS,
    SAMPLER_NEW_NON_FDS,
    SAMPLER_PAIRS_COMPARED,
    SAMPLER_PASSES,
    SAMPLER_REVIVED_CLUSTERS,
    SAMPLER_WINDOW_HITS,
)
from ..relation.preprocess import PreprocessedRelation
from .config import EulerFDConfig, MlfqPolicy
from .mlfq import MultilevelFeedbackQueue

Violation = tuple[int, int]
"""(agree mask, mask of newly-violated RHS attributes) of one tuple pair."""


class ClusterState:
    """Sampling state of one stripped-partition cluster."""

    __slots__ = (
        "rows",
        "row_index",
        "window",
        "history",
        "samples",
        "last_capa",
        "queue_level",
    )

    def __init__(self, rows: tuple[int, ...], initial_window: int, history: int) -> None:
        self.rows = rows
        self.row_index = np.asarray(rows, dtype=np.intp)
        """``rows`` as an index array: window pair endpoints are plain
        slices of it, so each sample hands the backend kernels zero-copy
        views instead of rebuilding two Python lists."""
        self.window = initial_window
        self.history: deque[float] = deque(maxlen=history)
        self.samples = 0
        self.last_capa = 0.0
        self.queue_level: int | None = None
        """MLFQ queue index after the last push (telemetry only)."""

    @property
    def exhausted(self) -> bool:
        """No window size left: every regular-interval pair was compared."""
        return self.window > len(self.rows)

    @property
    def retired(self) -> bool:
        """Recent samples all came up empty (average capa of history == 0)."""
        return len(self.history) == self.history.maxlen and not any(self.history)

    @property
    def active(self) -> bool:
        return not self.exhausted and not self.retired

    def record(self, capa: float) -> None:
        """Feed one sample's capa into the retirement history.

        Mutates: self
        """
        self.history.append(capa)
        self.last_capa = capa
        self.samples += 1

    def revive(self) -> None:
        """Forget the zero streak so the cluster may be scheduled again.

        Mutates: self
        """
        self.history.clear()

    def extend(self, rows: tuple[int, ...]) -> None:
        """Grow the cluster in place after an append delta.

        ``rows`` is the cluster's post-append membership, of which this
        state's current rows are a prefix subsequence.  The window size is
        kept: positions already compared pair old rows at smaller windows
        only, so resuming at the current window never repeats a pair —
        new-row pairs the resumed windows skip are covered exhaustively
        by the incremental engine's new-row comparison.  The retirement
        streak is cleared (an extension is fresh signal), and an
        exhausted cluster whose window now fits again becomes eligible.

        Mutates: self
        """
        self.rows = rows
        self.row_index = np.asarray(rows, dtype=np.intp)
        self.history.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterState(size={len(self.rows)}, window={self.window}, "
            f"capa={self.last_capa:.3f})"
        )


@dataclass
class RoundStats:
    """Bookkeeping of one sampling round."""

    cluster_samples: int = 0
    pairs_compared: int = 0
    new_non_fds: int = 0
    queue_occupancy: tuple[int, ...] = field(default_factory=tuple)


class SamplingModule:
    """Stateful sampler shared by both cycles of EulerFD."""

    def __init__(
        self,
        data: PreprocessedRelation,
        config: EulerFDConfig,
        clusters: list[tuple[int, ...]] | None = None,
        pool: WorkerPool | None = None,
        backend: object | None = None,
    ) -> None:
        self.data = data
        self.config = config
        # The execution context's worker pool; None (standalone use)
        # means the serial agree-mask kernel, exactly as before.
        self._pool = pool
        # The execution context's validation backend; when set, its
        # agree-mask kernel replaces the relation's generic one (the
        # columnar backend decodes bit-packed masks without a Python
        # per-pair loop).  None keeps the historical matrix path.
        self._backend = backend
        self._universe = attrset.universe(data.num_columns)
        # The driver passes the execution context's shared (deduplicated)
        # cluster list; standalone use falls back to collecting it here.
        if clusters is None:
            self._clusters = self._collect_clusters()
        else:
            self._clusters = [
                ClusterState(
                    rows, config.initial_window, config.retire_history
                )
                for rows in clusters
            ]
        self._policy = config.mlfq
        self._queue: MultilevelFeedbackQueue[ClusterState] = MultilevelFeedbackQueue(
            self._policy
        )
        # agree mask -> mask of RHS attributes already known violated under it;
        # the exact novelty ledger behind the capa metric.
        self._seen: dict[int, int] = {}
        self.total_pairs = 0
        self.total_new_non_fds = 0
        self.rounds_run = 0
        self.revivals = 0

    # -- construction -----------------------------------------------------

    def _collect_clusters(self) -> list[ClusterState]:
        clusters: list[ClusterState] = []
        registered: set[tuple[int, ...]] = set()
        for _, rows in self.data.iter_clusters():
            if self.config.dedupe_clusters:
                if rows in registered:
                    continue
                registered.add(rows)
            clusters.append(
                ClusterState(rows, self.config.initial_window, self.config.retire_history)
            )
        return clusters

    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    # -- scheduling ---------------------------------------------------------

    def has_more(self) -> bool:
        """True when another round could compare at least one pair."""
        return bool(self._queue) or any(c.active for c in self._clusters)

    def revive(self) -> int:
        """Second-cycle re-entry: clear retirement of non-exhausted clusters.

        Returns how many clusters became eligible again.  Window sizes are
        kept, so revived clusters continue with never-seen tuple pairs.

        Mutates: self
        """
        revived = 0
        for cluster in self._clusters:
            if cluster.retired and not cluster.exhausted:
                cluster.revive()
                revived += 1
        if revived:
            self.revivals += 1
            counter(SAMPLER_REVIVED_CLUSTERS, revived)
        return revived

    def extend_clusters(
        self, delta: object, data: PreprocessedRelation | None = None
    ) -> int:
        """Absorb an append delta: grow touched clusters, admit born ones.

        ``delta`` is the :class:`~repro.relation.preprocess.AppendDelta`
        of one batch; ``data`` the post-append snapshot, which replaces
        the module's (now prefix-only) view when given.  Every post-append cluster that contains a new row
        either extends an existing :class:`ClusterState` (matched by its
        pre-append prefix — O(batch) lookups, no re-collection) or enters
        as a fresh state with top scheduling priority.  Duplicate
        post-append clusters across attributes are registered once,
        mirroring the deduplicated cluster lists the module is built
        from.  Call between passes: states in flight inside a pass keep
        their identity, so in-place growth is safe.

        Returns how many clusters were extended or born.

        Mutates: self
        """
        if data is not None:
            self.data = data
        available: dict[tuple[int, ...], list[ClusterState]] = {}
        for state in self._clusters:
            available.setdefault(state.rows, []).append(state)
        first_new: int = delta.first_new  # type: ignore[attr-defined]
        seen_new: set[tuple[int, ...]] = set()
        changed = 0
        born: list[ClusterState] = []
        for column_clusters in delta.touched:  # type: ignore[attr-defined]
            for cluster in column_clusters:
                if cluster in seen_new:
                    continue
                seen_new.add(cluster)
                prefix = tuple(row for row in cluster if row < first_new)
                bucket = available.get(prefix)
                if bucket:
                    state = bucket.pop()
                    state.extend(cluster)
                    available.setdefault(cluster, []).append(state)
                else:
                    born.append(
                        ClusterState(
                            cluster,
                            self.config.initial_window,
                            self.config.retire_history,
                        )
                    )
                changed += 1
        self._clusters.extend(born)
        return changed

    def _refill_queue(self) -> None:
        """Enqueue every eligible cluster; unsampled ones get top priority."""
        if self._policy.adaptive:
            self._policy = _adapted_policy(self._policy, self._clusters)
            self._queue = MultilevelFeedbackQueue(self._policy)
        for cluster in self._clusters:
            if cluster.active:
                capa = cluster.last_capa if cluster.samples else float("inf")
                self._push(cluster, capa)

    def _push(self, cluster: ClusterState, capa: float) -> None:
        """Enqueue a cluster, counting MLFQ promotions and demotions.

        Mutates: self, cluster
        """
        level = self._queue.push(cluster, capa)
        previous = cluster.queue_level
        if previous is not None:
            if level < previous:
                counter(MLFQ_PROMOTIONS)
            elif level > previous:
                counter(MLFQ_DEMOTIONS)
        cluster.queue_level = level

    def run_pass(self, max_samples: int | None = None) -> tuple[list[Violation], RoundStats]:
        """Drain the MLFQ: one full execution of Algorithm 1's main loop.

        Every eligible cluster enters the queue and is sampled repeatedly
        — highest `capa` first, re-entering the queue after each sample —
        until it exhausts its windows or retires on a zero-capa streak
        (line 17).  Returns the (novel) violations and pass statistics;
        zero pairs compared means the sampler is dry.

        ``max_samples`` optionally bounds the drain for callers that need
        finer-grained control (tests, interactive use).

        Mutates: self
        """
        stats = RoundStats()
        violations: list[Violation] = []
        if not self._queue:
            self._refill_queue()
        while self._queue:
            if max_samples is not None and stats.cluster_samples >= max_samples:
                break
            cluster = self._queue.pop()
            capa = self._sample(cluster, violations, stats)
            stats.cluster_samples += 1
            if not cluster.exhausted and not cluster.retired:
                self._push(cluster, capa)
        stats.queue_occupancy = self._queue.queue_sizes()
        self.rounds_run += 1
        self.total_pairs += stats.pairs_compared
        self.total_new_non_fds += stats.new_non_fds
        counter(SAMPLER_PASSES)
        counter(SAMPLER_CLUSTER_VISITS, stats.cluster_samples)
        counter(SAMPLER_PAIRS_COMPARED, stats.pairs_compared)
        counter(SAMPLER_NEW_NON_FDS, stats.new_non_fds)
        gauge(MLFQ_OCCUPANCY, float(len(self._queue)), sizes=stats.queue_occupancy)
        return violations, stats

    # -- the sliding window -------------------------------------------------

    def _sample(
        self, cluster: ClusterState, out: list[Violation], stats: RoundStats
    ) -> float:
        """One sample of one cluster: compare all pairs at the current window.

        Mutates: self, cluster, out, stats
        """
        rows = cluster.row_index
        window = cluster.window
        num_positions = len(rows) - window + 1
        cap = self.config.max_pairs_per_sample
        if cap is not None and num_positions > cap:
            # Same regular stride as the historical ``int(i * step)``
            # selection: positive doubles truncate identically.
            step = num_positions / cap
            positions = (np.arange(cap) * step).astype(np.intp)
            rows_a = rows[positions]
            rows_b = rows[positions + (window - 1)]
            num_positions = cap
        else:
            rows_a = rows[:num_positions]
            rows_b = rows[window - 1 :]
        new_count = 0
        seen = self._seen
        if self._pool is not None:
            masks = agree_masks_sharded(
                self._pool, self.data, rows_a, rows_b, backend=self._backend
            )
        elif self._backend is not None:
            masks = self._backend.agree_masks(self.data, rows_a, rows_b)
        else:
            masks = self.data.agree_masks_bulk(rows_a, rows_b)
        for agree in masks:
            # Single seen-dict lookup per mask: the update reuses the
            # read (benchmarks/record_baseline.py times this micro-win).
            prior = seen.get(agree, 0)
            novel = (self._universe & ~agree) & ~prior
            if novel:
                seen[agree] = prior | novel
                new_count += novel.bit_count()
                out.append((agree, novel))
        stats.pairs_compared += num_positions
        stats.new_non_fds += new_count
        if new_count:
            # A window position that still yields novel violations: the
            # signal the MLFQ uses to keep a cluster hot (Fig. 3).
            counter(SAMPLER_WINDOW_HITS)
        capa = new_count / num_positions if num_positions else 0.0
        cluster.record(capa)
        cluster.window += 1
        return capa


def _adapted_policy(policy: MlfqPolicy, clusters: list[ClusterState]) -> MlfqPolicy:
    """Future-work extension (Section VI): re-divide capa ranges at runtime.

    Queue bounds are re-drawn from the quantiles of the recently observed
    positive capa values, so queue occupancy stays balanced even when the
    static decade ranges of Table IV fit the data poorly.  Falls back to
    the current bounds when there is not enough signal.
    """
    observed = sorted(
        (c.last_capa for c in clusters if c.samples and c.last_capa > 0),
        reverse=True,
    )
    num_queues = policy.num_queues
    if num_queues == 1 or len(observed) < num_queues:
        return policy
    bounds: list[float] = []
    for level in range(num_queues - 1):
        position = int(len(observed) * (level + 1) / num_queues)
        position = min(position, len(observed) - 1)
        bound = observed[position]
        if bounds and bound >= bounds[-1]:
            bound = bounds[-1] / 2
        bounds.append(bound)
    bounds.append(0.0)
    if any(b <= 0 for b in bounds[:-1]):
        return policy
    return MlfqPolicy(tuple(bounds), adaptive=True)
