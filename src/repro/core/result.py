"""Discovery results shared by every algorithm in the package."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import Any

from ..fd import FD
from ..obs import RunTelemetry, current_recorder, monotonic


@dataclass(frozen=True)
class ResultDiff:
    """The FD-set delta between two discovery results.

    Produced by :meth:`DiscoveryResult.diff`; streaming consumers react
    to what *changed* after an append batch instead of re-reading the
    whole cover.  Under pure insertions FDs can only be retracted or
    specialized, so ``added`` holds specializations of retracted FDs
    (plus sampling discoveries) and ``retracted`` the invalidated ones.
    """

    added: frozenset[FD]
    retracted: frozenset[FD]

    def __bool__(self) -> bool:
        return bool(self.added or self.retracted)

    def __len__(self) -> int:
        return len(self.added) + len(self.retracted)

    def format(self, column_names: Sequence[str]) -> list[str]:
        """Human-readable ``+``/``-`` lines, retractions first.

        Pure: formats into a fresh list.
        """
        lines = [f"- {fd.format(column_names)}" for fd in sorted(self.retracted)]
        lines += [f"+ {fd.format(column_names)}" for fd in sorted(self.added)]
        return lines


@dataclass(frozen=True)
class DiscoveryResult:
    """The output of one FD-discovery run.

    ``fds`` holds the non-trivial minimal FDs (the *target Pcover* of
    Section III); ``stats`` carries algorithm-specific counters such as
    tuple pairs compared, cycles executed, or lattice levels visited.

    ``telemetry`` is the typed per-run record (counters, series, phase
    breakdown) sliced from the recorder active during the run; it is
    None when tracing was disabled, so untraced runs stay exactly as
    cheap as before the observability layer existed.
    """

    fds: frozenset[FD]
    algorithm: str
    relation_name: str
    num_rows: int
    num_columns: int
    column_names: tuple[str, ...]
    runtime_seconds: float
    stats: dict[str, Any] = field(default_factory=dict)
    telemetry: RunTelemetry | None = None

    def __len__(self) -> int:
        return len(self.fds)

    def __iter__(self) -> Iterator[FD]:
        return iter(sorted(self.fds))

    def __contains__(self, fd: FD) -> bool:
        return fd in self.fds

    def diff(self, previous: "DiscoveryResult") -> ResultDiff:
        """The FD-set delta from ``previous`` to this result.

        Pure: two frozenset differences.
        """
        return ResultDiff(
            added=self.fds - previous.fds,
            retracted=previous.fds - self.fds,
        )

    def format_fds(self, limit: int | None = None) -> list[str]:
        """Human-readable FD strings using the relation's column names."""
        ordered = sorted(self.fds)
        if limit is not None:
            ordered = ordered[:limit]
        return [fd.format(self.column_names) for fd in ordered]

    def summary(self) -> str:
        return (
            f"{self.algorithm} on {self.relation_name} "
            f"({self.num_rows}x{self.num_columns}): {len(self.fds)} FDs "
            f"in {self.runtime_seconds:.3f}s"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view: FDs as name lists plus all metadata."""
        payload: dict[str, Any] = {
            "algorithm": self.algorithm,
            "relation": self.relation_name,
            "num_rows": self.num_rows,
            "num_columns": self.num_columns,
            "runtime_seconds": self.runtime_seconds,
            "stats": dict(self.stats),
            "fds": [
                {
                    "lhs": [self.column_names[i] for i in fd.lhs_indices],
                    "rhs": self.column_names[fd.rhs],
                }
                for fd in sorted(self.fds)
            ],
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry.to_dict()
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the result (e.g. for tooling downstream of the CLI)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def fds_from_dict(
        cls, payload: dict[str, Any], column_names: Sequence[str]
    ) -> frozenset[FD]:
        """Rebuild the FD set of a ``to_dict`` payload against a schema."""
        positions = {name: i for i, name in enumerate(column_names)}
        return frozenset(
            FD.of(
                [positions[name] for name in entry["lhs"]],
                positions[entry["rhs"]],
            )
            for entry in payload["fds"]
        )


class Stopwatch:
    """Monotonic timer used by every algorithm for its runtime report.

    Every ``discover`` constructs one first thing, which makes it the
    natural anchor of a run: besides the start time it captures the
    active recorder (if tracing is on) and a mark into its event log, so
    :func:`make_result` can slice out exactly the telemetry this run
    produced even when one recorder observes many runs back to back.
    """

    __slots__ = ("_start", "_recorder", "_mark")

    def __init__(self) -> None:
        self._start = monotonic()
        self._recorder = current_recorder()
        self._mark = self._recorder.mark() if self._recorder is not None else 0

    def elapsed(self) -> float:
        return monotonic() - self._start

    def telemetry(self) -> RunTelemetry | None:
        """The run's telemetry slice, or None when tracing was off."""
        if self._recorder is None:
            return None
        return RunTelemetry.from_recorder(self._recorder, self._mark)


def make_result(
    fds: Iterator[FD] | Sequence[FD] | frozenset[FD],
    algorithm: str,
    relation_name: str,
    num_rows: int,
    num_columns: int,
    column_names: Sequence[str],
    watch: Stopwatch,
    stats: dict[str, Any] | None = None,
) -> DiscoveryResult:
    """Assemble a :class:`DiscoveryResult`, stamping the elapsed runtime.

    When a recorder was active while ``watch`` ran, the result carries
    the run's :class:`~repro.obs.RunTelemetry` slice.
    """
    return DiscoveryResult(
        fds=frozenset(fds),
        algorithm=algorithm,
        relation_name=relation_name,
        num_rows=num_rows,
        num_columns=num_columns,
        column_names=tuple(column_names),
        runtime_seconds=watch.elapsed(),
        stats=dict(stats) if stats else {},
        telemetry=watch.telemetry(),
    )
