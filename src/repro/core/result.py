"""Discovery results shared by every algorithm in the package."""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import Any

from ..fd import FD


@dataclass(frozen=True)
class DiscoveryResult:
    """The output of one FD-discovery run.

    ``fds`` holds the non-trivial minimal FDs (the *target Pcover* of
    Section III); ``stats`` carries algorithm-specific counters such as
    tuple pairs compared, cycles executed, or lattice levels visited.
    """

    fds: frozenset[FD]
    algorithm: str
    relation_name: str
    num_rows: int
    num_columns: int
    column_names: tuple[str, ...]
    runtime_seconds: float
    stats: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.fds)

    def __iter__(self) -> Iterator[FD]:
        return iter(sorted(self.fds))

    def __contains__(self, fd: FD) -> bool:
        return fd in self.fds

    def format_fds(self, limit: int | None = None) -> list[str]:
        """Human-readable FD strings using the relation's column names."""
        ordered = sorted(self.fds)
        if limit is not None:
            ordered = ordered[:limit]
        return [fd.format(self.column_names) for fd in ordered]

    def summary(self) -> str:
        return (
            f"{self.algorithm} on {self.relation_name} "
            f"({self.num_rows}x{self.num_columns}): {len(self.fds)} FDs "
            f"in {self.runtime_seconds:.3f}s"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view: FDs as name lists plus all metadata."""
        return {
            "algorithm": self.algorithm,
            "relation": self.relation_name,
            "num_rows": self.num_rows,
            "num_columns": self.num_columns,
            "runtime_seconds": self.runtime_seconds,
            "stats": dict(self.stats),
            "fds": [
                {
                    "lhs": [self.column_names[i] for i in fd.lhs_indices],
                    "rhs": self.column_names[fd.rhs],
                }
                for fd in sorted(self.fds)
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the result (e.g. for tooling downstream of the CLI)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def fds_from_dict(
        cls, payload: dict[str, Any], column_names: Sequence[str]
    ) -> frozenset[FD]:
        """Rebuild the FD set of a ``to_dict`` payload against a schema."""
        positions = {name: i for i, name in enumerate(column_names)}
        return frozenset(
            FD.of(
                [positions[name] for name in entry["lhs"]],
                positions[entry["rhs"]],
            )
            for entry in payload["fds"]
        )


class Stopwatch:
    """Monotonic timer used by every algorithm for its runtime report."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start


def make_result(
    fds: Iterator[FD] | Sequence[FD] | frozenset[FD],
    algorithm: str,
    relation_name: str,
    num_rows: int,
    num_columns: int,
    column_names: Sequence[str],
    watch: Stopwatch,
    stats: dict[str, Any] | None = None,
) -> DiscoveryResult:
    """Assemble a :class:`DiscoveryResult`, stamping the elapsed runtime."""
    return DiscoveryResult(
        fds=frozenset(fds),
        algorithm=algorithm,
        relation_name=relation_name,
        num_rows=num_rows,
        num_columns=num_columns,
        column_names=tuple(column_names),
        runtime_seconds=watch.elapsed(),
        stats=dict(stats) if stats else {},
    )
