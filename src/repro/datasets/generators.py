"""Generators standing in for the paper's 19 benchmark datasets.

Each function returns a :class:`~repro.datasets.engine.DatasetSpec` whose
column mix (domain sizes, keys, planted dependencies, noise) is chosen so
the generated relation lands in the same regime as the original: narrow
UCI datasets with moderate FD counts, the high-FD small-row hospital
datasets (hepatitis/horse), the synthetic fd-reduced generator, and the
wide sparse web datasets (plista/flight/uniprot).  Paper row counts and FD
counts are recorded in :mod:`repro.datasets.registry` for comparison; the
generators do not attempt to match FD counts exactly, only the workload
shape (see DESIGN.md §2).
"""

from __future__ import annotations

from .engine import ColumnSpec, DatasetSpec

Cat = ColumnSpec  # local alias keeping the spec tables readable


def iris_spec(seed: int = 7) -> DatasetSpec:
    """150x5 numeric measurements, small domains, one class column."""
    return DatasetSpec(
        "iris",
        (
            Cat("sepal_length", cardinality=35),
            Cat("sepal_width", cardinality=23),
            Cat("petal_length", cardinality=43),
            Cat("petal_width", cardinality=22),
            Cat("species", kind="derived", sources=("petal_length", "petal_width"),
                cardinality=3),
        ),
        seed=seed,
    )


def balance_scale_spec(seed: int = 11) -> DatasetSpec:
    """625x5 factorial design: four card-5 factors determine the class."""
    return DatasetSpec(
        "balance-scale",
        (
            Cat("left_weight", cardinality=5),
            Cat("left_distance", cardinality=5),
            Cat("right_weight", cardinality=5),
            Cat("right_distance", cardinality=5),
            Cat("class", kind="derived", cardinality=3,
                sources=("left_weight", "left_distance", "right_weight",
                         "right_distance")),
        ),
        seed=seed,
    )


def chess_spec(seed: int = 13) -> DatasetSpec:
    """28056x7 endgame positions: six coordinates determine the outcome."""
    return DatasetSpec(
        "chess",
        (
            Cat("wk_file", cardinality=4),
            Cat("wk_rank", cardinality=8),
            Cat("wr_file", cardinality=8),
            Cat("wr_rank", cardinality=8),
            Cat("bk_file", cardinality=8),
            Cat("bk_rank", cardinality=8),
            Cat("depth", kind="derived", cardinality=18,
                sources=("wk_file", "wk_rank", "wr_file", "wr_rank",
                         "bk_file", "bk_rank")),
        ),
        seed=seed,
    )


def abalone_spec(seed: int = 17) -> DatasetSpec:
    """4177x9 physical measurements with a few planted correlations."""
    return DatasetSpec(
        "abalone",
        (
            Cat("sex", cardinality=3),
            Cat("length", cardinality=134),
            Cat("diameter", cardinality=111),
            Cat("height", cardinality=51),
            Cat("whole_weight", kind="derived", cardinality=2400,
                sources=("length", "diameter", "height")),
            Cat("shucked_weight", cardinality=1500),
            Cat("viscera_weight", cardinality=880),
            Cat("shell_weight", kind="derived", cardinality=900,
                sources=("length", "diameter")),
            Cat("rings", cardinality=28),
        ),
        seed=seed,
    )


def nursery_spec(seed: int = 19) -> DatasetSpec:
    """12960x9 factorial nursery applications: features determine the class."""
    return DatasetSpec(
        "nursery",
        (
            Cat("parents", cardinality=3),
            Cat("has_nurs", cardinality=5),
            Cat("form", cardinality=4),
            Cat("children", cardinality=4),
            Cat("housing", cardinality=3),
            Cat("finance", cardinality=2),
            Cat("social", cardinality=3),
            Cat("health", cardinality=3),
            Cat("class", kind="derived", cardinality=5,
                sources=("parents", "has_nurs", "form", "children", "housing",
                         "finance", "social", "health")),
        ),
        seed=seed,
    )


def breast_cancer_spec(seed: int = 23) -> DatasetSpec:
    """699x11 cytology features, near-key id column."""
    return DatasetSpec(
        "breast-cancer",
        (
            Cat("id", cardinality=645),
            Cat("clump_thickness", cardinality=10),
            Cat("cell_size", cardinality=10),
            Cat("cell_shape", cardinality=10),
            Cat("adhesion", cardinality=10),
            Cat("epithelial_size", cardinality=10),
            Cat("bare_nuclei", cardinality=11),
            Cat("bland_chromatin", cardinality=10),
            Cat("normal_nucleoli", cardinality=10),
            Cat("mitoses", cardinality=9),
            Cat("class", kind="derived", cardinality=2,
                sources=("cell_size", "bare_nuclei")),
        ),
        seed=seed,
    )


def bridges_spec(seed: int = 29) -> DatasetSpec:
    """108x13 Pittsburgh bridges: tiny rows, moderate domains, many FDs."""
    return DatasetSpec(
        "bridges",
        (
            Cat("identifier", kind="key"),
            Cat("river", cardinality=4, skew=0.8),
            Cat("location", cardinality=50),
            Cat("erected", cardinality=70),
            Cat("purpose", cardinality=4),
            Cat("length", cardinality=30),
            Cat("lanes", cardinality=4),
            Cat("clear_g", cardinality=2),
            Cat("t_or_d", cardinality=2),
            Cat("material", cardinality=3),
            Cat("span", cardinality=3),
            Cat("rel_l", cardinality=3),
            Cat("type", kind="derived", cardinality=7,
                sources=("material", "span")),
        ),
        seed=seed,
    )


def echocardiogram_spec(seed: int = 31) -> DatasetSpec:
    """132x13 clinical measurements: tiny rows, mixed domains, dense FDs."""
    return DatasetSpec(
        "echocardiogram",
        (
            Cat("survival", cardinality=40),
            Cat("still_alive", cardinality=2),
            Cat("age_at_heart_attack", cardinality=40),
            Cat("pericardial", cardinality=2),
            Cat("fractional_short", cardinality=70),
            Cat("epss", cardinality=65),
            Cat("lvdd", cardinality=60),
            Cat("wall_motion_score", cardinality=45),
            Cat("wall_motion_index", cardinality=30),
            Cat("mult", cardinality=30),
            Cat("name", cardinality=110),
            Cat("group", cardinality=3),
            Cat("alive_at_1", kind="derived", cardinality=3,
                sources=("survival", "still_alive")),
        ),
        seed=seed,
    )


def adult_spec(seed: int = 37) -> DatasetSpec:
    """32561x15 census records; education -> education_num is planted."""
    return DatasetSpec(
        "adult",
        (
            Cat("age", cardinality=74),
            Cat("workclass", cardinality=9, skew=1.2),
            Cat("fnlwgt", cardinality=22000),
            Cat("education", cardinality=16),
            Cat("education_num", kind="derived", cardinality=16,
                sources=("education",)),
            Cat("marital_status", cardinality=7),
            Cat("occupation", cardinality=15),
            Cat("relationship", cardinality=6),
            Cat("race", cardinality=5, skew=1.5),
            Cat("sex", cardinality=2),
            Cat("capital_gain", cardinality=120, skew=2.0),
            Cat("capital_loss", cardinality=99, skew=2.0),
            Cat("hours_per_week", cardinality=96),
            Cat("native_country", cardinality=42, skew=2.0),
            Cat("income", kind="derived", cardinality=2, noise=0.05,
                sources=("education", "occupation", "capital_gain")),
        ),
        seed=seed,
    )


def lineitem_spec(seed: int = 41) -> DatasetSpec:
    """6M x 16 TPC-H lineitem lookalike; price derives from part+quantity."""
    return DatasetSpec(
        "lineitem",
        (
            Cat("orderkey", cardinality=1_500_000),
            Cat("partkey", cardinality=200_000),
            Cat("suppkey", cardinality=10_000),
            Cat("linenumber", cardinality=7),
            Cat("quantity", cardinality=50),
            Cat("extendedprice", kind="derived", cardinality=1_000_000,
                sources=("partkey", "quantity")),
            Cat("discount", cardinality=11),
            Cat("tax", cardinality=9),
            Cat("returnflag", cardinality=3),
            Cat("linestatus", cardinality=2),
            Cat("shipdate", cardinality=2526),
            Cat("commitdate", cardinality=2466),
            Cat("receiptdate", cardinality=2555),
            Cat("shipinstruct", cardinality=4),
            Cat("shipmode", cardinality=7),
            Cat("comment", cardinality=4_500_000),
        ),
        seed=seed,
    )


def letter_spec(seed: int = 43) -> DatasetSpec:
    """20000x17 letter-recognition features + class.

    Real letter features are strongly correlated (they are all moments of
    the same glyph), which keeps its FD count tiny despite 17 columns; we
    model that by deriving most features from four base measurements.
    """
    columns = [Cat(f"feature_{i}", cardinality=16) for i in range(4)]
    for i in range(4, 16):
        sources = (f"feature_{i % 4}", f"feature_{(i + 1) % 4}")
        columns.append(
            Cat(f"feature_{i}", kind="derived", cardinality=16,
                sources=sources)
        )
    columns.append(
        Cat("letter", kind="derived", cardinality=26,
            sources=("feature_0", "feature_1", "feature_2", "feature_3"))
    )
    return DatasetSpec("letter", tuple(columns), seed=seed)


def weather_spec(seed: int = 47) -> DatasetSpec:
    """262920x18 station measurements; station determines its metadata."""
    return DatasetSpec(
        "weather",
        (
            Cat("station_id", cardinality=60),
            Cat("station_name", kind="derived", cardinality=60,
                sources=("station_id",)),
            Cat("region", kind="derived", cardinality=12,
                sources=("station_id",)),
            Cat("elevation", kind="derived", cardinality=55,
                sources=("station_id",)),
            Cat("date", cardinality=4383),
            Cat("month", kind="derived", cardinality=12, sources=("date",)),
            Cat("temperature_max", cardinality=120),
            Cat("temperature_min", cardinality=110),
            Cat("temperature_avg", kind="derived", cardinality=115,
                sources=("temperature_max", "temperature_min")),
            Cat("humidity", cardinality=101),
            Cat("pressure", cardinality=300),
            Cat("wind_speed", cardinality=80),
            Cat("wind_direction", cardinality=16),
            Cat("precipitation", cardinality=150, skew=2.5),
            Cat("snowfall", cardinality=60, skew=3.0),
            Cat("cloud_cover", cardinality=9),
            Cat("weather_code", kind="derived", cardinality=28, noise=0.01,
                sources=("precipitation", "cloud_cover")),
            Cat("quality_flag", cardinality=4, skew=3.0),
        ),
        seed=seed,
    )


def ncvoter_spec(seed: int = 53) -> DatasetSpec:
    """1000x19 voter registrations: dense FDs from id-like columns."""
    return DatasetSpec(
        "ncvoter",
        (
            Cat("voter_id", kind="key"),
            Cat("last_name", cardinality=700),
            Cat("first_name", cardinality=400),
            Cat("middle_name", cardinality=300),
            Cat("age", cardinality=80),
            Cat("gender", cardinality=3),
            Cat("race", cardinality=7),
            Cat("ethnicity", cardinality=3),
            Cat("party", cardinality=5, skew=0.7),
            Cat("county_id", cardinality=100),
            Cat("county_name", kind="derived", cardinality=100,
                sources=("county_id",)),
            Cat("precinct", cardinality=250),
            Cat("zip_code", kind="derived", cardinality=180,
                sources=("precinct",)),
            Cat("city", kind="derived", cardinality=90, sources=("zip_code",)),
            Cat("street_type", cardinality=25),
            Cat("registration_date", cardinality=600),
            Cat("status", cardinality=4, skew=2.0),
            Cat("download_month", kind="constant"),
            Cat("voter_tabulation", cardinality=40),
        ),
        seed=seed,
    )


def hepatitis_spec(seed: int = 59) -> DatasetSpec:
    """155x20 clinical booleans: tiny rows + binary domains = dense FDs."""
    columns = [
        Cat("age", cardinality=50),
        Cat("sex", cardinality=2),
    ]
    for name in (
        "steroid", "antivirals", "fatigue", "malaise", "anorexia",
        "liver_big", "liver_firm", "spleen_palpable", "spiders", "ascites",
        "varices", "histology",
    ):
        columns.append(Cat(name, cardinality=2))
    columns.extend(
        (
            Cat("bilirubin", cardinality=35),
            Cat("alk_phosphate", cardinality=80),
            Cat("sgot", cardinality=85),
            Cat("albumin", cardinality=30),
            Cat("protime", cardinality=45),
            Cat("class", kind="derived", cardinality=2,
                sources=("ascites", "albumin")),
        )
    )
    return DatasetSpec("hepatitis", tuple(columns), seed=seed)


def horse_spec(seed: int = 61) -> DatasetSpec:
    """300x28 veterinary records: the extreme-FD-count regime of Table III."""
    columns = [
        Cat("surgery", cardinality=2),
        Cat("age", cardinality=2),
        Cat("hospital_number", kind="key"),
        Cat("rectal_temp", cardinality=40),
        Cat("pulse", cardinality=52),
        Cat("respiratory_rate", kind="derived", cardinality=40,
            sources=("pulse",)),
    ]
    for name in ("temp_extremities", "peripheral_pulse", "mucous_membranes"):
        columns.append(Cat(name, cardinality=5))
    for name, sources in (
        ("capillary_refill", ("temp_extremities", "peripheral_pulse")),
        ("pain", ("mucous_membranes", "temp_extremities")),
        ("peristalsis", ("peripheral_pulse", "mucous_membranes")),
    ):
        columns.append(
            Cat(name, kind="derived", cardinality=5, sources=sources)
        )
    # Clinical scores correlate: model the remaining examination columns as
    # functions of earlier ones so the FD count stays large but tractable.
    for name, sources in (
        ("abdominal_distension", ("pain", "peristalsis")),
        ("nasogastric_tube", ("peristalsis", "capillary_refill")),
        ("nasogastric_reflux", ("pain", "mucous_membranes")),
        ("rectal_exam", ("peripheral_pulse", "pain")),
        ("abdomen", ("temp_extremities", "peristalsis")),
    ):
        columns.append(
            Cat(name, kind="derived", cardinality=5, sources=sources)
        )
    columns.extend(
        (
            Cat("packed_cell_volume", cardinality=50),
            Cat("total_protein", kind="derived", cardinality=80,
                sources=("packed_cell_volume",)),
            Cat("abdomo_appearance", kind="derived", cardinality=3,
                sources=("mucous_membranes",)),
            Cat("abdomo_protein", kind="derived", cardinality=40,
                sources=("packed_cell_volume", "abdomo_appearance")),
            Cat("outcome", kind="derived", cardinality=3,
                sources=("pain", "abdomo_appearance")),
            Cat("surgical_lesion", kind="derived", cardinality=2,
                sources=("outcome",)),
            Cat("lesion_site", cardinality=60),
            Cat("lesion_type", kind="derived", cardinality=25,
                sources=("lesion_site",)),
            Cat("lesion_subtype", kind="derived", cardinality=8,
                sources=("lesion_type",)),
            Cat("cp_data", kind="derived", cardinality=2,
                sources=("surgery", "age")),
            Cat("pathology", kind="derived", cardinality=12,
                sources=("lesion_site", "lesion_type")),
        )
    )
    return DatasetSpec("horse", tuple(columns), seed=seed)


def fd_reduced_spec(num_columns: int = 30, seed: int = 67) -> DatasetSpec:
    """The synthetic fd-reduced generator: planted low-level dependencies.

    The original fd-reduced-30 is produced by the dbtesma data generator
    from a specification of planted FDs, which is why its 89 571 minimal
    FDs sit at low lattice levels and its FD count stays flat as rows grow
    (Fig. 6).  We mirror that: the first third of the columns are
    independent draws, every later column is a function of three earlier
    ones, so discovered FDs concentrate at levels <= 3 regardless of the
    row count.
    """
    if num_columns < 1:
        raise ValueError("fd-reduced needs at least one column")
    # Domains scale with the row count (ratios straddling sqrt-collision
    # territory) so that accidental minimal FDs settle at lattice level 2
    # whatever the sweep size — the flat FD-count curve of Fig. 6.
    ratios = (0.9, 0.75, 0.6, 0.5, 0.8)
    columns = tuple(
        Cat(f"col_{index}", cardinality_ratio=ratios[index % len(ratios)])
        for index in range(num_columns)
    )
    return DatasetSpec(f"fd-reduced-{num_columns}", tuple(columns), seed=seed)


def _wide_spec(
    name: str,
    num_columns: int,
    seed: int,
    key_period: int = 29,
    derived_period: int = 2,
    cards: tuple[int, ...] = (5, 11, 27, 80, 300),
    noise_period: int = 17,
    max_independent: int = 30,
) -> DatasetSpec:
    """Shared shape of the wide sparse web datasets (plista/flight/uniprot).

    A repeating mix of categorical domains, occasional near-key columns,
    many derived columns (web-scraped tables repeat the same information
    in several formats — the source of their enormous FD counts), a
    sprinkle of constants, and rare noisy derivations.

    ``max_independent`` caps the independent categorical columns; beyond
    the cap every further column is derived.  Real wide web tables are
    exactly this redundant — uniprot's 223 columns carry nowhere near 223
    independent dimensions — and the cap keeps minimal-FD counts in the
    paper's order of magnitude instead of exploding combinatorially.
    """
    columns: list[ColumnSpec] = [Cat("col_0", cardinality=cards[-1])]
    independents = 1
    for index in range(1, num_columns):
        if index % key_period == key_period - 1:
            columns.append(Cat(f"col_{index}", kind="key"))
        elif index % 23 == 11:
            columns.append(Cat(f"col_{index}", kind="constant"))
        elif index >= 2 and (
            index % derived_period == 0 or independents >= max_independent
        ):
            span = 1 + index % 2
            sources = tuple(
                f"col_{source}" for source in range(index - span, index)
            )
            noise = 0.02 if index % noise_period == 0 else 0.0
            columns.append(
                Cat(f"col_{index}", kind="derived", sources=sources,
                    cardinality=cards[index % len(cards)] + 1, noise=noise)
            )
        else:
            independents += 1
            columns.append(
                Cat(f"col_{index}", cardinality=cards[index % len(cards)],
                    skew=0.5 * (index % 3))
            )
    return DatasetSpec(name, tuple(columns), seed=seed)


def plista_spec(num_columns: int = 63, seed: int = 71) -> DatasetSpec:
    """1001x63 web-advertising logs."""
    return _wide_spec("plista", num_columns, seed, key_period=13)


def flight_spec(num_columns: int = 109, seed: int = 73) -> DatasetSpec:
    """1000x109 flight status records."""
    return _wide_spec("flight", num_columns, seed, key_period=11)


def uniprot_spec(num_columns: int = 223, seed: int = 79) -> DatasetSpec:
    """1000x223 protein annotations — the widest dataset of Table III."""
    return _wide_spec("uniprot", num_columns, seed, key_period=17,
                      derived_period=3, cards=(4, 9, 30, 90, 400),
                      max_independent=24)
