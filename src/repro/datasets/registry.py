"""Catalogue of the 19 Table III benchmark datasets.

Each entry records the paper's published characteristics (row/column/FD
counts — used by EXPERIMENTS.md when comparing shapes) together with the
generator producing our stand-in relation and the scaled default sizes the
benchmark harness runs at so that the whole Table III reproduction
finishes on a laptop.  ``make(name, rows=..., columns=...)`` produces any
size on demand, up to and including the paper's original scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..relation.relation import Relation
from . import generators
from .engine import DatasetSpec, generate


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: paper-reported shape + our generator and bench scale."""

    name: str
    paper_rows: int
    paper_columns: int
    paper_fds: int | None  # None where Table III reports "unknown"
    bench_rows: int
    bench_columns: int | None  # None = the generator's full width
    spec_builder: Callable[..., DatasetSpec]
    column_parameter: bool = False  # builder accepts num_columns

    def spec(self, columns: int | None = None, seed: int | None = None) -> DatasetSpec:
        kwargs: dict[str, int] = {}
        if columns is not None:
            if not self.column_parameter:
                raise ValueError(f"{self.name} has a fixed schema of "
                                 f"{self.paper_columns} columns")
            kwargs["num_columns"] = columns
        if seed is not None:
            kwargs["seed"] = seed
        return self.spec_builder(**kwargs)

    def make(
        self,
        rows: int | None = None,
        columns: int | None = None,
        seed: int | None = None,
    ) -> Relation:
        """Generate the dataset at the requested (default: bench) scale."""
        if rows is None:
            rows = self.bench_rows
        if columns is None and self.column_parameter:
            columns = self.bench_columns
        return generate(self.spec(columns=columns, seed=seed), rows)


_ENTRIES = (
    DatasetInfo("iris", 150, 5, 4, 150, None, generators.iris_spec),
    DatasetInfo("balance-scale", 625, 5, 1, 625, None,
                generators.balance_scale_spec),
    DatasetInfo("chess", 28056, 7, 1, 4000, None, generators.chess_spec),
    DatasetInfo("abalone", 4177, 9, 137, 1500, None, generators.abalone_spec),
    DatasetInfo("nursery", 12960, 9, 1, 3000, None, generators.nursery_spec),
    DatasetInfo("breast-cancer", 699, 11, 46, 699, None,
                generators.breast_cancer_spec),
    DatasetInfo("bridges", 108, 13, 142, 108, None, generators.bridges_spec),
    DatasetInfo("echocardiogram", 132, 13, 527, 132, None,
                generators.echocardiogram_spec),
    DatasetInfo("adult", 32561, 15, 78, 2000, None, generators.adult_spec),
    DatasetInfo("lineitem", 6001215, 16, 3879, 4000, None,
                generators.lineitem_spec),
    DatasetInfo("letter", 20000, 17, 61, 1500, None, generators.letter_spec),
    DatasetInfo("weather", 262920, 18, 918, 3000, None,
                generators.weather_spec),
    DatasetInfo("ncvoter", 1000, 19, 758, 500, None, generators.ncvoter_spec),
    DatasetInfo("hepatitis", 155, 20, 8250, 155, None,
                generators.hepatitis_spec),
    DatasetInfo("horse", 300, 28, 139725, 150, None, generators.horse_spec),
    DatasetInfo("fd-reduced-30", 250000, 30, 89571, 2000, 30,
                generators.fd_reduced_spec, column_parameter=True),
    DatasetInfo("plista", 1001, 63, 178152, 400, 20, generators.plista_spec,
                column_parameter=True),
    DatasetInfo("flight", 1000, 109, 982631, 400, 24, generators.flight_spec,
                column_parameter=True),
    DatasetInfo("uniprot", 1000, 223, None, 400, 24, generators.uniprot_spec,
                column_parameter=True),
)

_BY_NAME = {entry.name: entry for entry in _ENTRIES}


def dataset_names() -> list[str]:
    """All registered dataset names, in Table III order."""
    return [entry.name for entry in _ENTRIES]


def info(name: str) -> DatasetInfo:
    """Registry entry by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None


def make(
    name: str,
    rows: int | None = None,
    columns: int | None = None,
    seed: int | None = None,
) -> Relation:
    """Generate a registered dataset (default: its bench scale)."""
    return info(name).make(rows=rows, columns=columns, seed=seed)
