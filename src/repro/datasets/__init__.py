"""Synthetic dataset generators standing in for the paper's benchmarks."""

from . import generators
from .dms import COLUMN_BUCKETS, ROW_BUCKETS, FleetDataset, fleet
from .engine import ColumnSpec, DatasetSpec, generate, planted_fd_columns
from .patients import COLUMNS as PATIENT_COLUMNS
from .patients import patients
from .registry import DatasetInfo, dataset_names, info, make

__all__ = [
    "COLUMN_BUCKETS",
    "ColumnSpec",
    "DatasetInfo",
    "DatasetSpec",
    "FleetDataset",
    "PATIENT_COLUMNS",
    "ROW_BUCKETS",
    "dataset_names",
    "fleet",
    "generate",
    "generators",
    "info",
    "make",
    "patients",
    "planted_fd_columns",
]
