"""The paper's running example: the patient dataset of Table I.

Used throughout the documentation and by the tests that reproduce the
paper's worked examples (Examples 1-6, Figures 2-5).
"""

from __future__ import annotations

from ..relation.relation import Relation

COLUMNS = ("Name", "Age", "Blood pressure", "Gender", "Medicine")

_ROWS = (
    ("Kelly", 60, "High", "Female", "drugA"),
    ("Jack", 32, "Low", "Male", "drugC"),
    ("Nancy", 28, "Normal", "Female", "drugX"),
    ("Lily", 49, "Low", "Female", "drugY"),
    ("Ophelia", 32, "Normal", "Female", "drugX"),
    ("Anna", 49, "Normal", "Female", "drugX"),
    ("Esther", 32, "Low", "Female", "drugC"),
    ("Richard", 41, "Normal", "Male", "drugY"),
    ("Taylor", 25, "Low", "Gender-queer", "drugC"),
)

# Attribute indices, matching the paper's initials N, A, B, G, M.
NAME, AGE, BLOOD_PRESSURE, GENDER, MEDICINE = range(5)


def patients() -> Relation:
    """Table I as a relation (tuples t1..t9 in row order)."""
    return Relation.from_rows(_ROWS, COLUMNS, name="patients")
