"""Simulated DMS fleet (Section V-G, Table V).

The paper reports a go-live week in which EulerFD processed 500 578
real-world datasets on Alibaba Cloud's Data Management Service, bucketed
by rows x columns.  That fleet is proprietary; this module generates a
seeded miniature fleet over the same bucket grid so the Table V harness
can compute the identical size-weighted efficiency/accuracy ratios
(τe / τa) between EulerFD and AID-FD.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterator

from ..relation.relation import Relation
from .engine import ColumnSpec, DatasetSpec, generate

ROW_BUCKETS: tuple[tuple[int, int], ...] = (
    (1, 10),
    (11, 100),
    (101, 1000),
    (1001, 10000),
)
"""Row buckets of Table V (the two largest are dropped at bench scale)."""

COLUMN_BUCKETS: tuple[tuple[int, int], ...] = (
    (2, 10),
    (11, 50),
    (51, 100),
    (101, 150),
)
"""Column buckets of Table V; 100+ capped at 150 for laptop runtimes."""


@dataclass(frozen=True)
class FleetDataset:
    """One member of the simulated fleet with its bucket coordinates."""

    relation: Relation
    row_bucket: int
    column_bucket: int


def fleet(
    datasets_per_bucket: int = 3,
    seed: int = 2022_09_12,
    row_buckets: tuple[tuple[int, int], ...] = ROW_BUCKETS,
    column_buckets: tuple[tuple[int, int], ...] = COLUMN_BUCKETS,
) -> Iterator[FleetDataset]:
    """Yield a deterministic fleet covering every bucket of the grid."""
    rng = random.Random(seed)
    for row_bucket, (min_rows, max_rows) in enumerate(row_buckets):
        for column_bucket, (min_columns, max_columns) in enumerate(column_buckets):
            for ordinal in range(datasets_per_bucket):
                rows = rng.randint(min_rows, max_rows)
                columns = rng.randint(min_columns, max_columns)
                spec = _random_spec(
                    f"dms_r{row_bucket}c{column_bucket}_{ordinal}",
                    columns,
                    rng.randrange(2**31),
                    num_rows=rows,
                )
                yield FleetDataset(
                    relation=generate(spec, rows),
                    row_bucket=row_bucket,
                    column_bucket=column_bucket,
                )


def _random_spec(
    name: str, num_columns: int, seed: int, num_rows: int = 1000
) -> DatasetSpec:
    """A random production-table shape: ids, enums, and copied columns.

    Wide production tables are dominated by id columns and denormalized
    copies of other columns (the derived kind); independent categorical
    columns are the minority.  Short tables (a handful of rows sliced out
    of a wide schema) additionally show many constant columns.  Both
    biases are realistic *and* what keeps the minimal-FD count of
    wide-but-short tables from exploding combinatorially.
    """
    rng = random.Random(seed)
    derived_share = 0.45 if num_columns <= 25 else 0.62
    if num_rows <= 12:
        constant_share = 0.7
    elif num_rows <= 100:
        constant_share = 0.2
    else:
        constant_share = 0.08
    # Wide tables additionally cap the *independent* column count: the
    # number of minimal keys (hence minimal FDs) over w independent
    # columns grows combinatorially in w at every row count.  Production
    # tables of that shape are mostly constants and copies.
    if num_rows <= 12:
        target_active = 12
    elif num_rows <= 200:
        target_active = 40
    else:
        target_active = 28
    if num_columns > target_active:
        constant_share = max(constant_share, 1.0 - target_active / num_columns)
    columns: list[ColumnSpec] = []
    for index in range(num_columns):
        roll = rng.random()
        if index == 0 or roll < 0.1:
            columns.append(ColumnSpec(f"c{index}", kind="key"))
        elif roll < 0.1 + constant_share:
            columns.append(ColumnSpec(f"c{index}", kind="constant"))
        elif roll < 0.1 + constant_share + derived_share and index >= 2:
            num_sources = rng.randint(1, 2)
            picks = rng.sample(range(index), min(num_sources, index))
            columns.append(
                ColumnSpec(
                    f"c{index}",
                    kind="derived",
                    sources=tuple(f"c{pick}" for pick in sorted(picks)),
                    cardinality=rng.choice((3, 8, 25, 120)),
                    noise=0.02 if rng.random() < 0.1 else 0.0,
                )
            )
        else:
            columns.append(
                ColumnSpec(
                    f"c{index}",
                    cardinality=rng.choice((2, 4, 9, 30, 150)),
                    skew=rng.choice((0.0, 0.0, 1.0, 2.0)),
                )
            )
    return DatasetSpec(name, tuple(columns), seed=seed)
