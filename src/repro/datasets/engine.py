"""Seeded synthetic-relation engine with plantable FDs.

The paper evaluates on 19 benchmark CSVs (Table III) plus a proprietary
fleet from Alibaba DMS; neither is available offline, so every workload in
this repository is produced by this engine (see DESIGN.md §2 for the
substitution rationale).  A dataset is described by a list of
:class:`ColumnSpec`; three column kinds compose every shape the
experiments need:

* ``key`` — unique values (no stripped clusters; determines everything);
* ``categorical`` — i.i.d. draws from a fixed-size domain, optionally
  Zipf-skewed (small domains create large clusters and many accidental
  FDs, the regime where approximate discovery shines);
* ``derived`` — a deterministic function of other columns, planting the
  exact FD ``sources -> column``; an optional ``noise`` rate flips values
  at random, *breaking* the FD with rare violations — exactly the "rare
  non-FDs found on a few tuples" that Section V-B blames for the residual
  F1 loss of sampling algorithms.

Everything is driven by ``random.Random(seed)``: same spec + same seed =
same relation, bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relation.relation import Relation


@dataclass(frozen=True)
class ColumnSpec:
    """Declarative description of one generated column.

    ``cardinality_ratio`` (when set) overrides ``cardinality`` with
    ``max(2, int(ratio * num_rows))`` at generation time — the domain then
    scales with the relation, which keeps the lattice level of accidental
    FDs (and hence the FD count) stable across row-scalability sweeps,
    exactly like the dbtesma generator behind fd-reduced-30.
    """

    name: str
    kind: str = "categorical"  # "categorical" | "key" | "derived" | "constant"
    cardinality: int = 10
    skew: float = 0.0
    sources: tuple[str, ...] = ()
    noise: float = 0.0
    cardinality_ratio: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in {"categorical", "key", "derived", "constant"}:
            raise ValueError(f"unknown column kind {self.kind!r}")
        if self.kind == "categorical" and self.cardinality < 1:
            raise ValueError(f"{self.name}: cardinality must be >= 1")
        if self.kind == "derived" and not self.sources:
            raise ValueError(f"{self.name}: derived columns need sources")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"{self.name}: noise must be a probability")
        if self.skew < 0.0:
            raise ValueError(f"{self.name}: skew must be non-negative")
        if self.cardinality_ratio is not None and self.cardinality_ratio <= 0:
            raise ValueError(f"{self.name}: cardinality_ratio must be positive")

    def effective_cardinality(self, num_rows: int) -> int:
        """The domain size used when generating ``num_rows`` tuples."""
        if self.cardinality_ratio is None:
            return self.cardinality
        return max(2, int(self.cardinality_ratio * num_rows))


@dataclass(frozen=True)
class DatasetSpec:
    """A named, seeded collection of column specs."""

    name: str
    columns: tuple[ColumnSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate column names")
        known = set()
        for column in self.columns:
            for source in column.sources:
                if source not in known:
                    raise ValueError(
                        f"{self.name}.{column.name}: source {source!r} must be "
                        f"declared before its dependents"
                    )
            known.add(column.name)


def generate(spec: DatasetSpec, num_rows: int) -> Relation:
    """Materialize ``num_rows`` tuples of ``spec`` deterministically."""
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    rng = random.Random(spec.seed)
    columns: dict[str, list[object]] = {}
    for column in spec.columns:
        columns[column.name] = _generate_column(column, num_rows, columns, rng)
    return Relation.from_columns(
        [columns[column.name] for column in spec.columns],
        [column.name for column in spec.columns],
        name=spec.name,
    )


def _generate_column(
    spec: ColumnSpec,
    num_rows: int,
    existing: dict[str, list[object]],
    rng: random.Random,
) -> list[object]:
    if spec.kind == "key":
        return [f"{spec.name}#{index}" for index in range(num_rows)]
    if spec.kind == "constant":
        return [f"{spec.name}=const"] * num_rows
    cardinality = spec.effective_cardinality(num_rows)
    if spec.kind == "categorical":
        weights = _domain_weights(cardinality, spec.skew)
        if weights is None:
            values = [rng.randrange(cardinality) for _ in range(num_rows)]
        else:
            values = rng.choices(range(cardinality), weights, k=num_rows)
        return [f"{spec.name}_{value}" for value in values]
    # derived: deterministic hash of the source values, optional noise
    sources = [existing[source] for source in spec.sources]
    column: list[object] = []
    for row in range(num_rows):
        if spec.noise and rng.random() < spec.noise:
            column.append(f"{spec.name}!{rng.randrange(num_rows + 1)}")
            continue
        basis = tuple(source[row] for source in sources)
        bucket = _stable_hash(spec.name, basis) % cardinality
        column.append(f"{spec.name}_{bucket}")
    return column


def _domain_weights(cardinality: int, skew: float) -> list[float] | None:
    """Zipf-like weights; None for the uniform (skew == 0) case."""
    if skew == 0.0 or cardinality == 1:
        return None
    return [1.0 / (rank + 1.0) ** skew for rank in range(cardinality)]


def _stable_hash(name: str, basis: tuple[object, ...]) -> int:
    """Seed-independent deterministic hash (``hash()`` is salted per run)."""
    accumulator = 0x811C9DC5
    for chunk in (name, *map(str, basis)):
        for byte in chunk.encode("utf-8"):
            accumulator = ((accumulator ^ byte) * 0x01000193) & 0xFFFFFFFF
    return accumulator


def planted_fd_columns(spec: DatasetSpec) -> list[tuple[tuple[str, ...], str]]:
    """The (sources, target) pairs of every noise-free derived column.

    These FDs hold *by construction*; the test suite asserts every exact
    algorithm rediscovers them (possibly with smaller LHSs, since a planted
    FD may be dominated by an accidental one).
    """
    return [
        (column.sources, column.name)
        for column in spec.columns
        if column.kind == "derived" and column.noise == 0.0
    ]
