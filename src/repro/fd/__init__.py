"""Functional-dependency value types, covers, indexes, and inference."""

from . import attrset, inference
from .armstrong import armstrong_relation, closed_sets
from .binary_tree import BinaryLhsTree
from .covers import (
    NegativeCover,
    PositiveCover,
    attribute_frequency_priority,
    default_index_factory,
    minimal_cover_from_fds,
)
from .fd import FD, sort_for_cover_insertion, violations_from_pair
from .fdtree import FDTreeIndex
from .lhs_index import BitsetLhsIndex, LhsIndex

__all__ = [
    "FD",
    "BinaryLhsTree",
    "BitsetLhsIndex",
    "FDTreeIndex",
    "LhsIndex",
    "NegativeCover",
    "PositiveCover",
    "armstrong_relation",
    "attrset",
    "closed_sets",
    "attribute_frequency_priority",
    "default_index_factory",
    "inference",
    "minimal_cover_from_fds",
    "sort_for_cover_insertion",
    "violations_from_pair",
]
