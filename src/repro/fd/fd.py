"""Value types for functional dependencies and their violations.

An :class:`FD` is the immutable pair (LHS attribute set, RHS attribute).
The same value type represents both valid FDs (members of the positive
cover) and non-FDs (members of the negative cover); which cover an FD
belongs to is a property of the containing collection, exactly as in the
paper's Definition 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

from . import attrset


@dataclass(frozen=True, slots=True, order=True)
class FD:
    """A functional dependency ``lhs -> rhs``.

    ``lhs`` is an attribute bitmask (see :mod:`repro.fd.attrset`), ``rhs``
    an attribute index.  Instances are hashable and totally ordered, which
    keeps result sets deterministic.
    """

    lhs: int
    rhs: int

    def __post_init__(self) -> None:
        if self.lhs < 0:
            raise ValueError(f"LHS mask must be non-negative, got {self.lhs}")
        if self.rhs < 0:
            raise ValueError(f"RHS index must be non-negative, got {self.rhs}")

    @classmethod
    def of(cls, lhs_indices: Iterable[int], rhs: int) -> "FD":
        """Build an FD from an iterable of LHS attribute indices."""
        return cls(attrset.from_indices(lhs_indices), rhs)

    @property
    def lhs_indices(self) -> tuple[int, ...]:
        """The LHS attribute indices, ascending."""
        return attrset.to_tuple(self.lhs)

    @property
    def arity(self) -> int:
        """Number of attributes on the left-hand side."""
        return attrset.size(self.lhs)

    def is_trivial(self) -> bool:
        """An FD ``X -> A`` is trivial when ``A in X`` (Definition 4)."""
        return attrset.contains(self.lhs, self.rhs)

    def generalizes(self, other: "FD") -> bool:
        """True when this FD is a generalization of ``other`` (Definition 3).

        ``Y -> A`` generalizes ``X -> A`` iff the RHSs agree and
        ``Y`` is a (non-strict) subset of ``X``.
        """
        return self.rhs == other.rhs and attrset.is_subset(self.lhs, other.lhs)

    def specializes(self, other: "FD") -> bool:
        """True when this FD is a specialization of ``other`` (Definition 3)."""
        return other.generalizes(self)

    def format(self, names: Sequence[str] | None = None) -> str:
        """Human-readable rendering, e.g. ``[Gender, Medicine] -> Blood``."""
        if names is None:
            lhs = ", ".join(str(i) for i in self.lhs_indices)
            rhs = str(self.rhs)
        else:
            lhs = ", ".join(names[i] for i in self.lhs_indices)
            rhs = names[self.rhs]
        return f"[{lhs}] -> {rhs}"

    def __str__(self) -> str:
        return self.format()


def sort_for_cover_insertion(non_fds: Iterable[FD]) -> list[FD]:
    """Order non-FDs for negative-cover construction (Algorithm 2, line 1).

    Non-FDs are sorted in decreasing order of LHS length so that, on first
    construction, no later non-FD can be a strict specialization of an
    earlier one — insertions then only need specialization checks.  Ties
    break on (rhs, lhs) to keep the order deterministic.
    """
    return sorted(non_fds, key=lambda fd: (-attrset.size(fd.lhs), fd.rhs, fd.lhs))


def violations_from_pair(agree_mask: int, num_attributes: int) -> Iterator[FD]:
    """Expand one tuple-pair comparison into its non-FDs.

    Given the agree set of a tuple pair (the attributes on which the two
    tuples share a value), every attribute *outside* the agree set is
    violated: ``agree_mask -/-> rhs`` for each differing ``rhs``.  This is
    the Fdep induction step the sampling module relies on (Section IV-C).
    """
    diff = attrset.universe(num_attributes) & ~agree_mask
    for rhs in attrset.to_indices(diff):
        yield FD(agree_mask, rhs)
