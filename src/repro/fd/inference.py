"""Logical inference over FD sets: closures, keys, implication, BCNF.

These routines implement Armstrong-axiom reasoning over discovered FD
sets.  They power the schema-normalization example, the data-obfuscation
workflow (finding attributes that transitively determine a sensitive
attribute), and several test-suite oracles (e.g. checking that two
discovery algorithms returned logically equivalent covers).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from . import attrset
from .fd import FD


def closure(attributes: int, fds: Iterable[FD]) -> int:
    """Attribute closure ``attributes+`` under ``fds``.

    Fixed-point iteration: add ``fd.rhs`` whenever ``fd.lhs`` is already
    contained.  Runs in O(|fds| * rounds); fine for the schema-sized FD
    sets inference is used on.
    """
    fd_list = list(fds)
    result = attributes
    changed = True
    while changed:
        changed = False
        remaining = []
        for fd in fd_list:
            if attrset.is_subset(fd.lhs, result):
                if not attrset.contains(result, fd.rhs):
                    result = attrset.add(result, fd.rhs)
                    changed = True
            else:
                remaining.append(fd)
        fd_list = remaining
    return result


def implies(fds: Iterable[FD], candidate: FD) -> bool:
    """True when ``fds`` logically implies ``candidate`` (via closure)."""
    return attrset.contains(closure(candidate.lhs, fds), candidate.rhs)


def equivalent(left: Iterable[FD], right: Iterable[FD]) -> bool:
    """True when the two FD sets imply each other."""
    left = list(left)
    right = list(right)
    return all(implies(right, fd) for fd in left) and all(
        implies(left, fd) for fd in right
    )


def is_superkey(attributes: int, num_attributes: int, fds: Iterable[FD]) -> bool:
    """True when ``attributes`` determines every attribute of the schema."""
    return closure(attributes, fds) == attrset.universe(num_attributes)


def candidate_keys(
    num_attributes: int, fds: Iterable[FD], limit: int | None = None
) -> list[int]:
    """Enumerate minimal keys of the schema under ``fds``.

    Breadth-first over the attribute lattice starting from the attributes
    that appear on no RHS (those must belong to every key).  ``limit``
    caps the number of keys returned since schemas with many symmetric
    attributes can have exponentially many keys.
    """
    fd_list = list(fds)
    everything = attrset.universe(num_attributes)
    determined = attrset.from_indices(fd.rhs for fd in fd_list)
    core = everything & ~determined
    if closure(core, fd_list) == everything:
        return [core]
    keys: list[int] = []
    frontier = [core]
    seen = {core}
    while frontier and (limit is None or len(keys) < limit):
        next_frontier: list[int] = []
        for base in frontier:
            for index in attrset.to_indices(everything & ~base):
                extended = attrset.add(base, index)
                if extended in seen:
                    continue
                seen.add(extended)
                if any(attrset.is_subset(key, extended) for key in keys):
                    continue
                if closure(extended, fd_list) == everything:
                    keys.append(extended)
                    if limit is not None and len(keys) >= limit:
                        return keys
                else:
                    next_frontier.append(extended)
        frontier = next_frontier
    return keys


def determinants_of(
    target: int, fds: Iterable[FD], num_attributes: int
) -> set[int]:
    """Attributes that (transitively) help determine attribute ``target``.

    This is the DMS data-obfuscation query of Section I: given a labelled
    sensitive attribute, find every attribute appearing in some LHS whose
    closure reaches the sensitive attribute.  Returns attribute indices.
    """
    fd_list = list(fds)
    involved: set[int] = set()
    for fd in fd_list:
        if fd.rhs == target or attrset.contains(
            closure(fd.lhs, fd_list), target
        ):
            involved.update(attrset.to_indices(fd.lhs))
    involved.discard(target)
    return involved


def minimize_cover(fds: Iterable[FD]) -> set[FD]:
    """A canonical (irreducible) cover of ``fds``.

    Three classic steps: drop trivial FDs, left-reduce each LHS (remove
    extraneous attributes), then drop FDs implied by the remainder.  The
    result implies exactly the same dependencies with no redundancy —
    handy for presenting discovered covers compactly.
    """
    reduced: list[FD] = []
    original = [fd for fd in fds if not fd.is_trivial()]
    for fd in original:
        lhs = fd.lhs
        for index in attrset.to_indices(fd.lhs):
            candidate = attrset.remove(lhs, index)
            if attrset.contains(closure(candidate, original), fd.rhs):
                lhs = candidate
        reduced.append(FD(lhs, fd.rhs))
    # Drop redundant FDs: keep fd only when the survivors-so-far plus the
    # not-yet-examined rest do not already imply it.
    essential: list[FD] = []
    deduped = sorted(set(reduced))
    for position, fd in enumerate(deduped):
        pool = essential + deduped[position + 1 :]
        if not implies(pool, fd):
            essential.append(fd)
    return set(essential)


def violates_bcnf(fd: FD, num_attributes: int, fds: Iterable[FD]) -> bool:
    """True when ``fd`` is a BCNF violation: non-trivial and LHS not a superkey."""
    if fd.is_trivial():
        return False
    return not is_superkey(fd.lhs, num_attributes, fds)


def bcnf_decompose(
    num_attributes: int, fds: Iterable[FD], max_rounds: int = 64
) -> list[int]:
    """Classic BCNF decomposition; returns sub-schema attribute masks.

    Each round finds a violating FD ``X -> A`` in some fragment ``S`` and
    splits ``S`` into ``closure(X) ∩ S`` and ``X ∪ (S - closure(X))``.
    FDs are projected by closure testing, so the procedure is lossless
    (it may not be dependency preserving — BCNF never guarantees that).
    """
    fd_list = [fd for fd in fds if not fd.is_trivial()]
    fragments = [attrset.universe(num_attributes)]
    for _ in range(max_rounds):
        violating: tuple[int, FD] | None = None
        for position, fragment in enumerate(fragments):
            for fd in _projected_fds(fragment, fd_list):
                if _violates_within(fd, fragment, fd_list):
                    violating = (position, fd)
                    break
            if violating:
                break
        if violating is None:
            return fragments
        position, fd = violating
        fragment = fragments[position]
        reach = closure(fd.lhs, fd_list) & fragment
        rest = fd.lhs | (fragment & ~reach)
        fragments[position : position + 1] = [reach, rest]
    raise RuntimeError("BCNF decomposition did not converge")


def _projected_fds(fragment: int, fds: list[FD]) -> Iterator[FD]:
    """Yield FDs with both sides inside ``fragment``, including derived ones.

    For tractability only FDs whose stated LHS lies in the fragment are
    considered; that is sufficient for the discovered minimal covers this
    library produces, where every implied in-fragment FD has an explicit
    minimal generator.
    """
    for fd in fds:
        if attrset.is_subset(fd.lhs, fragment) and attrset.contains(
            fragment, fd.rhs
        ):
            yield fd


def _violates_within(fd: FD, fragment: int, fds: list[FD]) -> bool:
    """BCNF check local to a fragment: does ``fd.lhs`` determine it all?"""
    return closure(fd.lhs, fds) & fragment != fragment
