# repro-lint: disable-file=RPR002 — bitmask index kernel: the bucketed
# subset/superset scans shift per stored mask, and the attrset
# helper-call overhead is measurable there (see fd/attrset.py).
"""Indexes over sets of LHS bitmasks with subset/superset queries.

Both the negative cover and the positive cover are, per right-hand-side
attribute, a collection of LHS attribute sets that must answer two queries
fast (Section IV-D/IV-E of the paper):

* *specialization* check — does the collection contain a superset of X?
* *generalization* check — does the collection contain a subset of X?

This module defines the common protocol plus :class:`BitsetLhsIndex`, a
straightforward cardinality-bucketed implementation whose correctness is
obvious.  :mod:`repro.fd.binary_tree` provides the paper's extended binary
tree behind the same protocol; the two are cross-checked by property tests.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Protocol, runtime_checkable

from . import attrset


@runtime_checkable
class LhsIndex(Protocol):
    """Collection of LHS bitmasks supporting containment-lattice queries."""

    def add(self, lhs: int) -> bool:
        """Insert ``lhs``; return False when it was already present."""

    def remove(self, lhs: int) -> bool:
        """Remove ``lhs``; return False when it was not present."""

    def __contains__(self, lhs: int) -> bool: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[int]: ...

    def contains_superset(self, lhs: int) -> bool:
        """True when some stored mask is a (non-strict) superset of ``lhs``."""

    def contains_subset(self, lhs: int) -> bool:
        """True when some stored mask is a (non-strict) subset of ``lhs``."""

    def contains_subset_containing(self, lhs: int, attr: int) -> bool:
        """Subset query restricted to masks containing attribute ``attr``."""

    def find_supersets(self, lhs: int) -> list[int]:
        """All stored masks that are supersets of ``lhs``."""

    def find_subsets(self, lhs: int) -> list[int]:
        """All stored masks that are subsets of ``lhs``."""


class BitsetLhsIndex:
    """LHS index backed by per-cardinality hash sets.

    Subset queries only inspect buckets of cardinality ``<= |X|`` and
    superset queries buckets of cardinality ``>= |X|``, which in practice
    skips most of the collection.  Used as the reference implementation in
    tests and as a pluggable alternative to the binary tree.
    """

    __slots__ = ("_buckets", "_size")

    def __init__(self, masks: Iterator[int] | None = None) -> None:
        self._buckets: dict[int, set[int]] = {}
        self._size = 0
        if masks is not None:
            for mask in masks:
                self.add(mask)

    def add(self, lhs: int) -> bool:
        """Insert ``lhs``; return False when it was already present.

        Mutates: self
        """
        bucket = self._buckets.setdefault(attrset.size(lhs), set())
        if lhs in bucket:
            return False
        bucket.add(lhs)
        self._size += 1
        return True

    def remove(self, lhs: int) -> bool:
        """Remove ``lhs``; return False when it was not present.

        Mutates: self
        """
        card = attrset.size(lhs)
        bucket = self._buckets.get(card)
        if bucket is None or lhs not in bucket:
            return False
        bucket.remove(lhs)
        if not bucket:
            del self._buckets[card]
        self._size -= 1
        return True

    def __contains__(self, lhs: int) -> bool:
        bucket = self._buckets.get(attrset.size(lhs))
        return bucket is not None and lhs in bucket

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        masks = [mask for bucket in self._buckets.values() for mask in bucket]
        yield from sorted(masks)

    def contains_superset(self, lhs: int) -> bool:
        """Specialization check (read-only).

        Pure: scans the buckets without touching them.
        """
        want = attrset.size(lhs)
        for card, bucket in self._buckets.items():
            if card < want:
                continue
            for mask in bucket:
                if lhs & ~mask == 0:
                    return True
        return False

    def contains_subset(self, lhs: int) -> bool:
        """Generalization check (read-only).

        Pure: scans the buckets without touching them.
        """
        want = attrset.size(lhs)
        for card, bucket in self._buckets.items():
            if card > want:
                continue
            for mask in bucket:
                if mask & ~lhs == 0:
                    return True
        return False

    def contains_subset_containing(self, lhs: int, attr: int) -> bool:
        """Subset query restricted to masks containing attribute ``attr``.

        Pure: scans the buckets without touching them.
        """
        want = attrset.size(lhs)
        for card, bucket in self._buckets.items():
            if card > want:
                continue
            for mask in bucket:
                if mask & ~lhs == 0 and (mask >> attr) & 1:
                    return True
        return False

    def find_supersets(self, lhs: int) -> list[int]:
        """All stored supersets of ``lhs``, sorted.

        Pure: builds a fresh list; the index is only read.
        """
        want = attrset.size(lhs)
        found = [
            mask
            for card, bucket in self._buckets.items()
            if card >= want
            for mask in bucket
            if lhs & ~mask == 0
        ]
        found.sort()
        return found

    def find_subsets(self, lhs: int) -> list[int]:
        """All stored subsets of ``lhs``, sorted.

        Pure: builds a fresh list; the index is only read.
        """
        want = attrset.size(lhs)
        found = [
            mask
            for card, bucket in self._buckets.items()
            if card <= want
            for mask in bucket
            if mask & ~lhs == 0
        ]
        found.sort()
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitsetLhsIndex(size={self._size})"
