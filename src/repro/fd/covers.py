"""Negative and positive covers (Definition 5).

The *negative cover* collects non-FDs.  Because a non-FD ``X -/-> A``
implies that every generalization ``Y ⊂ X`` is also a non-FD (Lemma 1),
only the maximal invalid LHSs need storing; the cover therefore keeps, per
RHS attribute, an antichain of maximal LHS masks.

The *positive cover* collects the minimal valid FDs produced by the
inversion module; per RHS attribute it keeps an antichain of minimal LHS
masks.

Both covers delegate subset/superset searches to a pluggable
:class:`~repro.fd.lhs_index.LhsIndex`; the default is the extended binary
tree of Section IV-D.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

from ..obs import counter
from ..obs.names import (
    NCOVER_ADDED,
    NCOVER_GENERALIZATIONS_EVICTED,
    PCOVER_ADDED,
    PCOVER_REMOVED,
    PCOVER_SPECIALIZATIONS_EVICTED,
)
from . import attrset
from .binary_tree import BinaryLhsTree
from .fd import FD
from .lhs_index import LhsIndex

IndexFactory = Callable[[], LhsIndex]
"""Zero-argument callable building an empty LHS index."""


def default_index_factory() -> LhsIndex:
    """The index used by EulerFD: the extended binary LHS tree."""
    return BinaryLhsTree()


class NegativeCover:
    """Per-RHS antichains of *maximal* invalid LHSs.

    ``add`` implements the insertion step of Algorithm 2: a non-FD already
    specialized by a stored one is redundant and is dropped; conversely a
    newly inserted non-FD evicts every stored generalization so the
    antichain property (and minimal storage) is preserved even when
    insertions arrive across several sampling cycles in arbitrary order.
    """

    __slots__ = ("num_attributes", "_trees", "_size")

    def __init__(
        self,
        num_attributes: int,
        index_factory: IndexFactory | None = None,
    ) -> None:
        if num_attributes <= 0:
            raise ValueError(
                f"a relation needs at least one attribute, got {num_attributes}"
            )
        # Resolved at call time so tests can swap the module-level default.
        factory = index_factory if index_factory is not None else default_index_factory
        self.num_attributes = num_attributes
        self._trees: list[LhsIndex] = [factory() for _ in range(num_attributes)]
        self._size = 0

    def add(self, non_fd: FD) -> bool:
        """Insert a non-FD; return True when the cover grew.

        Trivial "non-FDs" (RHS contained in LHS) cannot occur — a tuple
        pair agreeing on the LHS agrees on every LHS attribute — and are
        rejected loudly to catch caller bugs.

        Mutates: self
        Monotone: self via covers
            (the covered set of non-FDs only grows: evicted
            generalizations stay covered by their evictor — the
            append-only promise inversion relies on between cycles)
        """
        if non_fd.is_trivial():
            raise ValueError(f"trivial non-FD cannot be violated: {non_fd}")
        tree = self._trees[non_fd.rhs]
        if tree.contains_superset(non_fd.lhs):
            return False
        evicted = 0
        for general in tree.find_subsets(non_fd.lhs):
            tree.remove(general)
            self._size -= 1
            evicted += 1
        tree.add(non_fd.lhs)
        self._size += 1
        counter(NCOVER_ADDED)
        if evicted:
            counter(NCOVER_GENERALIZATIONS_EVICTED, evicted)
        return True

    def add_all(self, non_fds: Iterable[FD]) -> int:
        """Insert many non-FDs; return the number that grew the cover.

        Mutates: self
        Monotone: self via covers
        """
        return sum(1 for non_fd in non_fds if self.add(non_fd))

    def covers(self, fd: FD) -> bool:
        """True when ``fd`` is known-invalid (generalizes a stored non-FD).

        Pure: a read-only superset query.
        """
        return self._trees[fd.rhs].contains_superset(fd.lhs)

    def lhs_masks(self, rhs: int) -> list[int]:
        """The stored maximal invalid LHS masks for attribute ``rhs``.

        Pure: snapshots the index without touching it.
        """
        return list(self._trees[rhs])

    def index_for(self, rhs: int) -> LhsIndex:
        """Direct access to the per-RHS index (used by the inversion module)."""
        return self._trees[rhs]

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[FD]:
        for rhs, tree in enumerate(self._trees):
            for lhs in tree:
                yield FD(lhs, rhs)

    def __contains__(self, non_fd: FD) -> bool:
        return non_fd.lhs in self._trees[non_fd.rhs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NegativeCover(attributes={self.num_attributes}, size={self._size})"


class PositiveCover:
    """Per-RHS antichains of *minimal* valid LHSs.

    Freshly constructed covers contain the most general candidate
    ``{} -> A`` for every attribute ``A`` (Algorithm 3, lines 1-2); the
    inversion module then specializes candidates against the negative
    cover.
    """

    __slots__ = ("num_attributes", "_trees", "_size")

    def __init__(
        self,
        num_attributes: int,
        index_factory: IndexFactory | None = None,
        seed_most_general: bool = True,
    ) -> None:
        if num_attributes <= 0:
            raise ValueError(
                f"a relation needs at least one attribute, got {num_attributes}"
            )
        factory = index_factory if index_factory is not None else default_index_factory
        self.num_attributes = num_attributes
        self._trees: list[LhsIndex] = [factory() for _ in range(num_attributes)]
        self._size = 0
        if seed_most_general:
            for rhs in range(num_attributes):
                self._trees[rhs].add(attrset.EMPTY)
            self._size = num_attributes

    def add(self, fd: FD) -> bool:
        """Insert an FD candidate unless a stored generalization exists.

        Mutates: self
        Monotone: self via has_generalization
            (minimality only improves: every FD the cover implied
            before — itself or via a generalization — is still implied
            after insertion)
        """
        if fd.is_trivial():
            raise ValueError(f"refusing to store trivial FD: {fd}")
        tree = self._trees[fd.rhs]
        if tree.contains_subset(fd.lhs):
            return False
        evicted = 0
        for special in tree.find_supersets(fd.lhs):
            tree.remove(special)
            self._size -= 1
            evicted += 1
        tree.add(fd.lhs)
        self._size += 1
        counter(PCOVER_ADDED)
        if evicted:
            counter(PCOVER_SPECIALIZATIONS_EVICTED, evicted)
        return True

    def add_minimal(self, fd: FD) -> bool:
        """Insert an FD the caller has already proven minimal.

        Fast path for the inversion module: when the cover is known to be
        an antichain and the caller just checked ``has_generalization``,
        the superset-eviction scan of :meth:`add` is provably a no-op and
        is skipped.

        Mutates: self
        """
        if self._trees[fd.rhs].add(fd.lhs):
            self._size += 1
            counter(PCOVER_ADDED)
            return True
        return False

    def remove(self, fd: FD) -> bool:
        """Drop a candidate invalidated by inversion.

        Mutates: self
        """
        if self._trees[fd.rhs].remove(fd.lhs):
            self._size -= 1
            counter(PCOVER_REMOVED)
            return True
        return False

    def find_generalizations(self, non_fd: FD) -> list[int]:
        """All stored LHSs for ``non_fd.rhs`` that are subsets of its LHS.

        Pure: a read-only subset query.
        """
        return self._trees[non_fd.rhs].find_subsets(non_fd.lhs)

    def has_generalization(self, fd: FD) -> bool:
        """True when a stored LHS is a subset of ``fd``'s LHS.

        Pure: a read-only subset query.
        """
        return self._trees[fd.rhs].contains_subset(fd.lhs)

    def index_for(self, rhs: int) -> LhsIndex:
        """Direct access to the per-RHS index (used by the inversion module)."""
        return self._trees[rhs]

    def lhs_masks(self, rhs: int) -> list[int]:
        """The stored minimal LHS masks for attribute ``rhs``."""
        return list(self._trees[rhs])

    def to_fd_set(self) -> frozenset[FD]:
        """Snapshot the cover as a set of FDs."""
        return frozenset(self)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[FD]:
        for rhs, tree in enumerate(self._trees):
            for lhs in tree:
                yield FD(lhs, rhs)

    def __contains__(self, fd: FD) -> bool:
        return fd.lhs in self._trees[fd.rhs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PositiveCover(attributes={self.num_attributes}, size={self._size})"


def minimal_cover_from_fds(fds: Iterable[FD], num_attributes: int) -> set[FD]:
    """Reduce an arbitrary FD collection to its non-trivial minimal members.

    Utility for baselines and tests: drops trivial FDs and every FD with a
    stored generalization over the same RHS.
    """
    by_rhs: dict[int, list[int]] = {}
    for fd in fds:
        if fd.is_trivial():
            continue
        by_rhs.setdefault(fd.rhs, []).append(fd.lhs)
    minimal: set[FD] = set()
    for rhs, masks in by_rhs.items():
        masks.sort(key=attrset.size)
        kept: list[int] = []
        for mask in masks:
            if any(kept_mask & ~mask == 0 for kept_mask in kept):
                continue
            kept.append(mask)
        minimal.update(FD(mask, rhs) for mask in kept)
    return minimal


def attribute_frequency_priority(
    non_fds: Iterable[FD], num_attributes: int
) -> Sequence[int]:
    """Rank attributes by ascending frequency across non-FD LHSs.

    Algorithm 2 sorts LHS attributes in ascending order of frequency so
    that rare attributes discriminate near the root of the binary tree;
    this helper turns a non-FD sample into the corresponding priority
    vector for :class:`~repro.fd.binary_tree.BinaryLhsTree`.
    """
    counts = [0] * num_attributes
    for non_fd in non_fds:
        for index in attrset.to_indices(non_fd.lhs):
            counts[index] += 1
    order = sorted(range(num_attributes), key=lambda i: (counts[i], i))
    priority = [0] * num_attributes
    for rank, index in enumerate(order):
        priority[index] = rank
    return priority
