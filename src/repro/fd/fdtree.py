# repro-lint: disable-file=RPR002 — bitmask tree kernel: the traversal
# loops shift per child node, and the attrset helper-call overhead is
# measurable there (see fd/attrset.py on why masks stay raw ints).
"""The classic FD-tree / set-trie index [11].

Fdep stores its covers in an *FD-tree*: a prefix tree over the sorted
attribute indices of each LHS, where a path from the root to a terminal
node spells out one stored set.  Subset and superset queries walk the
trie, skipping branches whose attribute order rules them out.

The paper replaces this structure with the extended binary tree of
Section IV-D "because the binary tree consumes less memory while quickly
searching for specializations and generalizations"; this implementation
exists as the faithful point of comparison (see the ablation benchmarks)
and as a third independently-derived ``LhsIndex`` for the property tests
to cross-check.
"""

from __future__ import annotations

from collections.abc import Iterator

from . import attrset


class _TrieNode:
    __slots__ = ("children", "terminal", "stored")

    def __init__(self) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.terminal = False
        self.stored = 0  # number of terminals in this subtree (incl. self)


class FDTreeIndex:
    """Set-trie over LHS bitmasks (implements ``LhsIndex``)."""

    __slots__ = ("_root", "_size")

    def __init__(self, masks: Iterator[int] | None = None) -> None:
        self._root = _TrieNode()
        self._size = 0
        if masks is not None:
            for mask in masks:
                self.add(mask)

    # -- mutation ----------------------------------------------------------

    def add(self, lhs: int) -> bool:
        path = [self._root]
        node = self._root
        for index in attrset.to_indices(lhs):
            node = node.children.setdefault(index, _TrieNode())
            path.append(node)
        if node.terminal:
            return False
        node.terminal = True
        for visited in path:
            visited.stored += 1
        self._size += 1
        return True

    def remove(self, lhs: int) -> bool:
        path: list[tuple[_TrieNode, int]] = []
        node = self._root
        for index in attrset.to_indices(lhs):
            child = node.children.get(index)
            if child is None:
                return False
            path.append((node, index))
            node = child
        if not node.terminal:
            return False
        node.terminal = False
        node.stored -= 1
        for parent, index in reversed(path):
            child = parent.children[index]
            if child.stored == 0:
                del parent.children[index]
            parent.stored -= 1
        self._size -= 1
        return True

    # -- membership / iteration --------------------------------------------

    def __contains__(self, lhs: int) -> bool:
        node = self._root
        for index in attrset.to_indices(lhs):
            node = node.children.get(index)
            if node is None:
                return False
        return node.terminal

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        collected: list[int] = []

        def walk(node: _TrieNode, mask: int) -> None:
            if node.terminal:
                collected.append(mask)
            for index, child in node.children.items():
                walk(child, mask | (1 << index))

        walk(self._root, 0)
        yield from sorted(collected)

    # -- lattice queries ------------------------------------------------------

    def contains_superset(self, lhs: int) -> bool:
        needed = attrset.to_tuple(lhs)

        def walk(node: _TrieNode, position: int) -> bool:
            if position == len(needed):
                return node.stored > 0
            target = needed[position]
            for index, child in node.children.items():
                if index < target:
                    if walk(child, position):
                        return True
                elif index == target:
                    if walk(child, position + 1):
                        return True
                # index > target: this branch can never contain ``target``
                # again (paths are ascending), skip it.
            return False

        return walk(self._root, 0)

    def contains_subset(self, lhs: int) -> bool:
        def walk(node: _TrieNode) -> bool:
            if node.terminal:
                return True
            for index, child in node.children.items():
                if (lhs >> index) & 1 and walk(child):
                    return True
            return False

        return walk(self._root)

    def contains_subset_containing(self, lhs: int, attr: int) -> bool:
        def walk(node: _TrieNode, satisfied: bool) -> bool:
            if node.terminal and satisfied:
                return True
            for index, child in node.children.items():
                if (lhs >> index) & 1 and walk(child, satisfied or index == attr):
                    return True
            return False

        return walk(self._root, False)

    def find_supersets(self, lhs: int) -> list[int]:
        needed = attrset.to_tuple(lhs)
        found: list[int] = []

        def collect(node: _TrieNode, mask: int) -> None:
            if node.terminal:
                found.append(mask)
            for index, child in node.children.items():
                collect(child, mask | (1 << index))

        def walk(node: _TrieNode, position: int, mask: int) -> None:
            if position == len(needed):
                collect(node, mask)
                return
            target = needed[position]
            for index, child in node.children.items():
                if index < target:
                    walk(child, position, mask | (1 << index))
                elif index == target:
                    walk(child, position + 1, mask | (1 << index))

        walk(self._root, 0, 0)
        found.sort()
        return found

    def find_subsets(self, lhs: int) -> list[int]:
        found: list[int] = []

        def walk(node: _TrieNode, mask: int) -> None:
            if node.terminal:
                found.append(mask)
            for index, child in node.children.items():
                if (lhs >> index) & 1:
                    walk(child, mask | (1 << index))

        walk(self._root, 0)
        found.sort()
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FDTreeIndex(size={self._size})"
