"""Armstrong relations: minimal witnesses of an FD cover.

An *Armstrong relation* for an FD set Σ satisfies exactly the
dependencies implied by Σ — it proves every FD in Σ and disproves every
FD not implied by it.  Dep-Miner's companion paper [22] popularized their
use for schema design: show the designer a small example relation instead
of a wall of dependencies.

Construction: the agree sets of the generated relation must be exactly
the *closed* attribute sets of Σ (X is closed when ``closure(X) == X``).
One base tuple plus one tuple per non-trivial closed set — agreeing with
the base exactly on that set, fresh values elsewhere — achieves this:
the agree set of two non-base tuples is the intersection of their closed
sets, which is again closed.  Then ``X -> A`` holds in the relation iff
every closed superset of ``X`` contains ``A``, i.e. iff
``A ∈ closure(X)``.

Enumerating closed sets is exponential in the number of attributes, so
the generator guards against wide schemas; Armstrong witnesses are a
schema-design aid, not a big-data tool.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..relation.relation import Relation, default_column_names
from . import attrset
from .fd import FD
from .inference import closure


def closed_sets(fds: Iterable[FD], num_attributes: int) -> list[int]:
    """All attribute sets X with ``closure(X) == X``, ascending by mask."""
    fd_list = list(fds)
    universe = attrset.universe(num_attributes)
    closed = [
        mask
        for mask in attrset.all_subsets(universe)
        if closure(mask, fd_list) == mask
    ]
    closed.sort()
    return closed


def armstrong_relation(
    fds: Iterable[FD],
    num_attributes: int,
    column_names: Sequence[str] | None = None,
    max_attributes: int = 14,
    name: str = "armstrong",
) -> Relation:
    """Build an Armstrong relation for ``fds`` over ``num_attributes``.

    The result's exact non-trivial minimal FDs are logically equivalent
    to ``fds`` (property-tested via rediscovery).  Values are small
    integers; the base tuple is all zeros.
    """
    if num_attributes > max_attributes:
        raise ValueError(
            f"Armstrong construction enumerates 2^m closed sets; "
            f"{num_attributes} attributes exceeds max_attributes="
            f"{max_attributes}"
        )
    if num_attributes < 1:
        raise ValueError("need at least one attribute")
    fd_list = list(fds)
    universe = attrset.universe(num_attributes)
    witnesses = [mask for mask in closed_sets(fd_list, num_attributes)
                 if mask != universe]
    rows: list[tuple[int, ...]] = [tuple(0 for _ in range(num_attributes))]
    next_fresh = 1
    for witness in witnesses:
        row = []
        for attribute in range(num_attributes):
            if attrset.contains(witness, attribute):
                row.append(0)
            else:
                row.append(next_fresh)
                next_fresh += 1
        rows.append(tuple(row))
    if column_names is None:
        column_names = default_column_names(num_attributes)
    return Relation.from_rows(rows, column_names, name=name)
