"""Attribute sets represented as integer bitmasks.

Every algorithm in this package manipulates sets of attributes (columns of a
relation) at very high frequency: agree sets of tuple pairs, left-hand sides
of functional dependencies, lattice nodes, intersections stored in tree
nodes.  Representing these sets as Python ``int`` bitmasks makes every set
operation a single machine-word (or big-int) instruction:

* union            ``x | y``
* intersection     ``x & y``
* difference       ``x & ~y``
* subset test      ``x & ~y == 0``  (``is_subset``)
* membership       ``x >> i & 1``

The helpers below give those idioms names, and provide conversions between
bitmasks, index iterables, and human-readable attribute names.  The
convention throughout the code base is that attribute ``i`` of a relation
corresponds to bit ``1 << i``.

The module is deliberately free of classes: a bitmask *is* an int, so any
wrapper object would force an allocation per set in the hot loops.  The
:class:`repro.fd.fd.FD` value type wraps masks only at API boundaries.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

EMPTY: int = 0
"""The empty attribute set."""


def singleton(index: int) -> int:
    """Return the attribute set containing only attribute ``index``."""
    if index < 0:
        raise ValueError(f"attribute index must be non-negative, got {index}")
    return 1 << index


def from_indices(indices: Iterable[int]) -> int:
    """Build a bitmask from an iterable of attribute indices."""
    mask = 0
    for index in indices:
        mask |= singleton(index)
    return mask


def to_indices(mask: int) -> Iterator[int]:
    """Yield the attribute indices contained in ``mask`` in ascending order."""
    if mask < 0:
        raise ValueError(f"attribute mask must be non-negative, got {mask}")
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def to_tuple(mask: int) -> tuple[int, ...]:
    """Return the attribute indices of ``mask`` as a tuple."""
    return tuple(to_indices(mask))


def universe(num_attributes: int) -> int:
    """Return the set of all attributes ``{0, ..., num_attributes - 1}``."""
    if num_attributes < 0:
        raise ValueError(
            f"number of attributes must be non-negative, got {num_attributes}"
        )
    return (1 << num_attributes) - 1


def size(mask: int) -> int:
    """Return the cardinality of the attribute set (popcount)."""
    return mask.bit_count()


def contains(mask: int, index: int) -> bool:
    """Return True if attribute ``index`` is a member of ``mask``."""
    return (mask >> index) & 1 == 1


def is_subset(inner: int, outer: int) -> bool:
    """Return True if ``inner`` is a (non-strict) subset of ``outer``."""
    return inner & ~outer == 0


def is_proper_subset(inner: int, outer: int) -> bool:
    """Return True if ``inner`` is a strict subset of ``outer``."""
    return inner != outer and inner & ~outer == 0


def add(mask: int, index: int) -> int:
    """Return ``mask`` with attribute ``index`` added."""
    return mask | singleton(index)


def remove(mask: int, index: int) -> int:
    """Return ``mask`` with attribute ``index`` removed."""
    return mask & ~singleton(index)


def lowest_bit(mask: int) -> int:
    """Return the index of the lowest set attribute.

    Raises ``ValueError`` on the empty set.
    """
    if mask == 0:
        raise ValueError("the empty attribute set has no lowest attribute")
    return (mask & -mask).bit_length() - 1


def highest_bit_mask(mask: int) -> int:
    """Return the singleton mask of the highest set attribute.

    Raises ``ValueError`` on the empty set.  Lattice algorithms use this
    to group candidates by their prefix (everything below the highest
    member) for ordered, duplicate-free enumeration.
    """
    if mask == 0:
        raise ValueError("the empty attribute set has no highest attribute")
    return 1 << (mask.bit_length() - 1)


def subsets_one_smaller(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask`` obtained by dropping a single attribute.

    Used by lattice-traversal algorithms to enumerate the direct
    generalizations of a candidate LHS.
    """
    remaining = mask
    while remaining:
        low = remaining & -remaining
        yield mask ^ low
        remaining ^= low


def all_subsets(mask: int) -> Iterator[int]:
    """Yield every subset of ``mask`` including the empty set and itself.

    The classic bit-twiddling subset enumeration; exponential in
    ``size(mask)``, so callers only use this on small sets (tests, the
    brute-force oracle).
    """
    subset = mask
    while True:
        yield subset
        if subset == 0:
            return
        subset = (subset - 1) & mask


def format_mask(mask: int, names: Iterable[str] | None = None) -> str:
    """Render a mask using attribute ``names``, or indices when absent.

    >>> format_mask(0b101, ["Name", "Age", "Gender"])
    '{Name, Gender}'
    """
    if names is None:
        labels = [str(i) for i in to_indices(mask)]
    else:
        names = list(names)
        labels = [names[i] for i in to_indices(mask)]
    return "{" + ", ".join(labels) + "}"
