# repro-lint: disable-file=RPR002 — bitmask tree kernel: membership tests
# shift per visited node in the hottest query paths, and the attrset
# helper-call overhead is measurable there (see fd/attrset.py).
"""The extended binary LHS tree of Section IV-D (after AID-FD [3]).

The tree stores a set of LHS bitmasks (for one fixed RHS attribute).  Each
internal node tests membership of a single attribute: LHSs that *contain*
the attribute live in the right subtree, LHSs that do not live in the left
subtree (Fig. 4 of the paper).  Leaves hold exactly one LHS.

Two masks are maintained per internal node to terminate searches early:

* ``inter`` — the intersection of every LHS stored below the node.  A
  stored LHS can only be a *subset* of a query X when ``inter ⊆ X``
  (this is the paper's "finish the unnecessary search in advance if an
  intersection is not included in the LHS being checked").
* ``union`` — the union of every LHS stored below.  A stored LHS can only
  be a *superset* of X when ``X ⊆ union``; the symmetric prune for
  specialization checks.

Compared with the classic FD-tree [11], a path is shared between LHSs only
while they agree on the tested attributes, so memory stays proportional to
the number of stored LHSs.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from . import attrset


class _Node:
    """A tree node; a leaf when ``attr is None`` (then ``lhs`` is set)."""

    __slots__ = ("attr", "left", "right", "lhs", "inter", "union")

    def __init__(self) -> None:
        self.attr: int | None = None
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.lhs: int = 0
        self.inter: int = 0
        self.union: int = 0

    @classmethod
    def leaf(cls, lhs: int) -> "_Node":
        node = cls()
        node.lhs = lhs
        node.inter = lhs
        node.union = lhs
        return node

    @classmethod
    def internal(cls, attr: int, left: "_Node", right: "_Node") -> "_Node":
        node = cls()
        node.attr = attr
        node.left = left
        node.right = right
        node.refresh()
        return node

    @property
    def is_leaf(self) -> bool:
        return self.attr is None

    def refresh(self) -> None:
        """Recompute ``inter``/``union`` from the (internal) node's children."""
        assert self.left is not None and self.right is not None
        self.inter = self.left.inter & self.right.inter
        self.union = self.left.union | self.right.union


class BinaryLhsTree:
    """Extended binary tree over LHS bitmasks (implements ``LhsIndex``).

    ``attr_priority`` optionally maps each attribute index to a rank; when
    a leaf must be split, the distinguishing attribute with the smallest
    rank is chosen.  The paper sorts attributes by ascending frequency so
    that rare attributes discriminate close to the root; callers that know
    attribute frequencies pass that ordering, everyone else gets the
    identity ordering.
    """

    __slots__ = ("_root", "_size", "_priority")

    def __init__(
        self,
        masks: Iterator[int] | None = None,
        attr_priority: Sequence[int] | None = None,
    ) -> None:
        self._root: _Node | None = None
        self._size = 0
        self._priority = attr_priority
        if masks is not None:
            for mask in masks:
                self.add(mask)

    # -- mutation ----------------------------------------------------------

    def add(self, lhs: int) -> bool:
        """Insert ``lhs``; return False when it was already present.

        Mutates: self
        """
        if self._root is None:
            self._root = _Node.leaf(lhs)
            self._size = 1
            return True
        path: list[_Node] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            assert node.attr is not None
            node = node.right if attrset.contains(lhs, node.attr) else node.left
            assert node is not None
        if node.lhs == lhs:
            return False
        split = self._split_attribute(node.lhs, lhs)
        new_leaf = _Node.leaf(lhs)
        old_leaf = _Node.leaf(node.lhs)
        # Reuse ``node`` as the new internal node so the parent pointer
        # (held implicitly via ``path``) stays valid.
        node.attr = split
        if attrset.contains(lhs, split):
            node.left, node.right = old_leaf, new_leaf
        else:
            node.left, node.right = new_leaf, old_leaf
        node.lhs = 0
        node.refresh()
        # Ancestors only gain one descendant: tighten their masks in O(1)
        # instead of recomputing from both children.
        for ancestor in path:
            ancestor.inter &= lhs
            ancestor.union |= lhs
        self._size += 1
        return True

    def remove(self, lhs: int) -> bool:
        """Remove ``lhs``; return False when it was not present.

        Mutates: self
        """
        if self._root is None:
            return False
        if self._root.is_leaf:
            if self._root.lhs != lhs:
                return False
            self._root = None
            self._size = 0
            return True
        path: list[_Node] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            assert node.attr is not None
            node = node.right if attrset.contains(lhs, node.attr) else node.left
            assert node is not None
        if node.lhs != lhs:
            return False
        parent = path[-1]
        sibling = parent.left if parent.right is node else parent.right
        assert sibling is not None
        # Collapse the parent into the sibling, preserving object identity
        # of the parent so grandparents need no child rewiring.
        parent.attr = sibling.attr
        parent.left = sibling.left
        parent.right = sibling.right
        parent.lhs = sibling.lhs
        parent.inter = sibling.inter
        parent.union = sibling.union
        for ancestor in reversed(path[:-1]):
            ancestor.refresh()
        self._size -= 1
        return True

    def _split_attribute(self, stored: int, incoming: int) -> int:
        """Pick the attribute distinguishing two unequal LHSs."""
        difference = stored ^ incoming
        if self._priority is None:
            return attrset.lowest_bit(difference)
        return min(attrset.to_indices(difference), key=self._priority.__getitem__)

    # -- queries -----------------------------------------------------------

    def __contains__(self, lhs: int) -> bool:
        node = self._root
        while node is not None and not node.is_leaf:
            assert node.attr is not None
            node = node.right if attrset.contains(lhs, node.attr) else node.left
        return node is not None and node.lhs == lhs

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[int]:
        yield from sorted(self._iter_all())

    def _iter_all(self) -> Iterator[int]:
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node.lhs
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)

    # The four lattice queries below are the hottest code in the whole
    # package (the inversion module calls them millions of times), so they
    # are written as explicit-stack loops over slot attributes rather than
    # recursion, and test bits inline instead of via attrset helpers.

    def contains_superset(self, lhs: int) -> bool:
        """Specialization check (read-only).

        Pure: a pruned traversal; no node is modified.
        """
        node = self._root
        if node is None:
            return False
        stack = [node]
        while stack:
            node = stack.pop()
            if lhs & ~node.union:
                continue
            attr = node.attr
            if attr is None:
                if lhs & ~node.lhs == 0:
                    return True
                continue
            stack.append(node.right)
            # The left subtree stores LHSs lacking ``attr``; they can only
            # be supersets when the query also lacks it.
            if not (lhs >> attr) & 1:
                stack.append(node.left)
        return False

    def contains_subset(self, lhs: int) -> bool:
        """Generalization check (read-only).

        Pure: a pruned traversal; no node is modified.
        """
        node = self._root
        if node is None:
            return False
        stack = [node]
        while stack:
            node = stack.pop()
            if node.inter & ~lhs:
                continue
            attr = node.attr
            if attr is None:
                if node.lhs & ~lhs == 0:
                    return True
                continue
            stack.append(node.left)
            if (lhs >> attr) & 1:
                stack.append(node.right)
        return False

    def contains_subset_containing(self, lhs: int, attr: int) -> bool:
        """Like :meth:`contains_subset`, restricted to LHSs containing ``attr``.

        The inversion module proves that any stored generalization of a
        fresh candidate ``g ∪ {b}`` must contain ``b``; requiring the
        attribute lets the search skip every subtree whose union lacks it
        (in particular the whole left subtree of the node testing ``b``).

        Pure: a pruned traversal; no node is modified.
        """
        node = self._root
        if node is None:
            return False
        stack = [node]
        while stack:
            node = stack.pop()
            if node.inter & ~lhs or not (node.union >> attr) & 1:
                continue
            node_attr = node.attr
            if node_attr is None:
                if node.lhs & ~lhs == 0 and (node.lhs >> attr) & 1:
                    return True
                continue
            stack.append(node.left)
            if (lhs >> node_attr) & 1:
                stack.append(node.right)
        return False

    def find_supersets(self, lhs: int) -> list[int]:
        """All stored supersets of ``lhs``, sorted.

        Pure: builds a fresh list; the tree is only read.
        """
        found: list[int] = []
        node = self._root
        if node is None:
            return found
        stack = [node]
        while stack:
            node = stack.pop()
            if lhs & ~node.union:
                continue
            attr = node.attr
            if attr is None:
                if lhs & ~node.lhs == 0:
                    found.append(node.lhs)
                continue
            stack.append(node.right)
            if not (lhs >> attr) & 1:
                stack.append(node.left)
        found.sort()
        return found

    def find_subsets(self, lhs: int) -> list[int]:
        """All stored subsets of ``lhs``, sorted.

        Pure: builds a fresh list; the tree is only read.
        """
        found: list[int] = []
        node = self._root
        if node is None:
            return found
        stack = [node]
        while stack:
            node = stack.pop()
            if node.inter & ~lhs:
                continue
            attr = node.attr
            if attr is None:
                if node.lhs & ~lhs == 0:
                    found.append(node.lhs)
                continue
            stack.append(node.left)
            if (lhs >> attr) & 1:
                stack.append(node.right)
        found.sort()
        return found

    # -- diagnostics -------------------------------------------------------

    def depth(self) -> int:
        """Height of the tree; 0 for the empty tree, 1 for a single leaf."""

        def measure(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + max(measure(node.left), measure(node.right))

        return measure(self._root)

    def check_invariants(self) -> None:
        """Validate structural invariants; used by the test suite."""

        def walk(node: _Node, excluded: int, required: int) -> tuple[int, int]:
            if node.is_leaf:
                if node.lhs & excluded:
                    raise AssertionError("leaf stores an excluded attribute")
                if required & ~node.lhs:
                    raise AssertionError("leaf misses a required attribute")
                if node.inter != node.lhs or node.union != node.lhs:
                    raise AssertionError("leaf masks out of sync")
                return node.inter, node.union
            assert node.attr is not None
            bit = attrset.singleton(node.attr)
            assert node.left is not None and node.right is not None
            left = walk(node.left, excluded | bit, required)
            right = walk(node.right, excluded, required | bit)
            inter = left[0] & right[0]
            union = left[1] | right[1]
            if node.inter != inter or node.union != union:
                raise AssertionError("internal masks out of sync")
            return inter, union

        if self._root is not None:
            walk(self._root, 0, 0)
        count = sum(1 for _ in self._iter_all())
        if count != self._size:
            raise AssertionError(f"size {self._size} != leaf count {count}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinaryLhsTree(size={self._size}, depth={self.depth()})"
