"""The cached partition store (DESIGN.md §8).

Stripped partitions are the workhorse of lattice-style discovery and the
single most recomputed structure in the repo: Tane derives one per
lattice node, the key-minimality checks re-refine against singletons,
and repeated bench runs used to rebuild identical partitions from the
columns every time.  :class:`PartitionStore` centralizes them:

* **Keying** — one entry per attribute-set bitmask.  The empty set and
  every singleton are *pinned*: they come straight from preprocessing,
  cost nothing to keep, and anchor every derivation.
* **Derivation** — a missing partition is never recomputed from the
  columns.  It is derived by the stripped-partition product of the
  cheapest cached parent pair: the largest cached subset of the target,
  refined by the cheapest cached cover of the remaining attributes
  (recursing toward singletons when no cover is cached).  This is
  exactly Tane's level-to-level product when the parents are warm, and a
  short product chain when they are not.
* **Eviction** — a bounded LRU over the non-pinned entries.  Evicting
  never loses correctness: a future request re-derives the partition
  from whatever ancestors survived.

Cache traffic is counted twice over: plain integers (:meth:`stats`, for
telemetry rows with tracing off) and ``engine.partition_cache.{hit,miss,
derive,evict}`` counters on the active obs recorder.
"""

from __future__ import annotations

from collections import OrderedDict

from ..fd import attrset
from ..obs import counter
from ..relation.partition import StrippedPartition
from ..relation.preprocess import PreprocessedRelation

DEFAULT_CACHE_SIZE = 4096
"""Non-pinned entries kept before LRU eviction."""


class PartitionStore:
    """LRU-cached stripped partitions keyed by attribute-set bitmask."""

    def __init__(
        self,
        data: PreprocessedRelation,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        self._data = data
        self._cache_size = cache_size
        num_rows = data.num_rows
        # π(∅): one class holding every tuple (empty when it could not
        # possibly violate anything, i.e. fewer than two rows).
        empty = StrippedPartition(
            [tuple(range(num_rows))] if num_rows > 1 else [], num_rows
        )
        self._pinned: dict[int, StrippedPartition] = {attrset.EMPTY: empty}
        for attribute, partition in enumerate(data.stripped):
            self._pinned[attrset.singleton(attribute)] = partition
        self._cache: OrderedDict[int, StrippedPartition] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.derives = 0
        self.evictions = 0

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def __len__(self) -> int:
        """Cached entries, pinned ones included."""
        return len(self._pinned) + len(self._cache)

    def __contains__(self, mask: int) -> bool:
        return mask in self._pinned or mask in self._cache

    def stats(self) -> dict[str, int]:
        """Cache-traffic snapshot: hits, misses, derives, evictions."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "derives": self.derives,
            "evictions": self.evictions,
        }

    # -- lookup ----------------------------------------------------------------

    def get(self, mask: int) -> StrippedPartition:
        """The stripped partition on ``mask``, cached or derived.

        Mutates: self
        """
        pinned = self._pinned.get(mask)
        if pinned is not None:
            self.hits += 1
            counter("engine.partition_cache.hit")
            return pinned
        cached = self._cache.get(mask)
        if cached is not None:
            self._cache.move_to_end(mask)
            self.hits += 1
            counter("engine.partition_cache.hit")
            return cached
        self.misses += 1
        counter("engine.partition_cache.miss")
        partition = self._derive(mask)
        self._store(mask, partition)
        return partition

    def put(self, mask: int, partition: StrippedPartition) -> None:
        """Deposit an externally computed partition (no derivation).

        Mutates: self
        """
        if partition.num_rows != self._data.num_rows:
            raise ValueError("partition over a different relation")
        if mask in self._pinned:
            return
        self._store(mask, partition)

    # -- derivation ------------------------------------------------------------

    def _derive(self, mask: int) -> StrippedPartition:
        """Product of the cheapest cached parent pair covering ``mask``."""
        self.derives += 1
        counter("engine.partition_cache.derive")
        base_mask, base = self._largest_cached_subset(mask)
        remainder = mask & ~base_mask
        partner = self._cheapest_cover(mask, remainder)
        if partner is None:
            # No cached partition covers the remaining attributes in one
            # piece; build it (recursively) and let it enter the cache.
            partner = self.get(remainder)
        return base.product(partner)

    def _largest_cached_subset(
        self, mask: int
    ) -> tuple[int, StrippedPartition]:
        """The cached strict subset of ``mask`` with the most attributes.

        Ties break toward fewer grouped rows (the cheaper product
        operand).  Singletons are pinned, so at least one subset always
        exists for any non-empty mask.
        """
        best_mask = attrset.EMPTY
        best = self._pinned[attrset.EMPTY]
        best_key = (-1, 0)
        for candidate_mask, candidate in self._iter_subsets_of(mask):
            key = (attrset.size(candidate_mask), -candidate.num_grouped_rows)
            if key > best_key:
                best_key = key
                best_mask = candidate_mask
                best = candidate
        return best_mask, best

    def _cheapest_cover(
        self, mask: int, remainder: int
    ) -> StrippedPartition | None:
        """The cheapest cached subset of ``mask`` containing ``remainder``."""
        best: StrippedPartition | None = None
        for candidate_mask, candidate in self._iter_subsets_of(mask):
            if remainder & ~candidate_mask:
                continue
            if best is None or candidate.num_grouped_rows < best.num_grouped_rows:
                best = candidate
        return best

    def _iter_subsets_of(self, mask: int):
        """Every cached/pinned (sub_mask, partition) with sub_mask ⊂ mask."""
        remaining = mask
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            yield bit, self._pinned[bit]
        for candidate_mask, candidate in self._cache.items():
            if candidate_mask != mask and not candidate_mask & ~mask:
                yield candidate_mask, candidate

    def _store(self, mask: int, partition: StrippedPartition) -> None:
        self._cache[mask] = partition
        self._cache.move_to_end(mask)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self.evictions += 1
            counter("engine.partition_cache.evict")
