"""The cached partition store (DESIGN.md §8).

Stripped partitions are the workhorse of lattice-style discovery and the
single most recomputed structure in the repo: Tane derives one per
lattice node, the key-minimality checks re-refine against singletons,
and repeated bench runs used to rebuild identical partitions from the
columns every time.  :class:`PartitionStore` centralizes them:

* **Keying** — one entry per attribute-set bitmask.  The empty set and
  every singleton are *pinned*: they come straight from preprocessing,
  cost nothing to keep, and anchor every derivation.
* **Derivation** — a missing partition is never recomputed from the
  columns.  It is derived by the stripped-partition product of the
  cheapest cached parent pair: the largest cached subset of the target,
  refined by the cheapest cached cover of the remaining attributes
  (recursing toward singletons when no cover is cached).  This is
  exactly Tane's level-to-level product when the parents are warm, and a
  short product chain when they are not.
* **Eviction** — a bounded LRU over the non-pinned entries, bounded
  twice: by entry count (``cache_size``) and, when ``max_bytes`` is
  set, by the estimated resident bytes of the cached partitions
  (:func:`partition_cost_bytes`).  The byte bound is what stops a burst
  of wide partitions — few entries, many clusters each — from blowing
  past the memory the entry count was meant to cap.  Partitions the
  cost model cannot size fall back to entry-count accounting alone.
  Evicting never loses correctness: a future request re-derives the
  partition from whatever ancestors survived.

Cache traffic is counted three times over: plain integers
(:meth:`stats`, for telemetry rows with tracing off), per-run
``engine.partition_cache.*`` counters on the active obs recorder, and
process-wide counters plus a resident-bytes gauge on the active metrics
registry (DESIGN.md §10).
"""

from __future__ import annotations

from collections import OrderedDict

from ..fd import attrset
from ..obs import counter, metric_gauge_set, metric_inc
from ..obs.names import (
    INCREMENTAL_STORE_DELTA_APPLIED,
    INCREMENTAL_STORE_DELTA_REBUILT,
    PARTITION_CACHE_DERIVE,
    PARTITION_CACHE_EVICT,
    PARTITION_CACHE_EVICTED_BYTES,
    PARTITION_CACHE_HIT,
    PARTITION_CACHE_MISS,
    PARTITION_CACHE_RESIDENT_BYTES,
)
from ..relation.partition import StrippedPartition
from ..relation.preprocess import AppendDelta, PreprocessedRelation

DEFAULT_CACHE_SIZE = 4096
"""Non-pinned entries kept before LRU eviction."""

DELTA_EXTEND_LIMIT = 32
"""Most-recently-used cached entries extended in place per append; colder
entries are released instead (to be re-derived on demand from the
delta-maintained pinned layer), bounding per-append work."""

ENTRY_OVERHEAD_BYTES = 96
"""Estimated fixed cost per cached entry (dict slot, key, object header)."""

CLUSTER_OVERHEAD_BYTES = 56
"""Estimated cost per cluster tuple beyond its row references."""

ROW_REF_BYTES = 8
"""Estimated cost per row reference inside a cluster — the historical
constant, sized for int64 label storage."""


def label_width_bytes(data: object) -> int:
    """Bytes one label occupies under ``data``'s materialized representation.

    The per-grouped-row charge of the byte cost model: historically a
    flat :data:`ROW_REF_BYTES` (an int64 word), which over-charges
    relations served by the columnar backend — their derivation working
    set per row is the widest *encoded* column's itemsize (1, 2, or 4
    bytes).  Reads only an already-materialized encoding (the ``encoded``
    property, never the encoding accessor), so matrix backends keep the
    historical accounting to the byte.

    Pure: reads representation metadata only.
    """
    encoded = getattr(data, "encoded", None)
    if encoded is None:
        return ROW_REF_BYTES
    return max(
        (int(column.dtype.itemsize) for column in encoded.columns),
        default=ROW_REF_BYTES,
    )


def partition_cost_bytes(
    partition: object, row_ref_bytes: int = ROW_REF_BYTES
) -> int | None:
    """Estimated resident bytes of one cached partition, or None.

    A deterministic linear model over the stripped representation —
    fixed entry overhead, one tuple header per cluster,
    ``row_ref_bytes`` per grouped row — rather than a recursive
    ``sys.getsizeof`` walk, so repeated sizing of hot partitions costs
    two attribute reads.  ``row_ref_bytes`` is the representation-aware
    per-row charge (:func:`label_width_bytes`); the default keeps the
    historical int64 assumption for bare calls.  Returns None for
    objects without the stripped-partition shape (the store then falls
    back to entry-count accounting).

    Pure: reads two attributes, computes an int.
    """
    try:
        num_clusters = len(partition.clusters)
        grouped = partition.num_grouped_rows
    except (AttributeError, TypeError):
        return None
    return (
        ENTRY_OVERHEAD_BYTES
        + CLUSTER_OVERHEAD_BYTES * num_clusters
        + row_ref_bytes * grouped
    )


class PartitionStore:
    """LRU-cached stripped partitions keyed by attribute-set bitmask."""

    def __init__(
        self,
        data: PreprocessedRelation,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_bytes: int | None = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._data = data
        self._cache_size = cache_size
        self._max_bytes = max_bytes
        # Per-grouped-row charge under this relation's representation:
        # 8 for the int64 matrix, the widest encoded column's itemsize
        # (1/2/4) once the columnar backend has materialized it.
        self._row_ref_bytes = label_width_bytes(data)
        num_rows = data.num_rows
        # π(∅): one class holding every tuple (empty when it could not
        # possibly violate anything, i.e. fewer than two rows).
        empty = StrippedPartition(
            [tuple(range(num_rows))] if num_rows > 1 else [], num_rows
        )
        self._pinned: dict[int, StrippedPartition] = {attrset.EMPTY: empty}
        for attribute, partition in enumerate(data.stripped):
            self._pinned[attrset.singleton(attribute)] = partition
        self._pinned_bytes = sum(
            partition_cost_bytes(partition, self._row_ref_bytes) or 0
            for partition in self._pinned.values()
        )
        self._cache: OrderedDict[int, StrippedPartition] = OrderedDict()
        self._costs: dict[int, int] = {}
        self._cached_bytes = 0
        self.hits = 0
        self.misses = 0
        self.derives = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.delta_applied = 0
        self.delta_rebuilt = 0
        metric_gauge_set(PARTITION_CACHE_RESIDENT_BYTES, float(self.resident_bytes))

    @property
    def cache_size(self) -> int:
        return self._cache_size

    @property
    def max_bytes(self) -> int | None:
        """Byte bound on the non-pinned entries (None: entry count only)."""
        return self._max_bytes

    @property
    def row_ref_bytes(self) -> int:
        """Per-grouped-row byte charge under the relation's representation."""
        return self._row_ref_bytes

    @property
    def resident_bytes(self) -> int:
        """Estimated bytes held by the store, pinned entries included."""
        return self._pinned_bytes + self._cached_bytes

    def __len__(self) -> int:
        """Cached entries, pinned ones included."""
        return len(self._pinned) + len(self._cache)

    def __contains__(self, mask: int) -> bool:
        return mask in self._pinned or mask in self._cache

    def stats(self) -> dict[str, int]:
        """Cache-traffic snapshot: monotonic counts, safe to delta."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "derives": self.derives,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "delta_applied": self.delta_applied,
            "delta_rebuilt": self.delta_rebuilt,
        }

    # -- lookup ----------------------------------------------------------------

    def get(self, mask: int) -> StrippedPartition:
        """The stripped partition on ``mask``, cached or derived.

        Mutates: self
        """
        pinned = self._pinned.get(mask)
        if pinned is not None:
            self.hits += 1
            counter(PARTITION_CACHE_HIT)
            metric_inc(PARTITION_CACHE_HIT)
            return pinned
        cached = self._cache.get(mask)
        if cached is not None:
            self._cache.move_to_end(mask)
            self.hits += 1
            counter(PARTITION_CACHE_HIT)
            metric_inc(PARTITION_CACHE_HIT)
            return cached
        self.misses += 1
        counter(PARTITION_CACHE_MISS)
        metric_inc(PARTITION_CACHE_MISS)
        partition = self._derive(mask)
        self._store(mask, partition)
        return partition

    def put(self, mask: int, partition: StrippedPartition) -> None:
        """Deposit an externally computed partition (no derivation).

        Mutates: self
        """
        if partition.num_rows != self._data.num_rows:
            raise ValueError("partition over a different relation")
        if mask in self._pinned:
            return
        self._store(mask, partition)

    # -- delta updates -----------------------------------------------------------

    def apply_delta(self, data: PreprocessedRelation, delta: AppendDelta) -> None:
        """Advance the store to the post-append snapshot ``data`` in place.

        The pinned layer is delta-maintained for free: π(∅) grows by the
        new row indices and the singletons re-point at ``data.stripped``,
        whose cluster tuples the preprocessing delta already extended
        with structural sharing.  Cached derived entries are extended
        with the new rows' cluster memberships — up to
        :data:`DELTA_EXTEND_LIMIT` most-recently-used entries per append
        (``delta_applied``); colder entries are released and re-derived
        on demand from the extended pinned layer (``delta_rebuilt``).
        Either way the cache is never blanket-invalidated, and every
        surviving entry is exact over the grown relation.

        Mutates: self
        """
        old_rows = self._data.num_rows
        if delta.first_new != old_rows or data.num_rows < old_rows:
            raise ValueError(
                f"delta does not extend this store's relation: store at "
                f"{old_rows} rows, delta covers "
                f"[{delta.first_new}, {delta.num_rows})"
            )
        self._data = data
        num_rows = data.num_rows
        self._row_ref_bytes = label_width_bytes(data)
        empty = StrippedPartition.from_tuples(
            (tuple(range(num_rows)),) if num_rows > 1 else (), num_rows
        )
        self._pinned[attrset.EMPTY] = empty
        for attribute, partition in enumerate(data.stripped):
            self._pinned[attrset.singleton(attribute)] = partition
        self._pinned_bytes = sum(
            partition_cost_bytes(partition, self._row_ref_bytes) or 0
            for partition in self._pinned.values()
        )
        # new-row -> single-attribute cluster maps, built lazily per
        # attribute and shared across all extended entries of this delta
        membership: dict[int, dict[int, tuple[int, ...]]] = {}
        ordered = list(self._cache.keys())  # LRU -> MRU
        keep = set(ordered[-DELTA_EXTEND_LIMIT:])
        for mask in ordered:
            if mask in keep:
                extended = self._extend_partition(
                    mask, self._cache[mask], delta, membership
                )
                self._cache[mask] = extended
                previous_cost = self._costs.pop(mask, 0)
                self._cached_bytes -= previous_cost
                cost = partition_cost_bytes(extended, self._row_ref_bytes)
                if cost is not None:
                    self._costs[mask] = cost
                    self._cached_bytes += cost
                self.delta_applied += 1
                metric_inc(INCREMENTAL_STORE_DELTA_APPLIED)
            else:
                del self._cache[mask]
                self._cached_bytes -= self._costs.pop(mask, 0)
                self.delta_rebuilt += 1
                metric_inc(INCREMENTAL_STORE_DELTA_REBUILT)
        metric_gauge_set(PARTITION_CACHE_RESIDENT_BYTES, float(self.resident_bytes))

    def _extend_partition(
        self,
        mask: int,
        partition: StrippedPartition,
        delta: AppendDelta,
        membership: dict[int, dict[int, tuple[int, ...]]],
    ) -> StrippedPartition:
        """``partition`` on ``mask``, exact over the grown relation.

        New rows are placed by their label key over the mask's
        attributes: a key matching an existing cluster joins it, keys
        shared by several new rows open a fresh cluster, and a key seen
        by exactly one new row can only pair with a previously-singleton
        old row — found by scanning the new row's (delta-extended)
        single-attribute cluster, which contains every old row agreeing
        on at least the first mask attribute.  At most one such partner
        can exist: two old rows agreeing on the whole mask would already
        share a cluster.  Work is O(batch × |mask| + clusters), never a
        re-grouping of old rows.  The shared ``membership`` cache is
        filled lazily with the first attribute's new-row cluster map.

        Mutates: membership
        """
        data = self._data
        matrix = data.matrix
        attrs = attrset.to_tuple(mask)
        first_new = delta.first_new
        index: dict[tuple[int, ...], int] = {}
        for position, cluster in enumerate(partition.clusters):
            anchor = cluster[0]
            index[tuple(int(matrix[anchor, a]) for a in attrs)] = position
        first_attr = attrs[0]
        lookup = membership.get(first_attr)
        if lookup is None:
            lookup = {
                row: cluster
                for cluster in delta.touched[first_attr]
                for row in cluster
                if row >= first_new
            }
            membership[first_attr] = lookup
        additions: dict[int, list[int]] = {}
        fresh: dict[tuple[int, ...], list[int]] = {}
        for row in range(first_new, data.num_rows):
            key = tuple(int(matrix[row, a]) for a in attrs)
            position = index.get(key)
            if position is not None:
                additions.setdefault(position, []).append(row)
                continue
            group = fresh.get(key)
            if group is not None:
                group.append(row)
                continue
            fresh[key] = group = [row]
            candidates = lookup.get(row, ())
            labels = matrix[row]
            for mate in candidates:
                if mate >= first_new:
                    continue
                if all(int(matrix[mate, a]) == int(labels[a]) for a in attrs):
                    group.insert(0, mate)
                    break
        clusters: list[tuple[int, ...]] = []
        grouped = partition.num_grouped_rows
        for position, cluster in enumerate(partition.clusters):
            extra = additions.get(position)
            if extra is None:
                clusters.append(cluster)
            else:
                clusters.append(cluster + tuple(extra))
                grouped += len(extra)
        born = sorted(
            (group for group in fresh.values() if len(group) >= 2),
            key=lambda group: group[0],
        )
        for group in born:
            clusters.append(tuple(group))
            grouped += len(group)
        return StrippedPartition.from_tuples(
            tuple(clusters), data.num_rows, grouped
        )

    # -- derivation ------------------------------------------------------------

    def _derive(self, mask: int) -> StrippedPartition:
        """Product of the cheapest cached parent pair covering ``mask``."""
        self.derives += 1
        counter(PARTITION_CACHE_DERIVE)
        metric_inc(PARTITION_CACHE_DERIVE)
        base_mask, base = self._largest_cached_subset(mask)
        remainder = mask & ~base_mask
        partner = self._cheapest_cover(mask, remainder)
        if partner is None:
            # No cached partition covers the remaining attributes in one
            # piece; build it (recursively) and let it enter the cache.
            partner = self.get(remainder)
        return base.product(partner)

    def _largest_cached_subset(
        self, mask: int
    ) -> tuple[int, StrippedPartition]:
        """The cached strict subset of ``mask`` with the most attributes.

        Ties break toward fewer grouped rows (the cheaper product
        operand).  Singletons are pinned, so at least one subset always
        exists for any non-empty mask.
        """
        best_mask = attrset.EMPTY
        best = self._pinned[attrset.EMPTY]
        best_key = (-1, 0)
        for candidate_mask, candidate in self._iter_subsets_of(mask):
            key = (attrset.size(candidate_mask), -candidate.num_grouped_rows)
            if key > best_key:
                best_key = key
                best_mask = candidate_mask
                best = candidate
        return best_mask, best

    def _cheapest_cover(
        self, mask: int, remainder: int
    ) -> StrippedPartition | None:
        """The cheapest cached subset of ``mask`` containing ``remainder``."""
        best: StrippedPartition | None = None
        for candidate_mask, candidate in self._iter_subsets_of(mask):
            if remainder & ~candidate_mask:
                continue
            if best is None or candidate.num_grouped_rows < best.num_grouped_rows:
                best = candidate
        return best

    def _iter_subsets_of(self, mask: int):
        """Every cached/pinned (sub_mask, partition) with sub_mask ⊂ mask."""
        remaining = mask
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            yield bit, self._pinned[bit]
        for candidate_mask, candidate in self._cache.items():
            if candidate_mask != mask and not candidate_mask & ~mask:
                yield candidate_mask, candidate

    def _store(self, mask: int, partition: StrippedPartition) -> None:
        previous_cost = self._costs.pop(mask, 0)
        self._cached_bytes -= previous_cost
        cost = partition_cost_bytes(partition, self._row_ref_bytes)
        if cost is not None:
            self._costs[mask] = cost
            self._cached_bytes += cost
        self._cache[mask] = partition
        self._cache.move_to_end(mask)
        while self._cache and (
            len(self._cache) > self._cache_size
            or (
                self._max_bytes is not None
                and self._cached_bytes > self._max_bytes
            )
        ):
            evicted_mask, _ = self._cache.popitem(last=False)
            evicted_cost = self._costs.pop(evicted_mask, 0)
            self._cached_bytes -= evicted_cost
            self.evictions += 1
            self.evicted_bytes += evicted_cost
            counter(PARTITION_CACHE_EVICT)
            metric_inc(PARTITION_CACHE_EVICT)
            metric_inc(PARTITION_CACHE_EVICTED_BYTES, float(evicted_cost))
        metric_gauge_set(PARTITION_CACHE_RESIDENT_BYTES, float(self.resident_bytes))
