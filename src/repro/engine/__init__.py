"""``repro.engine`` — the shared execution layer (DESIGN.md §8).

One :class:`ExecutionContext` per relation mediates all partition and
validation work behind a pluggable :class:`Backend`:

* :class:`PartitionStore` — LRU-cached stripped partitions keyed by
  attribute set, derived by partition product from the cheapest cached
  parent pair instead of recomputed from columns;
* :meth:`ExecutionContext.validate_many` — batched candidate validation
  that folds group keys once per distinct LHS and reuses them across
  RHSs;
* :class:`NumpyBackend` / :class:`PythonBackend` — the vectorized
  kernels and a pure-Python fallback, selectable per call, via
  ``--backend`` on the CLIs, or the ``REPRO_BACKEND`` environment
  variable.

Callers running several algorithms over one dataset install a shared
context with :func:`use_context`; ``discover(relation)`` implementations
resolve it through :func:`acquire_context` and keep their signature.
"""

from .backends import (
    BACKEND_ENV,
    Backend,
    NumpyBackend,
    PythonBackend,
    backend_names,
    get_backend,
)
from .context import (
    ExecutionContext,
    Validation,
    acquire_context,
    current_context,
    use_context,
)
from .store import DEFAULT_CACHE_SIZE, PartitionStore

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "DEFAULT_CACHE_SIZE",
    "ExecutionContext",
    "NumpyBackend",
    "PartitionStore",
    "PythonBackend",
    "Validation",
    "acquire_context",
    "backend_names",
    "current_context",
    "get_backend",
    "use_context",
]
