"""``repro.engine`` — the shared execution layer (DESIGN.md §8).

One :class:`ExecutionContext` per relation mediates all partition and
validation work behind a pluggable :class:`Backend`:

* :class:`PartitionStore` — LRU-cached stripped partitions keyed by
  attribute set, derived by partition product from the cheapest cached
  parent pair instead of recomputed from columns;
* :meth:`ExecutionContext.validate_many` — batched candidate validation
  that folds group keys once per distinct LHS and reuses them across
  RHSs;
* :class:`NumpyBackend` / :class:`PythonBackend` /
  :class:`ColumnarBackend` — the vectorized kernels, a pure-Python
  fallback, and fused kernels over the dictionary-encoded columnar
  matrix (:mod:`repro.engine.columnar`), selectable per call, via
  ``--backend`` on the CLIs, or the ``REPRO_BACKEND`` environment
  variable;
* :class:`WorkerPool` (:mod:`repro.engine.parallel`) — sharded
  pair-sampling and validation across serial/thread/process executors,
  selected via ``--jobs`` on the CLIs or the ``REPRO_JOBS`` environment
  variable, with the label matrix shipped to process workers once over
  shared memory (:mod:`repro.engine.shm`) — or, for the columnar
  backend, the encoded matrix written once to a memory-mapped temp
  file that workers attach to without any copy; chunk plans are fixed
  and merges happen by chunk index, so results are byte-identical at
  any worker count.

Callers running several algorithms over one dataset install a shared
context with :func:`use_context`; ``discover(relation)`` implementations
resolve it through :func:`acquire_context` and keep their signature.
"""

from .backends import (
    BACKEND_ENV,
    Backend,
    ColumnarBackend,
    NumpyBackend,
    PythonBackend,
    backend_names,
    get_backend,
)
from .context import (
    ExecutionContext,
    Validation,
    acquire_context,
    current_context,
    use_context,
)
from .parallel import (
    JOBS_ENV,
    PoolSpec,
    WorkerPool,
    agree_masks_sharded,
    close_all_pools,
    distinct_agree_masks_sharded,
    get_pool,
    resolve_spec,
    run_cells_sharded,
)
from .store import DEFAULT_CACHE_SIZE, PartitionStore

__all__ = [
    "BACKEND_ENV",
    "Backend",
    "ColumnarBackend",
    "DEFAULT_CACHE_SIZE",
    "ExecutionContext",
    "JOBS_ENV",
    "NumpyBackend",
    "PartitionStore",
    "PoolSpec",
    "PythonBackend",
    "Validation",
    "WorkerPool",
    "acquire_context",
    "agree_masks_sharded",
    "backend_names",
    "close_all_pools",
    "current_context",
    "distinct_agree_masks_sharded",
    "get_backend",
    "get_pool",
    "resolve_spec",
    "run_cells_sharded",
    "use_context",
]
