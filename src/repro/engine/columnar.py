"""Fused columnar validation kernels (DESIGN.md §11).

These are the kernels behind :class:`~repro.engine.backends.ColumnarBackend`.
They operate on the :class:`~repro.relation.preprocess.EncodedMatrix` —
per-column dictionary encoding in the narrowest unsigned dtype that fits
the cardinality — instead of the canonical int64 label matrix, and they
fuse the passes the numpy backend keeps separate:

* :func:`encoded_group_keys` folds the LHS radix-style over the narrow
  columns into ``uint64`` keys, skipping cardinality-1 columns outright
  (a constant column never splits a group) and re-densifying via
  ``np.unique`` whenever the next multiplication could overflow — the
  same width-guard pattern as :func:`repro.relation.validate.fold_labels`
  (RPR108's historical fix), restated for unsigned radix keys.  The
  result carries its exclusive value bound (``domain``) so downstream
  kernels can allocate scatter tables directly.
* :func:`encoded_constant_on` tests RHS constancy in two linear passes —
  scatter one representative label per group, gather and compare — with
  no sort and no ``np.unique``.  Which group member lands in the table is
  irrelevant: a group is constant iff every member equals *any* fixed
  representative, so the check is deterministic even though numpy leaves
  duplicate-index assignment order unspecified.
* :func:`agree_masks_from_encoded` compares narrow contiguous columns
  pair-wise, skips constant columns, and bit-packs the agree rows; for
  relations of ≤ 64 attributes the packed rows are decoded through one
  ``uint64`` view instead of a per-pair ``int.from_bytes`` loop.

This module and ``relation/validate.py`` are the only places allowed to
widen labels to int64 on the hot path (RPR113).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relation.preprocess import (
    EncodedMatrix,
    encode_matrix,
    packed_agree_masks,
)

_KEY_LIMIT = 1 << 62
"""Re-densify radix keys before the next fold could overflow (mirrors
``relation/validate._FOLD_LIMIT``)."""

_MIN_SCATTER = 1024
"""Key domains up to this size never pay the final densify: the scatter
tables they imply are at most 1 KiB × itemsize."""


@dataclass(frozen=True)
class ColumnarKeys:
    """Per-row group keys plus the exclusive bound on their values.

    ``keys[i]`` is the group id of row ``i``; rows share an id iff they
    agree on every folded attribute.  ``domain`` bounds the id values
    (``0 <= keys[i] < domain``), letting the constancy kernel allocate a
    dense scatter table without inspecting the keys again.
    """

    keys: np.ndarray
    domain: int
    num_rows: int


def encoded_of(data: object) -> EncodedMatrix:
    """The :class:`EncodedMatrix` behind any relation-like object.

    ``PreprocessedRelation`` and the worker-side views expose
    ``encoded_matrix()``; anything else (a bare shared-memory
    ``MatrixView``) is encoded on the fly as a correctness fallback.
    """
    getter = getattr(data, "encoded_matrix", None)
    if getter is not None:
        return getter()
    return encode_matrix(data.matrix)


def _densified(keys: np.ndarray) -> tuple[np.ndarray, int]:
    """Compact key values to ``0..distinct-1``, preserving the grouping.

    Pure: returns fresh arrays; the input is not mutated.
    """
    uniques, inverse = np.unique(keys, return_inverse=True)
    return inverse, int(uniques.size)


def encoded_group_keys(encoded: EncodedMatrix, columns: "list[int]") -> ColumnarKeys:
    """Radix-fold the LHS columns into dense per-row group keys.

    Positional fold ``key*cardinality + label`` over the narrow encoded
    columns, exactly as the int64 kernel does, but: cardinality-1 columns
    are skipped (they cannot split groups), the accumulator is ``uint64``,
    and the running ``domain`` (product of folded cardinalities) is
    re-densified under the same overflow guard as
    :func:`repro.relation.validate.fold_labels`.  A final densify keeps
    the domain within ``max(2·rows, 1024)`` so scatter tables stay small.

    Pure: reads the encoding only; returns fresh keys.
    """
    num_rows = encoded.num_rows
    live = [j for j in columns if encoded.cardinalities[j] > 1]
    if not live or num_rows == 0:
        return ColumnarKeys(
            keys=np.zeros(num_rows, dtype=np.uint64), domain=1, num_rows=num_rows
        )
    keys = encoded.columns[live[0]].astype(np.uint64)
    domain = encoded.cardinalities[live[0]]
    for j in live[1:]:
        cardinality = encoded.cardinalities[j]
        if domain * cardinality >= _KEY_LIMIT:
            keys, domain = _densified(keys)
            if domain * cardinality >= _KEY_LIMIT:  # pragma: no cover
                raise OverflowError("radix key fold exceeded the width guard")
        keys = keys * cardinality + encoded.columns[j]
        domain *= cardinality
    if domain > max(2 * num_rows, _MIN_SCATTER):
        keys, domain = _densified(keys)
    return ColumnarKeys(keys=keys, domain=domain, num_rows=num_rows)


def encoded_constant_on(
    encoded: EncodedMatrix, keys: ColumnarKeys, rhs: int
) -> bool:
    """True when every key group is constant on attribute ``rhs``.

    Scatter a representative RHS label per group id, gather it back per
    row, and compare: constant groups agree with their representative
    everywhere, any split group disagrees on at least one row —
    whichever member the scatter kept.  Two O(n) passes, no sort.

    Pure: reads both inputs only.
    """
    if keys.num_rows <= 1 or encoded.cardinalities[rhs] <= 1:
        return True
    column = encoded.columns[rhs]
    representative = np.empty(keys.domain, dtype=column.dtype)
    representative[keys.keys] = column
    return bool(np.array_equal(representative[keys.keys], column))


def encoded_witness(
    encoded: EncodedMatrix, keys: ColumnarKeys, rhs: int
) -> "tuple[int, int] | None":
    """A row pair sharing a key but differing on ``rhs``, or None.

    The fast scatter check rules out the common (valid) case; only
    genuinely violated candidates pay the stable-sort scan, which makes
    the returned pair deterministic: the first adjacent conflict in
    key-sorted order, ties broken by row order.

    Pure: a read-only scan.
    """
    if encoded_constant_on(encoded, keys, rhs):
        return None
    column = encoded.columns[rhs]
    order = np.argsort(keys.keys, kind="stable")
    sorted_keys = keys.keys[order]
    sorted_labels = column[order]
    adjacent = (sorted_keys[1:] == sorted_keys[:-1]) & (
        sorted_labels[1:] != sorted_labels[:-1]
    )
    position = int(np.nonzero(adjacent)[0][0])
    return int(order[position]), int(order[position + 1])


def agree_masks_from_encoded(
    encoded: EncodedMatrix,
    rows_a: "np.ndarray | list[int]",
    rows_b: "np.ndarray | list[int]",
) -> "list[int]":
    """Agree masks of tuple pairs over the columnar encoding, in pair order.

    Gathers the encoding's per-dtype column blocks
    (:meth:`EncodedMatrix.dtype_blocks`) — one vectorized comparison per
    distinct width, over 1–4 bytes per cell instead of the matrix
    kernel's 8 — and skips cardinality-1 columns, whose pairs agree by
    definition.  Mask values are bit-identical to the int64 kernel's.

    Small pair batches against an encoding whose dtype blocks were never
    materialized gather per column instead: building the blocks is an
    O(rows × columns) copy, which would put a full-relation pass on the
    delta engine's O(batch) append path (DESIGN.md §12) just to compare
    a handful of pairs.  The bypass is bounded per instance: a delta
    append creates a fresh snapshot per batch so it always qualifies,
    while a long-lived encoding serving a stream of small sampling
    batches (a full discovery run) builds its blocks after a couple of
    gathers — per-column gathers repeated hundreds of times cost more
    than the one-time stack they were avoiding.
    """
    index_a = np.asarray(rows_a, dtype=np.intp)
    index_b = np.asarray(rows_b, dtype=np.intp)
    small_gathers = encoded.__dict__.get("_small_gathers", 0)
    if (
        encoded.__dict__.get("_blocks") is None
        and index_a.shape[0] * 4 < encoded.num_rows
        and small_gathers < 2
    ):
        object.__setattr__(encoded, "_small_gathers", small_gathers + 1)
        equal = np.ones(
            (int(index_a.shape[0]), encoded.num_columns), dtype=np.bool_
        )
        for j, column in enumerate(encoded.columns):
            if encoded.cardinalities[j] > 1:
                equal[:, j] = column[index_a] == column[index_b]
        return packed_agree_masks(equal)
    blocks = encoded.dtype_blocks()
    if len(blocks) == 1 and blocks[0][0].size == encoded.num_columns:
        # one width, no constant columns: compare in place, no scatter
        block = blocks[0][1]
        return packed_agree_masks(block[index_a] == block[index_b])
    equal = np.ones(
        (int(index_a.shape[0]), encoded.num_columns), dtype=np.bool_
    )
    for indices, block in blocks:
        equal[:, indices] = block[index_a] == block[index_b]
    return packed_agree_masks(equal)
