"""The shared execution layer: one context per preprocessed relation.

An :class:`ExecutionContext` owns everything derived from a relation —
the preprocessed label matrix, the partition store, the sampling
clusters, and the validation backend — and mediates all partition and
validation work.  Algorithms no longer preprocess privately or call the
validation kernels one candidate at a time; they acquire a context and
ask it.

Sharing model: callers that run several algorithms over one dataset
(the benchmark harness, ``repro-fd compare``) construct a single context
and install it with :func:`use_context`; each algorithm's
``discover(relation)`` then resolves it via :func:`acquire_context`,
which falls back to building a private context when none is installed or
the installed one wraps a different relation.  The partition cache and
cluster lists therefore span the whole algorithm matrix instead of dying
with each run.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from ..fd import attrset
from ..fd.fd import FD
from ..obs import counter, metric_inc, metric_time, phase_memory, span
from ..obs.names import (
    MEM_PHASE_PREPROCESS,
    VALIDATE_BATCH_SECONDS,
    VALIDATE_CANDIDATES,
    VALIDATE_LHS_FOLDS,
)
from ..relation.partition import StrippedPartition
from ..relation.preprocess import AppendDelta, PreprocessedRelation, preprocess
from ..relation.relation import Relation
from .backends import Backend, get_backend
from .parallel import (
    MIN_GROUPS_PER_WORKER,
    PoolSpec,
    WorkerPool,
    get_pool,
    validate_groups_sharded,
)
from .store import DEFAULT_CACHE_SIZE, PartitionStore


@dataclass(frozen=True)
class Validation:
    """Outcome of validating one candidate FD against the full relation.

    ``witness`` is a violating row pair when one was requested and the
    FD does not hold; requesting witnesses costs a sort per invalid
    candidate, so batch validators only ask when they will use them.
    """

    fd: FD
    holds: bool
    witness: tuple[int, int] | None = None


class ExecutionContext:
    """Mediated access to one relation's partitions and validation."""

    def __init__(
        self,
        relation: Relation,
        *,
        backend: str | Backend | None = None,
        null_equals_null: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        max_cache_bytes: int | None = None,
        jobs: int | str | PoolSpec | WorkerPool | None = None,
        delta: bool = False,
    ) -> None:
        self.backend = get_backend(backend)
        self.pool = jobs if isinstance(jobs, WorkerPool) else get_pool(jobs)
        self.null_equals_null = null_equals_null
        with span("preprocess", relation=relation.name), phase_memory(
            MEM_PHASE_PREPROCESS
        ):
            # ``delta=True`` retains the encoder state so append_rows is
            # O(batch) from the first batch — the streaming cold start.
            self.data: PreprocessedRelation = preprocess(
                relation, null_equals_null, delta=delta
            )
            # Representation-specific preparation (the columnar backend
            # materializes its EncodedMatrix here) is preprocessing:
            # inside the span, its cost lands in this phase's time and
            # memory attribution.
            prepare = getattr(self.backend, "prepare", None)
            if prepare is not None:
                prepare(self.data)
        self.partitions = PartitionStore(
            self.data, cache_size=cache_size, max_bytes=max_cache_bytes
        )
        self._clusters: dict[bool, list[tuple[int, ...]]] = {}

    # -- identity --------------------------------------------------------------

    @property
    def relation(self) -> Relation:
        return self.data.relation

    @property
    def num_rows(self) -> int:
        return self.data.num_rows

    @property
    def num_attributes(self) -> int:
        return self.data.num_columns

    def matches(self, relation: Relation, null_equals_null: bool) -> bool:
        """True when this context serves ``relation`` under these semantics."""
        return (
            self.data.relation is relation
            and self.null_equals_null == null_equals_null
        )

    # -- change batches ----------------------------------------------------------

    def append_rows(self, rows: Sequence[tuple]) -> AppendDelta:
        """Ingest a batch of new rows, keeping every derived layer warm.

        The change-batch API of the delta engine (DESIGN.md §12): the
        preprocessed relation, the columnar encoding (when the backend
        materialized one) and the partition store are all extended in
        place — O(batch) work, no re-encoding, no partition rebuilds —
        and the returned :class:`AppendDelta` tells callers exactly which
        clusters the new rows landed in.  Sampling-cluster lists are
        re-listed lazily from the delta-maintained partitions on next
        use (pointer-level work; the partitions themselves stay warm).

        Mutates: self
        """
        with span("append_rows", rows=len(rows)):
            data = self.data.append_rows(list(rows))
            delta = data.append_delta
            self.data = data
            self.partitions.apply_delta(data, delta)
            # cluster lists are cheap listings over the (warm) singleton
            # partitions; drop them and re-list on demand
            self._clusters.clear()
        return delta

    # -- partitions ------------------------------------------------------------

    def partition(self, mask: int) -> StrippedPartition:
        """The stripped partition on the attribute set ``mask`` (cached)."""
        return self.partitions.get(mask)

    def sampling_clusters(self, dedupe: bool = True) -> list[tuple[int, ...]]:
        """All single-attribute stripped clusters, optionally deduplicated.

        The shared cluster list the samplers of EulerFD, HyFD and AID-FD
        draw tuple pairs from; ``dedupe`` drops clusters containing
        exactly the rows of an already-listed cluster of another
        attribute (twins can only replay identical pairs).  Computed once
        per flag and cached.
        """
        cached = self._clusters.get(dedupe)
        if cached is not None:
            return cached
        clusters: list[tuple[int, ...]] = []
        registered: set[tuple[int, ...]] = set()
        for attribute in range(self.num_attributes):
            for rows in self.partitions.get(attrset.singleton(attribute)).clusters:
                if dedupe:
                    if rows in registered:
                        continue
                    registered.add(rows)
                clusters.append(rows)
        self._clusters[dedupe] = clusters
        return clusters

    # -- validation ------------------------------------------------------------

    def fd_holds(self, fd: FD) -> bool:
        """True when ``fd`` is valid on every tuple of the relation."""
        if self.num_rows <= 1:
            return True
        keys = self.backend.group_keys(self.data, fd.lhs)
        return self.backend.constant_on(self.data, keys, fd.rhs)

    def find_violation(self, fd: FD) -> tuple[int, int] | None:
        """A witnessing row pair for an invalid FD, or None when valid."""
        if self.num_rows <= 1:
            return None
        keys = self.backend.group_keys(self.data, fd.lhs)
        return self.backend.witness(self.data, keys, fd.rhs)

    def validate_many(
        self, fds: Sequence[FD], *, witnesses: bool = False
    ) -> list[Validation]:
        """Validate a candidate batch, folding group keys once per LHS.

        Candidates are processed sorted by LHS so every distinct LHS is
        folded into group keys exactly once and reused across all its
        RHSs — the batched replacement for per-FD ``fd_holds`` loops.
        Results come back in input order.  With ``witnesses=True`` each
        invalid candidate carries a violating row pair.

        On a parallel context (``jobs``), distinct-LHS groups are
        partitioned across the worker pool in sorted order and merged by
        chunk index; a group never straddles workers, so fold counts,
        outcomes and witnesses are identical to the serial path.
        """
        fds = list(fds)
        results: list[Validation | None] = [None] * len(fds)
        with span("validate_many", candidates=len(fds)), metric_time(
            VALIDATE_BATCH_SECONDS
        ):
            if self.num_rows <= 1:
                for index, fd in enumerate(fds):
                    results[index] = Validation(fd, True)
                return [v for v in results if v is not None]
            order = sorted(range(len(fds)), key=lambda i: (fds[i].lhs, fds[i].rhs))
            # Distinct-LHS groups in sorted order: the unit of key-fold
            # reuse, and the unit the worker pool shards by.
            groups: list[tuple[int, list[tuple[int, int]]]] = []
            for index in order:
                fd = fds[index]
                if not groups or groups[-1][0] != fd.lhs:
                    groups.append((fd.lhs, []))
                groups[-1][1].append((index, fd.rhs))
            pool = self.pool
            if (
                not pool.is_serial
                and len(groups) >= pool.jobs * MIN_GROUPS_PER_WORKER
            ):
                for index, holds, pair in validate_groups_sharded(
                    pool, self.data, self.backend.name, groups, witnesses
                ):
                    results[index] = Validation(
                        fds[index], holds, pair if witnesses else None
                    )
            else:
                for lhs, members in groups:
                    keys = self.backend.group_keys(self.data, lhs)
                    for index, rhs in members:
                        if witnesses:
                            pair = self.backend.witness(self.data, keys, rhs)
                            results[index] = Validation(fds[index], pair is None, pair)
                        else:
                            holds = self.backend.constant_on(self.data, keys, rhs)
                            results[index] = Validation(fds[index], holds)
            counter(VALIDATE_CANDIDATES, len(fds))
            counter(VALIDATE_LHS_FOLDS, len(groups))
            metric_inc(VALIDATE_CANDIDATES, float(len(fds)))
            metric_inc(VALIDATE_LHS_FOLDS, float(len(groups)))
        return [v for v in results if v is not None]

    def __repr__(self) -> str:
        return (
            f"ExecutionContext({self.relation.name!r}, "
            f"backend={self.backend.name!r}, "
            f"{self.num_rows}x{self.num_attributes})"
        )


# -- the active-context stack --------------------------------------------------

_ACTIVE = threading.local()


def current_context() -> ExecutionContext | None:
    """The innermost installed context of this thread, or None."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use_context(context: ExecutionContext) -> Iterator[ExecutionContext]:
    """Install ``context`` as this thread's active execution context."""
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(context)
    try:
        yield context
    finally:
        stack.pop()


def acquire_context(
    relation: Relation, null_equals_null: bool = True
) -> ExecutionContext:
    """The active context when it serves ``relation``, else a fresh one.

    The compat shim behind every ``discover(relation)``: algorithms keep
    their historical signature, and callers opt into sharing by
    installing a context with :func:`use_context`.  A mismatch (other
    relation, other NULL semantics) silently falls back to a private
    context so per-algorithm configuration keeps winning.
    """
    active = current_context()
    if active is not None and active.matches(relation, null_equals_null):
        return active
    return ExecutionContext(relation, null_equals_null=null_equals_null)
