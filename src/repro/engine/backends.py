"""Pluggable validation backends (DESIGN.md §8).

A :class:`Backend` owns the three validation kernels every algorithm
needs — fold a LHS into per-row group keys, test RHS constancy within
groups, and extract a witnessing row pair — so the *strategy* (vectorized
numpy vs pure Python) is swappable underneath an unchanged
:class:`~repro.engine.context.ExecutionContext` API.

Three implementations ship:

* :class:`NumpyBackend` — today's vectorized kernels from
  :mod:`repro.relation.validate`, moved behind the protocol.  The
  default.
* :class:`PythonBackend` — a dict-based pure-Python fallback with no
  numpy fast path.  Slower but dependency-light on the hot kernels, and
  the cross-check that keeps the vectorized code honest (the CI engine
  job runs the whole suite under ``REPRO_BACKEND=python``).
* :class:`ColumnarBackend` — fused kernels over the columnar
  :class:`~repro.relation.preprocess.EncodedMatrix`
  (:mod:`repro.engine.columnar`): radix group-key folds over narrow
  dtypes, sort-free constancy checks, and bit-packed agree masks.
  Declares ``needs_encoded`` so the execution layer materializes the
  encoding once (``prepare``) and ships it to process workers over an
  mmap-backed file instead of the shared-memory matrix copy.

Selection order: explicit argument, then the ``REPRO_BACKEND``
environment variable, then numpy.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

from ..fd import attrset
from ..relation.preprocess import (
    PreprocessedRelation,
    agree_masks_from_matrix,
)
from ..relation.validate import (
    constant_within_groups,
    group_keys,
    rhs_labels,
    violation_within_groups,
)
from .columnar import (
    agree_masks_from_encoded,
    encoded_constant_on,
    encoded_group_keys,
    encoded_of,
    encoded_witness,
)

BACKEND_ENV = "REPRO_BACKEND"
"""Environment variable naming the default backend."""

DEFAULT_BACKEND = "numpy"


@runtime_checkable
class Backend(Protocol):
    """The kernel strategy behind an execution context.

    ``group_keys`` returns an opaque per-row grouping (rows share a key
    iff they agree on every LHS attribute); ``constant_on`` and
    ``witness`` consume that object, so a backend may pick whatever
    representation folds fastest for it.  ``agree_masks`` is the
    sampling-side kernel: bitmasks of agreeing attributes for a batch of
    tuple pairs, bit-identical across backends.

    Backends that validate over a representation other than the int64
    label matrix additionally set ``needs_encoded = True`` and implement
    ``prepare(data)`` to materialize it; the execution layer resolves
    both via ``getattr`` so plain matrix backends need neither.
    """

    name: str

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Per-row group keys of the projection onto ``lhs``."""

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """True when every key group is constant on attribute ``rhs``."""

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """A row pair sharing a key but differing on ``rhs``, or None."""

    def agree_masks(
        self, data: PreprocessedRelation, rows_a: object, rows_b: object
    ) -> list[int]:
        """Agree bitmasks of many tuple pairs, in pair order."""


class NumpyBackend:
    """The vectorized kernels of :mod:`repro.relation.validate`."""

    name = "numpy"

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Guarded positional fold into dense int64 keys.

        Pure: delegates to the read-only numpy kernel.
        """
        return group_keys(data, lhs)

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """Two ``np.unique`` counts after the guarded RHS fold.

        Pure: a read-only comparison.
        """
        return constant_within_groups(keys, rhs_labels(data, rhs))

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """Stable-sort scan for an adjacent conflicting pair.

        Pure: a read-only scan.
        """
        return violation_within_groups(keys, rhs_labels(data, rhs))

    def agree_masks(
        self, data: PreprocessedRelation, rows_a: object, rows_b: object
    ) -> list[int]:
        """Vectorized row comparison over the int64 label matrix.

        Pure: delegates to the read-only matrix kernel.
        """
        return agree_masks_from_matrix(data.matrix, rows_a, rows_b)


class PythonBackend:
    """Dict-based pure-Python kernels — no numpy fast path.

    Group keys are plain tuples of the row's LHS labels (Python ints are
    unbounded, so no overflow guard is needed); constancy and witness
    extraction are single passes over a ``dict``.
    """

    name = "python"

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Rows of the label matrix projected onto ``lhs``, as tuples.

        Pure: builds a fresh list; the relation is not mutated.
        """
        columns = list(attrset.to_indices(lhs))
        if not columns:
            return [()] * data.num_rows
        rows = data.matrix[:, columns].tolist()
        return [tuple(row) for row in rows]

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """One pass remembering the first RHS label per group.

        Pure: a read-only scan.
        """
        labels = data.matrix[:, rhs].tolist()
        first: dict[object, int] = {}
        for key, label in zip(keys, labels):
            seen = first.setdefault(key, label)
            if seen != label:
                return False
        return True

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """First conflicting pair in row order, with its earliest peer.

        Pure: a read-only scan.
        """
        labels = data.matrix[:, rhs].tolist()
        first: dict[object, tuple[int, int]] = {}
        for row, (key, label) in enumerate(zip(keys, labels)):
            seen = first.setdefault(key, (row, label))
            if seen[1] != label:
                return seen[0], row
        return None

    def agree_masks(
        self, data: PreprocessedRelation, rows_a: object, rows_b: object
    ) -> list[int]:
        """Delegates to the shared matrix kernel.

        Agree masks are defined representation-independently, so the
        pure-Python backend keeps the one vectorized sampling kernel all
        matrix backends share rather than degrading the samplers.

        Pure: delegates to the read-only matrix kernel.
        """
        return agree_masks_from_matrix(data.matrix, rows_a, rows_b)


class ColumnarBackend:
    """Fused kernels over the columnar :class:`EncodedMatrix` encoding.

    Group keys fold radix-style over the narrow encoded columns,
    constancy is a sort-free scatter/gather check, witnesses fall back
    to a stable-sort scan only for genuinely violated candidates, and
    agree masks compare contiguous narrow columns with a bit-packed
    decode (:mod:`repro.engine.columnar`).  FD sets are bit-identical to
    the numpy backend's; only witness pairs may differ (as they already
    do between numpy and python), which the algorithms tolerate.
    """

    name = "columnar"

    needs_encoded = True
    """The execution layer materializes (and, for process pools,
    mmap-publishes) the encoded matrix for this backend."""

    def prepare(self, data: PreprocessedRelation) -> None:
        """Materialize the columnar encoding once, ahead of the kernels.

        Called by :class:`~repro.engine.context.ExecutionContext` inside
        the preprocess span so the encode cost lands in the preprocessing
        phase's memory attribution rather than the first validation.
        """
        encoded_of(data)

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Guarded radix fold into dense uint64 keys.

        May materialize the cached encoding on first use (prepare
        normally did already); the relation's labels are never mutated.
        """
        return encoded_group_keys(encoded_of(data), list(attrset.to_indices(lhs)))

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """Sort-free scatter/gather representative check."""
        return encoded_constant_on(encoded_of(data), keys, rhs)

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """Stable-sort scan, entered only for violated candidates."""
        return encoded_witness(encoded_of(data), keys, rhs)

    def agree_masks(
        self, data: PreprocessedRelation, rows_a: object, rows_b: object
    ) -> list[int]:
        """Column-at-a-time comparison with bit-packed mask decode."""
        return agree_masks_from_encoded(encoded_of(data), rows_a, rows_b)


_BACKENDS: dict[str, type] = {
    "columnar": ColumnarBackend,
    "numpy": NumpyBackend,
    "python": PythonBackend,
}


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_backend(name: str | Backend | None = None) -> Backend:
    """Resolve a backend instance from a name, instance, or the environment."""
    if name is not None and not isinstance(name, str):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {backend_names()}"
        ) from None
    return factory()
