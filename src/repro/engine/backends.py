"""Pluggable validation backends (DESIGN.md §8).

A :class:`Backend` owns the three validation kernels every algorithm
needs — fold a LHS into per-row group keys, test RHS constancy within
groups, and extract a witnessing row pair — so the *strategy* (vectorized
numpy vs pure Python) is swappable underneath an unchanged
:class:`~repro.engine.context.ExecutionContext` API.

Two implementations ship:

* :class:`NumpyBackend` — today's vectorized kernels from
  :mod:`repro.relation.validate`, moved behind the protocol.  The
  default.
* :class:`PythonBackend` — a dict-based pure-Python fallback with no
  numpy fast path.  Slower but dependency-light on the hot kernels, and
  the cross-check that keeps the vectorized code honest (the CI engine
  job runs the whole suite under ``REPRO_BACKEND=python``).

Selection order: explicit argument, then the ``REPRO_BACKEND``
environment variable, then numpy.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

from ..fd import attrset
from ..relation.preprocess import PreprocessedRelation
from ..relation.validate import (
    constant_within_groups,
    group_keys,
    violation_within_groups,
)

BACKEND_ENV = "REPRO_BACKEND"
"""Environment variable naming the default backend."""

DEFAULT_BACKEND = "numpy"


@runtime_checkable
class Backend(Protocol):
    """The kernel strategy behind an execution context.

    ``group_keys`` returns an opaque per-row grouping (rows share a key
    iff they agree on every LHS attribute); the other two kernels consume
    that object, so a backend may pick whatever representation folds
    fastest for it.
    """

    name: str

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Per-row group keys of the projection onto ``lhs``."""

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """True when every key group is constant on attribute ``rhs``."""

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """A row pair sharing a key but differing on ``rhs``, or None."""


class NumpyBackend:
    """The vectorized kernels of :mod:`repro.relation.validate`."""

    name = "numpy"

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Guarded positional fold into dense int64 keys.

        Pure: delegates to the read-only numpy kernel.
        """
        return group_keys(data, lhs)

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """Two ``np.unique`` counts after the guarded RHS fold.

        Pure: a read-only comparison.
        """
        rhs_labels = data.matrix[:, rhs].astype(np.int64)
        return constant_within_groups(keys, rhs_labels)

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """Stable-sort scan for an adjacent conflicting pair.

        Pure: a read-only scan.
        """
        rhs_labels = data.matrix[:, rhs].astype(np.int64)
        return violation_within_groups(keys, rhs_labels)


class PythonBackend:
    """Dict-based pure-Python kernels — no numpy fast path.

    Group keys are plain tuples of the row's LHS labels (Python ints are
    unbounded, so no overflow guard is needed); constancy and witness
    extraction are single passes over a ``dict``.
    """

    name = "python"

    def group_keys(self, data: PreprocessedRelation, lhs: int) -> object:
        """Rows of the label matrix projected onto ``lhs``, as tuples.

        Pure: builds a fresh list; the relation is not mutated.
        """
        columns = list(attrset.to_indices(lhs))
        if not columns:
            return [()] * data.num_rows
        rows = data.matrix[:, columns].tolist()
        return [tuple(row) for row in rows]

    def constant_on(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> bool:
        """One pass remembering the first RHS label per group.

        Pure: a read-only scan.
        """
        rhs_labels = data.matrix[:, rhs].tolist()
        first: dict[object, int] = {}
        for key, label in zip(keys, rhs_labels):
            seen = first.setdefault(key, label)
            if seen != label:
                return False
        return True

    def witness(
        self, data: PreprocessedRelation, keys: object, rhs: int
    ) -> tuple[int, int] | None:
        """First conflicting pair in row order, with its earliest peer.

        Pure: a read-only scan.
        """
        rhs_labels = data.matrix[:, rhs].tolist()
        first: dict[object, tuple[int, int]] = {}
        for row, (key, label) in enumerate(zip(keys, rhs_labels)):
            seen = first.setdefault(key, (row, label))
            if seen[1] != label:
                return seen[0], row
        return None


_BACKENDS: dict[str, type] = {
    "numpy": NumpyBackend,
    "python": PythonBackend,
}


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def get_backend(name: str | Backend | None = None) -> Backend:
    """Resolve a backend instance from a name, instance, or the environment."""
    if name is not None and not isinstance(name, str):
        return name
    if name is None:
        name = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {backend_names()}"
        ) from None
    return factory()
