"""Shared-memory transport for the preprocessed label matrix (DESIGN.md §9).

Process workers of :mod:`repro.engine.parallel` need read access to the
label matrix every kernel runs against.  Pickling the matrix into every
task would ship ``rows × columns × 8`` bytes per chunk; instead the
coordinator *publishes* the matrix once into a POSIX shared-memory
segment (``multiprocessing.shared_memory``) and tasks carry only a tiny
:class:`SharedMatrixRef` descriptor.  Workers attach lazily and cache the
attachment per process, so after the first task the matrix costs nothing
to reach.

Three handle flavors cover every execution mode:

* :class:`InlineMatrix` — the array itself, for serial and thread pools
  (same address space, nothing to ship);
* :class:`SharedMatrixRef` — name + shape + dtype of a published
  segment, for process pools;
* :class:`PickledMatrix` — the raw bytes, the fallback when
  ``shared_memory`` is unavailable on the platform (or disabled for
  tests); the executor's own pickling ships it once per task.

Lifecycle: :func:`publish_matrix` returns the handle plus a cleanup
callable that closes *and unlinks* the segment.  The worker pool owning
the publication runs the cleanup when it shuts down (and registers it
with ``atexit``), so a clean interpreter exit leaves no segment behind —
the property the CI no-leak check asserts.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..obs import metric_gauge_add
from ..obs.names import SHM_BYTES, SHM_SEGMENTS

try:  # pragma: no cover - import success is the normal path
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

HAVE_SHARED_MEMORY = shared_memory is not None
"""True when ``multiprocessing.shared_memory`` imported cleanly."""

SEGMENT_PREFIX = "repro_shm_"
"""Name prefix of every segment this module creates (greppable in /dev/shm)."""


@dataclass(frozen=True)
class InlineMatrix:
    """The matrix itself — serial/thread handle, never pickled."""

    matrix: np.ndarray


@dataclass(frozen=True)
class SharedMatrixRef:
    """Descriptor of a published shared-memory segment."""

    name: str
    shape: tuple[int, int]
    dtype: str


@dataclass(frozen=True)
class PickledMatrix:
    """Fallback handle carrying the matrix bytes through pickle."""

    payload: bytes
    shape: tuple[int, int]
    dtype: str


MatrixHandle = InlineMatrix | SharedMatrixRef | PickledMatrix

_SEQUENCE = 0


def _next_segment_name() -> str:
    """A collision-resistant segment name, unique per (pid, counter)."""
    global _SEQUENCE
    _SEQUENCE += 1
    return f"{SEGMENT_PREFIX}{os.getpid()}_{_SEQUENCE}"


def _discard_segment(segment: object) -> None:
    """Close and unlink one segment this module created.

    Owns: segment via shm-segment
    """
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view still exports buf
        # The mapping dies with the last view; unlinking below is
        # what removes the name from /dev/shm, so never skip it.
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _pickled_handle(matrix: np.ndarray) -> tuple[object, Callable[[], None]]:
    """The pickle fallback: handle carries the bytes, cleanup is a no-op."""
    return (
        PickledMatrix(
            payload=matrix.tobytes(),
            shape=(int(matrix.shape[0]), int(matrix.shape[1])),
            dtype=str(matrix.dtype),
        ),
        lambda: None,
    )


def publish_matrix(
    matrix: np.ndarray, *, use_shared_memory: bool | None = None
) -> tuple[object, Callable[[], None]]:
    """Publish ``matrix`` for process workers; return (handle, cleanup).

    With shared memory available (and not explicitly disabled), the
    matrix is copied once into a fresh segment and the returned handle is
    a :class:`SharedMatrixRef`; the cleanup callable closes and unlinks
    the segment and is safe to call more than once.  Otherwise the
    fallback :class:`PickledMatrix` carries the bytes and cleanup is a
    no-op.  A publish that fails mid-way never orphans a segment:
    creation failures (``/dev/shm`` full, shm denied at runtime) degrade
    to the pickle fallback, and a failure after creation discards the
    half-built segment before re-raising.

    Owns: return via call
    """
    if use_shared_memory is None:
        use_shared_memory = HAVE_SHARED_MEMORY
    if not use_shared_memory or not HAVE_SHARED_MEMORY:
        return _pickled_handle(matrix)
    try:
        segment = shared_memory.SharedMemory(
            create=True, size=max(matrix.nbytes, 1), name=_next_segment_name()
        )
    except OSError:  # pragma: no cover - /dev/shm exhausted or denied
        return _pickled_handle(matrix)
    try:
        view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=segment.buf)
        view[:] = matrix
        handle = SharedMatrixRef(
            name=segment.name,
            shape=(int(matrix.shape[0]), int(matrix.shape[1])),
            dtype=str(matrix.dtype),
        )
    except BaseException:
        # e.g. a dtype/shape mismatch raised by the copy: without this
        # the named segment would outlive the failed publish (RPR109).
        _discard_segment(segment)
        raise
    done = False
    segment_bytes = segment.size
    metric_gauge_add(SHM_SEGMENTS, 1.0)
    metric_gauge_add(SHM_BYTES, float(segment_bytes))

    def cleanup() -> None:
        nonlocal done
        if done:
            return
        done = True
        metric_gauge_add(SHM_SEGMENTS, -1.0)
        metric_gauge_add(SHM_BYTES, -float(segment_bytes))
        _discard_segment(segment)

    return handle, cleanup


# Per-process attachment cache: segment name -> (SharedMemory, ndarray).
# Keeping the SharedMemory object referenced pins the mapping for the
# worker's lifetime; entries die with the process.
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def _attach(ref: SharedMatrixRef) -> np.ndarray:
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    try:
        # 3.13+: attach untracked, so no tracker ever considers unlinking
        # a segment it does not own.
        segment = shared_memory.SharedMemory(name=ref.name, track=False)
    except TypeError:
        # Pythons before 3.13 register *attachments* with the resource
        # tracker too.  Under the fork start method (the Linux default)
        # workers share the coordinator's tracker, so the duplicate
        # registration is a set no-op and the coordinator's
        # unlink+unregister on cleanup leaves the tracker clean.
        segment = shared_memory.SharedMemory(name=ref.name)
    array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    array.setflags(write=False)
    _ATTACHED[ref.name] = (segment, array)
    return array


def resolve_matrix(handle: object) -> np.ndarray:
    """The label matrix behind any handle flavor (worker side).

    Shared-memory attachments are cached per process; pickled payloads
    are rehydrated per call (each task carries its own copy anyway).
    """
    if isinstance(handle, InlineMatrix):
        return handle.matrix
    if isinstance(handle, SharedMatrixRef):
        return _attach(handle)
    if isinstance(handle, PickledMatrix):
        array = np.frombuffer(handle.payload, dtype=np.dtype(handle.dtype))
        array = array.reshape(handle.shape)
        array.setflags(write=False)
        return array
    raise TypeError(f"not a matrix handle: {handle!r}")


class MatrixView:
    """A :class:`~repro.relation.preprocess.PreprocessedRelation` facade.

    The validation backends only touch ``matrix`` / ``num_rows`` /
    ``num_columns``; this minimal view lets worker processes run the
    unchanged kernels against a resolved shared matrix without
    reconstructing relation metadata they never read.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.matrix.shape[1])
