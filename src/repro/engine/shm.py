"""Shared-memory transport for the preprocessed label matrix (DESIGN.md §9).

Process workers of :mod:`repro.engine.parallel` need read access to the
label matrix every kernel runs against.  Pickling the matrix into every
task would ship ``rows × columns × 8`` bytes per chunk; instead the
coordinator *publishes* the matrix once into a POSIX shared-memory
segment (``multiprocessing.shared_memory``) and tasks carry only a tiny
:class:`SharedMatrixRef` descriptor.  Workers attach lazily and cache the
attachment per process, so after the first task the matrix costs nothing
to reach.

Three handle flavors cover every execution mode:

* :class:`InlineMatrix` — the array itself, for serial and thread pools
  (same address space, nothing to ship);
* :class:`SharedMatrixRef` — name + shape + dtype of a published
  segment, for process pools;
* :class:`PickledMatrix` — the raw bytes, the fallback when
  ``shared_memory`` is unavailable on the platform (or disabled for
  tests); the executor's own pickling ships it once per task.

The columnar :class:`~repro.relation.preprocess.EncodedMatrix` travels a
second, cheaper road: :func:`publish_encoded` writes the encoded columns
once to a memory-mapped file under the temp directory
(``repro_mmap_*``), and workers attach with ``mmap`` — the kernel shares
the page cache across every worker, so there is no per-segment copy at
all, just zero-copy ``np.frombuffer`` views.  Handles mirror the matrix
flavors: :class:`InlineEncoded` (serial/thread, and the degradation path
when the temp dir is unwritable — the executor's pickling ships it per
task) and :class:`MmapEncodedRef`.

Lifecycle: :func:`publish_matrix` / :func:`publish_encoded` return the
handle plus a cleanup callable that closes *and unlinks* the segment or
file.  The worker pool owning the publication runs the cleanup when it
shuts down (and registers it with ``atexit``), so a clean interpreter
exit leaves neither a ``/dev/shm`` segment nor a ``repro_mmap_*`` temp
file behind — the properties the CI no-leak checks assert.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..obs import metric_gauge_add
from ..obs.names import MMAP_BYTES, MMAP_FILES, SHM_BYTES, SHM_SEGMENTS
from ..relation.preprocess import EncodedMatrix

try:  # pragma: no cover - import success is the normal path
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

HAVE_SHARED_MEMORY = shared_memory is not None
"""True when ``multiprocessing.shared_memory`` imported cleanly."""

SEGMENT_PREFIX = "repro_shm_"
"""Name prefix of every segment this module creates (greppable in /dev/shm)."""

MMAP_PREFIX = "repro_mmap_"
"""Filename prefix of every mmap-backed encoded-matrix file (greppable in
the temp directory)."""

_MMAP_ALIGN = 8
"""Column payloads start on 8-byte boundaries so every ``np.frombuffer``
view is aligned regardless of the preceding columns' widths."""


@dataclass(frozen=True)
class InlineMatrix:
    """The matrix itself — serial/thread handle, never pickled."""

    matrix: np.ndarray


@dataclass(frozen=True)
class SharedMatrixRef:
    """Descriptor of a published shared-memory segment."""

    name: str
    shape: tuple[int, int]
    dtype: str


@dataclass(frozen=True)
class PickledMatrix:
    """Fallback handle carrying the matrix bytes through pickle."""

    payload: bytes
    shape: tuple[int, int]
    dtype: str


@dataclass(frozen=True)
class InlineEncoded:
    """The encoded matrix itself — serial/thread handle, and the
    degradation path for process pools without a writable temp dir (the
    executor's own pickling then ships it once per task)."""

    encoded: EncodedMatrix


@dataclass(frozen=True)
class MmapEncodedRef:
    """Descriptor of a published mmap-backed encoded-matrix file."""

    path: str
    dtypes: tuple[str, ...]
    cardinalities: tuple[int, ...]
    num_rows: int
    offsets: tuple[int, ...]


MatrixHandle = InlineMatrix | SharedMatrixRef | PickledMatrix

EncodedHandle = InlineEncoded | MmapEncodedRef

_SEQUENCE = 0


def _next_segment_name() -> str:
    """A collision-resistant segment name, unique per (pid, counter)."""
    global _SEQUENCE
    _SEQUENCE += 1
    return f"{SEGMENT_PREFIX}{os.getpid()}_{_SEQUENCE}"


def _next_mmap_path() -> str:
    """A collision-resistant temp-file path, unique per (pid, counter)."""
    global _SEQUENCE
    _SEQUENCE += 1
    return os.path.join(
        tempfile.gettempdir(), f"{MMAP_PREFIX}{os.getpid()}_{_SEQUENCE}"
    )


def _discard_segment(segment: object) -> None:
    """Close and unlink one segment this module created.

    Owns: segment via shm-segment
    """
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view still exports buf
        # The mapping dies with the last view; unlinking below is
        # what removes the name from /dev/shm, so never skip it.
        pass
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _pickled_handle(matrix: np.ndarray) -> tuple[object, Callable[[], None]]:
    """The pickle fallback: handle carries the bytes, cleanup is a no-op."""
    return (
        PickledMatrix(
            payload=matrix.tobytes(),
            shape=(int(matrix.shape[0]), int(matrix.shape[1])),
            dtype=str(matrix.dtype),
        ),
        lambda: None,
    )


def publish_matrix(
    matrix: np.ndarray, *, use_shared_memory: bool | None = None
) -> tuple[object, Callable[[], None]]:
    """Publish ``matrix`` for process workers; return (handle, cleanup).

    With shared memory available (and not explicitly disabled), the
    matrix is copied once into a fresh segment and the returned handle is
    a :class:`SharedMatrixRef`; the cleanup callable closes and unlinks
    the segment and is safe to call more than once.  Otherwise the
    fallback :class:`PickledMatrix` carries the bytes and cleanup is a
    no-op.  A publish that fails mid-way never orphans a segment:
    creation failures (``/dev/shm`` full, shm denied at runtime) degrade
    to the pickle fallback, and a failure after creation discards the
    half-built segment before re-raising.

    Owns: return via call
    """
    if use_shared_memory is None:
        use_shared_memory = HAVE_SHARED_MEMORY
    if not use_shared_memory or not HAVE_SHARED_MEMORY:
        return _pickled_handle(matrix)
    try:
        segment = shared_memory.SharedMemory(
            create=True, size=max(matrix.nbytes, 1), name=_next_segment_name()
        )
    except OSError:  # pragma: no cover - /dev/shm exhausted or denied
        return _pickled_handle(matrix)
    try:
        view = np.ndarray(matrix.shape, dtype=matrix.dtype, buffer=segment.buf)
        view[:] = matrix
        handle = SharedMatrixRef(
            name=segment.name,
            shape=(int(matrix.shape[0]), int(matrix.shape[1])),
            dtype=str(matrix.dtype),
        )
    except BaseException:
        # e.g. a dtype/shape mismatch raised by the copy: without this
        # the named segment would outlive the failed publish (RPR109).
        _discard_segment(segment)
        raise
    done = False
    segment_bytes = segment.size
    metric_gauge_add(SHM_SEGMENTS, 1.0)
    metric_gauge_add(SHM_BYTES, float(segment_bytes))

    def cleanup() -> None:
        nonlocal done
        if done:
            return
        done = True
        metric_gauge_add(SHM_SEGMENTS, -1.0)
        metric_gauge_add(SHM_BYTES, -float(segment_bytes))
        _discard_segment(segment)

    return handle, cleanup


# Per-process attachment cache: segment name -> (SharedMemory, ndarray).
# Keeping the SharedMemory object referenced pins the mapping for the
# worker's lifetime; entries die with the process.
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def _attach(ref: SharedMatrixRef) -> np.ndarray:
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[1]
    try:
        # 3.13+: attach untracked, so no tracker ever considers unlinking
        # a segment it does not own.
        segment = shared_memory.SharedMemory(name=ref.name, track=False)
    except TypeError:
        # Pythons before 3.13 register *attachments* with the resource
        # tracker too.  Under the fork start method (the Linux default)
        # workers share the coordinator's tracker, so the duplicate
        # registration is a set no-op and the coordinator's
        # unlink+unregister on cleanup leaves the tracker clean.
        segment = shared_memory.SharedMemory(name=ref.name)
    array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    array.setflags(write=False)
    _ATTACHED[ref.name] = (segment, array)
    return array


def resolve_matrix(handle: object) -> np.ndarray:
    """The label matrix behind any handle flavor (worker side).

    Shared-memory attachments are cached per process; pickled payloads
    are rehydrated per call (each task carries its own copy anyway).
    """
    if isinstance(handle, InlineMatrix):
        return handle.matrix
    if isinstance(handle, SharedMatrixRef):
        return _attach(handle)
    if isinstance(handle, PickledMatrix):
        array = np.frombuffer(handle.payload, dtype=np.dtype(handle.dtype))
        array = array.reshape(handle.shape)
        array.setflags(write=False)
        return array
    raise TypeError(f"not a matrix handle: {handle!r}")


class MmapSegment:
    """One mmap-backed encoded-matrix file this process owns.

    The publisher-side resource of the mmap transport.  Release protocol
    (RPR109 ``mmap-matrix``): ``close()`` the write handle, then
    ``unlink()`` the temp file — mirroring the shm segment's
    close-then-unlink order.  Workers never hold one of these; they
    attach read-only via :func:`resolve_encoded`.
    """

    def __init__(self, path: str) -> None:
        """Create (truncate) the backing file and hold the write handle.

        Owns: self
        """
        self.path = path
        self.size = 0
        self._file = open(path, "wb")

    def write_column(self, payload: bytes) -> int:
        """Append one column's bytes at an 8-byte-aligned offset.

        Returns the offset the column starts at, for the handle's
        ``offsets`` metadata.

        Mutates: self
        """
        offset = (self.size + _MMAP_ALIGN - 1) // _MMAP_ALIGN * _MMAP_ALIGN
        if offset > self.size:
            self._file.write(b"\x00" * (offset - self.size))
        self._file.write(payload)
        self.size = offset + len(payload)
        return offset

    def flush(self) -> None:
        """Push buffered column bytes down to the file.

        Required before the handle escapes to workers: a small encoding
        fits entirely in the write handle's userspace buffer, and
        ``mmap`` refuses the still-empty on-disk file.

        Mutates: self
        """
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        """Flush and close the write handle (idempotent).

        Mutates: self
        """
        if self._file is not None:
            self._file.close()
            self._file = None

    def unlink(self) -> None:
        """Remove the backing file from the temp directory (idempotent).

        Mutates: self
        """
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def _discard_mmap_segment(segment: MmapSegment) -> None:
    """Close and unlink one mmap-backed file this module created.

    Owns: segment via mmap-matrix
    """
    segment.close()
    segment.unlink()


def publish_encoded(
    encoded: EncodedMatrix, *, use_mmap: bool | None = None
) -> tuple[object, Callable[[], None]]:
    """Publish an encoded matrix for process workers; return (handle, cleanup).

    The encoded columns are written once to a ``repro_mmap_*`` file in
    the temp directory and the returned handle is a
    :class:`MmapEncodedRef`; workers map the file read-only, so every
    worker shares the kernel's page cache and no per-worker copy exists.
    The cleanup callable closes and unlinks the file and is safe to call
    more than once.  When the temp dir is unwritable (or mmap is
    explicitly disabled) the publish degrades to :class:`InlineEncoded`
    — correct, just shipped per task by the executor — and a failure
    after creation discards the half-written file before re-raising.

    Owns: return via call
    """
    if use_mmap is None:
        use_mmap = True
    if not use_mmap:
        return InlineEncoded(encoded), lambda: None
    try:
        segment = MmapSegment(_next_mmap_path())
    except OSError:  # pragma: no cover - temp dir unwritable
        return InlineEncoded(encoded), lambda: None
    try:
        offsets = tuple(
            segment.write_column(column.tobytes()) for column in encoded.columns
        )
        segment.flush()
        handle = MmapEncodedRef(
            path=segment.path,
            dtypes=encoded.dtypes,
            cardinalities=encoded.cardinalities,
            num_rows=encoded.num_rows,
            offsets=offsets,
        )
    except BaseException:
        # e.g. disk-full mid-write: without this the temp file would
        # outlive the failed publish (RPR109).
        _discard_mmap_segment(segment)
        raise
    done = False
    file_bytes = segment.size
    metric_gauge_add(MMAP_FILES, 1.0)
    metric_gauge_add(MMAP_BYTES, float(file_bytes))

    def cleanup() -> None:
        nonlocal done
        if done:
            return
        done = True
        metric_gauge_add(MMAP_FILES, -1.0)
        metric_gauge_add(MMAP_BYTES, -float(file_bytes))
        _discard_mmap_segment(segment)

    return handle, cleanup


# Per-process mmap attachment cache: path -> (mmap object, EncodedMatrix).
# The mapping object pins the pages for the worker's lifetime; entries
# die with the process (the coordinator owns the file's lifecycle).
_MMAP_ATTACHED: dict[str, tuple[object, EncodedMatrix]] = {}


def _attach_encoded(ref: MmapEncodedRef) -> EncodedMatrix:
    cached = _MMAP_ATTACHED.get(ref.path)
    if cached is not None:
        return cached[1]
    if ref.num_rows == 0 or not ref.dtypes:
        # mmap rejects empty files; zero-row columns need no backing
        columns = tuple(
            np.empty(0, dtype=np.dtype(name)) for name in ref.dtypes
        )
        encoded = EncodedMatrix(
            columns=columns,
            cardinalities=ref.cardinalities,
            num_rows=ref.num_rows,
        )
        _MMAP_ATTACHED[ref.path] = (None, encoded)
        return encoded
    file = open(ref.path, "rb")
    try:
        mapping = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
    finally:
        # the mapping holds its own reference to the underlying pages
        file.close()
    columns = tuple(
        np.frombuffer(
            mapping, dtype=np.dtype(name), count=ref.num_rows, offset=offset
        )
        for name, offset in zip(ref.dtypes, ref.offsets)
    )
    encoded = EncodedMatrix(
        columns=columns, cardinalities=ref.cardinalities, num_rows=ref.num_rows
    )
    _MMAP_ATTACHED[ref.path] = (mapping, encoded)
    return encoded


def resolve_encoded(handle: object) -> EncodedMatrix:
    """The encoded matrix behind any handle flavor (worker side).

    Mmap attachments are cached per process; inline handles hand the
    object straight through (the executor's pickling already rebuilt it
    for process pools).
    """
    if isinstance(handle, InlineEncoded):
        return handle.encoded
    if isinstance(handle, MmapEncodedRef):
        return _attach_encoded(handle)
    raise TypeError(f"not an encoded-matrix handle: {handle!r}")


class MatrixView:
    """A :class:`~repro.relation.preprocess.PreprocessedRelation` facade.

    The validation backends only touch ``matrix`` / ``num_rows`` /
    ``num_columns``; this minimal view lets worker processes run the
    unchanged kernels against a resolved shared matrix without
    reconstructing relation metadata they never read.
    """

    __slots__ = ("matrix",)

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.matrix.shape[1])


class EncodedView:
    """The columnar counterpart of :class:`MatrixView`.

    The columnar backend's kernels reach the encoding through
    ``encoded_matrix()`` (the same accessor ``PreprocessedRelation``
    exposes), so worker processes run them unchanged against a resolved
    mmap attachment without relation metadata or an int64 matrix.
    """

    __slots__ = ("encoded",)

    def __init__(self, encoded: EncodedMatrix) -> None:
        self.encoded = encoded

    def encoded_matrix(self) -> EncodedMatrix:
        return self.encoded

    @property
    def num_rows(self) -> int:
        return int(self.encoded.num_rows)

    @property
    def num_columns(self) -> int:
        return int(self.encoded.num_columns)


def resolve_view(handle: object) -> object:
    """A backend-ready relation view behind any handle flavor.

    Encoded handles resolve to an :class:`EncodedView` (columnar
    kernels), matrix handles to a :class:`MatrixView` (numpy/python
    kernels) — the dispatch worker tasks use so one task body serves
    every backend.
    """
    if isinstance(handle, (InlineEncoded, MmapEncodedRef)):
        return EncodedView(resolve_encoded(handle))
    return MatrixView(resolve_matrix(handle))
