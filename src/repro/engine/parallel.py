"""The worker pool: sharded pair-sampling and validation (DESIGN.md §9).

Every hot loop of the reproduction — cluster pair-sampling, the Fdep and
incremental agree-set sweeps, batched candidate validation, the bench
matrix — is embarrassingly parallel *inside one step* while the control
loop around it (MLFQ scheduling, capa feedback, the seen-dict, growth
rates) must stay sequential for the paper's results to replicate.  This
module supplies exactly that split: a :class:`WorkerPool` executes
deterministic chunk plans, and the coordinator keeps every stateful
merge.

Determinism is structural, not best-effort:

* chunks are cut in fixed order (:func:`chunk_ranges` /
  :func:`chunk_pairs` are pure functions of the input sizes);
* results are merged **by chunk index**, never by completion order;
* all scheduling state (MLFQ, capa, seen-dicts, covers) lives on the
  coordinator and consumes merged results in the same order the serial
  code would produce them.

Hence FD sets, run statistics and witnesses are byte-identical at any
worker count — the property the cross-worker determinism suite pins.

Execution modes, selected via ``--jobs`` on the CLIs or ``$REPRO_JOBS``:

========================  ====================================================
``serial`` / ``1`` / unset  no executor, plain loop — the default; behaviour
                            (including traces) is bit-for-bit the pre-parallel
                            code path
``N`` / ``process:N``       ``ProcessPoolExecutor`` with N workers; the label
                            matrix ships once via shared memory
                            (:mod:`repro.engine.shm`), tasks carry only row
                            indices
``thread:N``                ``ThreadPoolExecutor`` with N workers; no matrix
                            shipping (shared address space), useful where the
                            kernels release the GIL or processes are banned
========================  ====================================================

Pools are cached per spec (:func:`get_pool`) so repeated contexts reuse
one executor, and every pool is closed at interpreter exit — shutting
down executors and unlinking published shared-memory segments.
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..obs import (
    counter,
    metric_gauge_add,
    metric_gauge_set,
    metric_inc,
    monotonic,
    span,
)
from ..obs.names import (
    POOL_BUSY_SECONDS,
    POOL_CHUNKS,
    POOL_QUEUE_DEPTH,
    POOL_TASKS,
    POOL_WORKERS,
)
from ..relation.preprocess import (
    agree_masks_from_matrix,
    distinct_agree_masks_range,
)
from .columnar import agree_masks_from_encoded, encoded_of
from .shm import (
    publish_encoded,
    publish_matrix,
    resolve_encoded,
    resolve_matrix,
    resolve_view,
)

JOBS_ENV = "REPRO_JOBS"
"""Environment variable supplying the default worker-pool spec."""

SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"

MIN_PAIRS_PER_WORKER = 4096
"""Pairs below jobs × this run serially — chunk dispatch would dominate."""

MIN_GROUPS_PER_WORKER = 8
"""Distinct-LHS groups below jobs × this validate serially."""

CHUNKS_PER_WORKER = 4
"""Over-partitioning factor: more chunks than workers evens out skew."""


@dataclass(frozen=True)
class PoolSpec:
    """Parsed worker-pool configuration: executor kind plus worker count."""

    kind: str
    jobs: int

    def __post_init__(self) -> None:
        if self.kind not in (SERIAL, THREAD, PROCESS):
            raise ValueError(f"unknown pool kind {self.kind!r}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be positive, got {self.jobs}")
        if self.kind == SERIAL and self.jobs != 1:
            raise ValueError("serial pools have exactly one (inline) worker")

    @property
    def is_serial(self) -> bool:
        return self.kind == SERIAL

    @classmethod
    def parse(cls, spec: "int | str | PoolSpec | None") -> "PoolSpec":
        """Normalize a ``--jobs`` / ``$REPRO_JOBS`` value.

        ``None``, ``""``, ``"serial"`` and ``1`` mean serial; a bare
        number means a process pool with that many workers; ``kind:N``
        selects the executor explicitly (``thread:4``, ``process:2``).

        Pure: builds a fresh spec from the value.
        """
        if isinstance(spec, PoolSpec):
            return spec
        if spec is None:
            return cls(SERIAL, 1)
        if isinstance(spec, int):
            return cls(SERIAL, 1) if spec == 1 else cls(PROCESS, spec)
        text = spec.strip().lower()
        if text in ("", SERIAL):
            return cls(SERIAL, 1)
        if ":" in text:
            kind, count = text.split(":", 1)
            return cls(kind, int(count))
        if text in (THREAD, PROCESS):
            return cls(text, max(os.cpu_count() or 1, 2))
        return cls.parse(int(text))


def resolve_spec(jobs: "int | str | PoolSpec | None" = None) -> PoolSpec:
    """Resolution order: explicit argument, ``$REPRO_JOBS``, serial.

    Pure: reads the environment only.
    """
    if jobs is not None:
        return PoolSpec.parse(jobs)
    return PoolSpec.parse(os.environ.get(JOBS_ENV) or None)


# -- deterministic chunk plans -------------------------------------------------


def chunk_ranges(total: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous ranges.

    Earlier ranges are never smaller than later ones and the
    concatenation of all ranges is exactly ``range(total)`` in order —
    the fixed chunk order every parallel kernel merges by.

    Pure: arithmetic on the two sizes only.
    """
    chunks = max(1, min(chunks, total)) if total else 0
    ranges: list[tuple[int, int]] = []
    start = 0
    for index in range(chunks):
        size = total // chunks + (1 if index < total % chunks else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def chunk_pairs(
    rows_a: Sequence[int], rows_b: Sequence[int], chunks: int
) -> list[tuple[Sequence[int], Sequence[int]]]:
    """Cut a tuple-pair list into contiguous chunks, preserving order.

    Pure: slices the inputs; neither sequence is mutated.
    """
    return [
        (rows_a[start:stop], rows_b[start:stop])
        for start, stop in chunk_ranges(len(rows_a), chunks)
    ]


def merge_chunked(results: Sequence[list]) -> list:
    """Concatenate per-chunk result lists in chunk-index order.

    Pure: builds a fresh list from the chunk results.
    """
    merged: list = []
    for chunk in results:
        merged.extend(chunk)
    return merged


# -- worker-side entry points --------------------------------------------------
#
# Module-level functions so process executors pickle them by reference.
# Each returns ``(payload, busy_seconds)``; the busy time aggregates into
# the coordinator's ``engine.parallel.busy_seconds`` counter and the
# pool's ``parallel_efficiency`` statistic.


def _timed(fn: Callable[..., Any], *args: Any) -> tuple[Any, float]:
    start = monotonic()
    result = fn(*args)
    return result, monotonic() - start


def _agree_masks_task(
    handle: object, rows_a: Sequence[int], rows_b: Sequence[int]
) -> tuple[list[int], float]:
    """Worker: agree masks of one pair chunk, in pair order."""
    matrix = resolve_matrix(handle)
    return _timed(agree_masks_from_matrix, matrix, list(rows_a), list(rows_b))


def _agree_masks_encoded_task(
    handle: object, rows_a: Sequence[int], rows_b: Sequence[int]
) -> tuple[list[int], float]:
    """Worker: agree masks of one pair chunk over the columnar encoding."""
    encoded = resolve_encoded(handle)
    return _timed(agree_masks_from_encoded, encoded, list(rows_a), list(rows_b))


def _distinct_masks_task(
    handle: object, start: int, stop: int
) -> tuple[list[int], float]:
    """Worker: distinct agree masks of one anchor range, first-seen order."""
    matrix = resolve_matrix(handle)
    return _timed(distinct_agree_masks_range, matrix, start, stop)


def _validate_task(
    handle: object,
    backend_name: str,
    groups: list[tuple[int, list[tuple[int, int]]]],
    witnesses: bool,
) -> tuple[list[tuple[int, bool, tuple[int, int] | None]], float]:
    """Worker: validate one chunk of distinct-LHS groups.

    ``groups`` is ``[(lhs, [(result_index, rhs), ...]), ...]``; each LHS
    is folded into group keys exactly once, mirroring the serial
    ``validate_many`` loop.  Returns ``(result_index, holds, witness)``
    triples tagged with the coordinator's indices, so the merge is a
    plain indexed store regardless of chunk boundaries.
    """
    from .backends import get_backend

    start = monotonic()
    data = resolve_view(handle)
    backend = get_backend(backend_name)
    out: list[tuple[int, bool, tuple[int, int] | None]] = []
    for lhs, members in groups:
        keys = backend.group_keys(data, lhs)
        for index, rhs in members:
            if witnesses:
                pair = backend.witness(data, keys, rhs)
                out.append((index, pair is None, pair))
            else:
                out.append((index, backend.constant_on(data, keys, rhs), None))
    return out, monotonic() - start


def _call_task(
    fn: Callable[[Any], Any], payload: Any
) -> tuple[Any, float]:
    """Worker: generic cell runner for the bench-matrix fan-out."""
    return _timed(fn, payload)


# -- the pool ------------------------------------------------------------------


class WorkerPool:
    """A deterministic chunk executor with a published-matrix cache.

    The pool owns three things: the (lazily created) executor, the
    shared-memory publications of label matrices it has shipped to
    process workers, and the busy-time/task accounting surfaced as
    ``engine.parallel.*`` telemetry and ``parallel_efficiency``.
    """

    def __init__(self, spec: "PoolSpec | int | str | None" = None) -> None:
        self.spec = PoolSpec.parse(spec) if not isinstance(spec, PoolSpec) else spec
        self._executor: Executor | None = None
        # id(matrix) -> (weakref to the matrix, handle, cleanup); the id
        # is re-validated through the weakref so a recycled id can never
        # alias a dead matrix's segment.
        self._published: dict[int, tuple[weakref.ref, object, Callable[[], None]]] = {}
        self.tasks_dispatched = 0
        self.chunks_dispatched = 0
        self.busy_seconds = 0.0
        self._closed = False

    # -- identity ---------------------------------------------------------

    @property
    def jobs(self) -> int:
        return self.spec.jobs

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def is_serial(self) -> bool:
        return self.spec.is_serial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerPool({self.kind}:{self.jobs})"

    # -- statistics -------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Dispatch accounting: tasks, chunks, cumulative worker busy time."""
        return {
            "tasks": self.tasks_dispatched,
            "chunks": self.chunks_dispatched,
            "busy_seconds": self.busy_seconds,
        }

    # -- execution --------------------------------------------------------

    def _ensure_executor(self) -> Executor:
        """Lazily build the executor the pool shuts down in :meth:`close`.

        Owns: self
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if self._executor is None:
            if self.kind == THREAD:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="repro-worker"
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def map_chunks(
        self, fn: Callable[..., tuple[Any, float]], tasks: Sequence[tuple]
    ) -> list[Any]:
        """Run ``fn(*task)`` for every task; results in task order.

        ``fn`` must be a module-level function returning ``(payload,
        busy_seconds)``.  Futures are gathered by submission index — the
        merge-by-chunk-index rule — never by completion order.  On a
        serial pool this is a plain loop with no executor and no
        telemetry, keeping the default path bit-for-bit unchanged.
        """
        if self.is_serial or len(tasks) <= 1:
            results = []
            for task in tasks:
                payload, elapsed = fn(*task)
                self.busy_seconds += elapsed
                results.append(payload)
            return results
        executor = self._ensure_executor()
        metric_gauge_set(POOL_WORKERS, float(self.jobs))
        metric_gauge_set(POOL_QUEUE_DEPTH, float(len(tasks)))
        with span(
            "engine.parallel.map",
            kernel=fn.__name__.strip("_"),
            chunks=len(tasks),
            jobs=self.jobs,
        ):
            futures = [executor.submit(fn, *task) for task in tasks]
            results = []
            for future in futures:
                payload, elapsed = future.result()
                self.busy_seconds += elapsed
                counter(POOL_BUSY_SECONDS, elapsed)
                metric_inc(POOL_BUSY_SECONDS, elapsed)
                metric_gauge_add(POOL_QUEUE_DEPTH, -1.0)
                results.append(payload)
        self.tasks_dispatched += 1
        self.chunks_dispatched += len(tasks)
        counter(POOL_TASKS)
        counter(POOL_CHUNKS, len(tasks))
        metric_inc(POOL_TASKS)
        metric_inc(POOL_CHUNKS, float(len(tasks)))
        return results

    # -- matrix shipping --------------------------------------------------

    def matrix_handle(self, matrix: Any) -> object:
        """The transport handle workers resolve the matrix through.

        Serial and thread pools hand the array over in-process; process
        pools publish it into shared memory once (pickle fallback when
        the platform lacks it) and reuse the publication for the
        matrix's lifetime.
        """
        from .shm import InlineMatrix

        if self.kind != PROCESS:
            return InlineMatrix(matrix)
        return self._publish_once(matrix, publish_matrix)

    def encoded_handle(self, encoded: Any) -> object:
        """The transport handle workers resolve an encoded matrix through.

        The columnar counterpart of :meth:`matrix_handle`: serial and
        thread pools hand the encoding over in-process; process pools
        write it once to an mmap-backed temp file (inline fallback when
        the temp dir is unwritable) and reuse the publication for the
        encoding's lifetime.
        """
        from .shm import InlineEncoded

        if self.kind != PROCESS:
            return InlineEncoded(encoded)
        return self._publish_once(encoded, publish_encoded)

    def _publish_once(
        self, payload: Any, publish: Callable[[Any], tuple[object, Callable[[], None]]]
    ) -> object:
        """Publish ``payload`` once and reuse the handle until it dies."""
        if self._closed:
            # A closed pool must fail loudly here: publishing would
            # orphan the segment/file (close() already ran and never
            # reruns), turning a stale-context bug into a resource leak.
            raise RuntimeError("worker pool is closed")
        key = id(payload)
        entry = self._published.get(key)
        if entry is not None and entry[0]() is payload:
            return entry[1]
        handle, cleanup = publish(payload)

        def _forget(_ref: weakref.ref, key: int = key) -> None:
            self._published.pop(key, None)
            cleanup()

        try:
            ref = weakref.ref(payload, _forget)
        except TypeError:  # pragma: no cover - non-weakrefable buffers
            ref = (lambda m: (lambda: m))(payload)  # keep alive instead
        self._published[key] = (ref, handle, cleanup)
        return handle

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Shut the executor down and unlink every publication — shm
        segments and mmap-backed encoded files alike.

        Mutates: self
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        # Every segment must get its unlink attempt: close() never reruns
        # (_closed is already set), so aborting this loop on the first
        # failing cleanup would orphan every segment after it.
        error: Exception | None = None
        for _, _, cleanup in list(self._published.values()):
            try:
                cleanup()
            except Exception as exc:  # pragma: no cover - defensive
                error = error or exc
        self._published.clear()
        if error is not None:  # pragma: no cover - defensive
            raise error

    def __enter__(self) -> "WorkerPool":
        """Use the pool as a context manager; :meth:`close` runs on exit."""
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc_value: "BaseException | None",
        traceback: "object | None",
    ) -> None:
        """Close the pool on block exit, exceptional or not.

        Mutates: self
        """
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# -- the shared pool registry --------------------------------------------------

_POOLS: dict[PoolSpec, WorkerPool] = {}


def get_pool(jobs: "int | str | PoolSpec | None" = None) -> WorkerPool:
    """The shared pool for a jobs spec (argument → ``$REPRO_JOBS`` → serial).

    Pools are cached per parsed spec so every context asking for
    ``--jobs 4`` reuses one executor and one published copy of each
    matrix; :func:`close_all_pools` runs at interpreter exit.
    """
    spec = resolve_spec(jobs)
    pool = _POOLS.get(spec)
    if pool is None or pool._closed:
        pool = WorkerPool(spec)
        _POOLS[spec] = pool
    return pool


def close_all_pools() -> None:
    """Close every cached pool (executors down, shm segments unlinked)."""
    error: Exception | None = None
    for pool in list(_POOLS.values()):
        try:
            pool.close()
        except Exception as exc:  # pragma: no cover - defensive
            error = error or exc
    _POOLS.clear()
    if error is not None:  # pragma: no cover - defensive
        raise error


atexit.register(close_all_pools)


# -- sharded kernels -----------------------------------------------------------


def agree_masks_sharded(
    pool: WorkerPool,
    data: Any,
    rows_a: Sequence[int],
    rows_b: Sequence[int],
    backend: Any = None,
) -> list[int]:
    """Agree masks of a tuple-pair list, fanned out across the pool.

    Pair order is preserved exactly (chunks are contiguous slices merged
    by index), so consumers folding the masks into seen-dicts and covers
    observe the serial sequence.  Small batches — fewer than ``jobs ×``
    :data:`MIN_PAIRS_PER_WORKER` pairs — run inline: the comparison is
    one vectorized numpy call and not worth a dispatch.

    ``backend`` selects the mask kernel: ``None`` keeps the historical
    matrix path bit-for-bit; a backend with ``needs_encoded`` (columnar)
    computes masks over the encoding, shipping it to process workers via
    the mmap path instead of the shared-memory matrix copy.  Mask values
    are identical either way.

    Borrows: pool
    """
    if pool.is_serial or len(rows_a) < pool.jobs * MIN_PAIRS_PER_WORKER:
        if backend is not None:
            return backend.agree_masks(data, rows_a, rows_b)
        return data.agree_masks_bulk(rows_a, rows_b)
    chunks = chunk_pairs(list(rows_a), list(rows_b), pool.jobs * CHUNKS_PER_WORKER)
    if backend is not None and getattr(backend, "needs_encoded", False):
        handle = pool.encoded_handle(encoded_of(data))
        tasks = [(handle, chunk_a, chunk_b) for chunk_a, chunk_b in chunks]
        return merge_chunked(pool.map_chunks(_agree_masks_encoded_task, tasks))
    handle = pool.matrix_handle(data.matrix)
    tasks = [(handle, chunk_a, chunk_b) for chunk_a, chunk_b in chunks]
    return merge_chunked(pool.map_chunks(_agree_masks_task, tasks))


def distinct_agree_masks_sharded(pool: WorkerPool, data: Any) -> set[int]:
    """All-pairs distinct agree sets (the Fdep sweep), sharded by anchor.

    Anchor ranges are contiguous and merged in range order; because each
    worker reports masks in first-occurrence order, the coordinator's
    set receives new elements in exactly the serial scan's insertion
    sequence — so even downstream code iterating the set sees identical
    order at any worker count.

    Borrows: pool
    """
    num_rows = data.num_rows
    if pool.is_serial or num_rows < 2 or (
        num_rows * (num_rows - 1)
    ) // 2 < pool.jobs * MIN_PAIRS_PER_WORKER:
        # Insertion order is the serial scan order (see docstring); the
        # set is the kernel's declared return type.
        serial = distinct_agree_masks_range(data.matrix, 0, max(num_rows - 1, 0))
        return set(serial)  # pragma: repro-lint ordered
    handle = pool.matrix_handle(data.matrix)
    # Anchor i compares against n-1-i partners: costs fall linearly, so
    # over-partition and let the executor balance the tail.
    tasks = [
        (handle, start, stop)
        for start, stop in chunk_ranges(num_rows - 1, pool.jobs * CHUNKS_PER_WORKER)
    ]
    # Chunks arrive in range order and each reports first-occurrence
    # order, so insertions replay the serial scan exactly (docstring).
    masks = set()  # pragma: repro-lint ordered
    for chunk in pool.map_chunks(_distinct_masks_task, tasks):
        masks.update(chunk)
    return masks


def validate_groups_sharded(
    pool: WorkerPool,
    data: Any,
    backend_name: str,
    groups: list[tuple[int, list[tuple[int, int]]]],
    witnesses: bool,
) -> list[tuple[int, bool, tuple[int, int] | None]]:
    """Validate distinct-LHS groups across the pool; results carry the
    coordinator's candidate indices so the caller stores them directly.

    Groups are chunked contiguously in sorted-LHS order and merged by
    chunk index; each group's keys are folded exactly once inside one
    worker (a group never straddles chunks), preserving the serial
    fold-per-distinct-LHS accounting.  Backends that validate over the
    columnar encoding receive it via the mmap path; matrix backends keep
    the shared-memory copy.

    Borrows: pool
    """
    from .backends import get_backend

    if getattr(get_backend(backend_name), "needs_encoded", False):
        handle = pool.encoded_handle(encoded_of(data))
    else:
        handle = pool.matrix_handle(data.matrix)
    tasks = [
        (handle, backend_name, groups[start:stop], witnesses)
        for start, stop in chunk_ranges(len(groups), pool.jobs * CHUNKS_PER_WORKER)
    ]
    return merge_chunked(pool.map_chunks(_validate_task, tasks))


def run_cells_sharded(
    pool: WorkerPool,
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
) -> list[Any]:
    """Fan independent work items (bench-matrix cells) across the pool.

    ``fn`` must be module-level (process pools pickle it by reference);
    results come back in payload order.

    Borrows: pool
    """
    return pool.map_chunks(_call_task, [(fn, payload) for payload in payloads])
