"""EulerFD — an efficient double-cycle approximation of functional
dependencies (ICDE 2023), reproduced in pure Python.

Quickstart::

    from repro import EulerFD, datasets

    result = EulerFD().discover(datasets.patients())
    for line in result.format_fds():
        print(line)

The package is organized as:

* :mod:`repro.core` — the EulerFD algorithm (sampling MLFQ, negative
  cover, inversion, double cycle) and its configuration;
* :mod:`repro.algorithms` — the exact and approximate baselines the paper
  compares against (Tane, Fdep, HyFD, AID-FD, ...);
* :mod:`repro.fd` — FD value types, cover data structures, inference;
* :mod:`repro.relation` — relations, preprocessing, partitions, CSV I/O;
* :mod:`repro.datasets` — seeded generators for the paper's benchmarks;
* :mod:`repro.metrics` — F1 accuracy and timing;
* :mod:`repro.bench` — the harness regenerating every table and figure.
"""

from . import algorithms, datasets, fd, metrics, relation
from .algorithms import available_algorithms, create
from .algorithms.ucc import discover_uccs
from .core import DiscoveryResult, EulerFD, EulerFDConfig, MlfqPolicy
from .fd import FD
from .profile import RelationProfile, profile_relation
from .relation import Relation, read_csv

__version__ = "1.0.0"


def discover_fds(relation: Relation, algorithm: str = "eulerfd") -> DiscoveryResult:
    """Discover the non-trivial minimal FDs of ``relation``.

    ``algorithm`` is any key from :func:`available_algorithms`; the
    default runs EulerFD with the paper's recommended configuration.
    """
    return create(algorithm).discover(relation)


__all__ = [
    "DiscoveryResult",
    "EulerFD",
    "EulerFDConfig",
    "FD",
    "MlfqPolicy",
    "Relation",
    "RelationProfile",
    "algorithms",
    "available_algorithms",
    "create",
    "datasets",
    "discover_fds",
    "discover_uccs",
    "fd",
    "metrics",
    "profile_relation",
    "read_csv",
    "relation",
    "__version__",
]
