"""Command-line interface: ``repro-fd`` / ``python -m repro``.

Subcommands:

* ``discover``  — run an algorithm on a CSV file and print the FDs;
* ``compare``   — run several algorithms on one CSV and tabulate
  runtimes, FD counts, and F1 against an exact baseline;
* ``generate``  — materialize one of the registered benchmark datasets
  as CSV;
* ``trace``     — run an algorithm on a registered dataset under the
  observability recorder and export the trace (also installed as the
  ``repro-trace`` console script);
* ``metrics``   — run an algorithm on a registered dataset with the
  process-wide metrics registry and memory profiler enabled, then dump
  (or serve over HTTP) the Prometheus/JSONL scrape (also installed as
  the ``repro-metrics`` console script);
* ``datasets``  — list the registered benchmark datasets;
* ``algorithms`` — list the available discovery algorithms.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .algorithms import available_algorithms, create
from .bench.runner import GroundTruthCache, format_cell, print_table
from .datasets import registry
from .engine import ExecutionContext, backend_names, use_context
from .metrics import fd_set_metrics, timed
from .obs import (
    MetricsRegistry,
    Recorder,
    chrome_trace,
    collecting_metrics,
    memory_profiling,
    metrics_jsonl,
    prometheus_text,
    recording,
    summary_tree,
    to_jsonl,
    write_trace,
)
from .relation import read_csv, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fd",
        description="EulerFD functional-dependency discovery (ICDE 2023 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    discover = commands.add_parser("discover", help="discover FDs in a CSV file")
    discover.add_argument("path", help="CSV file with a header row")
    discover.add_argument(
        "--algorithm", default="eulerfd", choices=available_algorithms()
    )
    discover.add_argument("--max-rows", type=int, default=None)
    discover.add_argument("--no-header", action="store_true")
    discover.add_argument("--delimiter", default=",")
    discover.add_argument(
        "--limit", type=int, default=None, help="print at most N FDs"
    )
    discover.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    add_backend_argument(discover)

    profile = commands.add_parser(
        "profile", help="profile a CSV file: columns, keys, FDs"
    )
    profile.add_argument("path")
    profile.add_argument("--max-rows", type=int, default=None)
    profile.add_argument("--no-header", action="store_true")
    profile.add_argument("--delimiter", default=",")

    compare = commands.add_parser("compare", help="compare algorithms on a CSV file")
    compare.add_argument("path")
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["tane", "fdep", "hyfd", "aidfd", "eulerfd"],
        choices=available_algorithms(),
    )
    compare.add_argument("--max-rows", type=int, default=None)
    compare.add_argument("--no-header", action="store_true")
    compare.add_argument("--delimiter", default=",")
    add_backend_argument(compare)

    generate = commands.add_parser(
        "generate", help="write a registered benchmark dataset as CSV"
    )
    generate.add_argument("dataset", choices=registry.dataset_names())
    generate.add_argument("output")
    generate.add_argument("--rows", type=int, default=None)
    generate.add_argument("--columns", type=int, default=None)
    generate.add_argument("--seed", type=int, default=None)

    trace = commands.add_parser(
        "trace",
        help="run an algorithm on a registered dataset and export its trace",
    )
    add_trace_arguments(trace)

    metrics = commands.add_parser(
        "metrics",
        help="run a workload under the metrics registry and dump the scrape",
    )
    add_metrics_arguments(metrics)

    commands.add_parser("datasets", help="list registered benchmark datasets")
    commands.add_parser("algorithms", help="list available algorithms")
    return parser


def add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The execution-engine ``--backend`` selector, shared by subcommands."""
    parser.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help=(
            "execution-engine backend for partition/validation kernels "
            "(default: $REPRO_BACKEND or numpy)"
        ),
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="SPEC",
        help=(
            "worker pool for pair-sampling and validation: N or "
            "process:N for a process pool, thread:N for threads, serial "
            "to force the inline path (default: $REPRO_JOBS or serial)"
        ),
    )


def _engine_line(context: ExecutionContext) -> str:
    """One-line engine report printed under text-mode command output."""
    stats = context.partitions.stats()
    traffic = ", ".join(f"{key} {value}" for key, value in stats.items())
    line = f"engine: backend={context.backend.name}"
    pool = context.pool
    if not pool.is_serial:
        line += f" jobs={pool.kind}:{pool.jobs}"
    return f"{line} partition-cache: {traffic}"


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``trace`` options, shared by ``repro-fd trace`` and ``repro-trace``."""
    parser.add_argument(
        "--algorithm", default="eulerfd", choices=available_algorithms()
    )
    parser.add_argument(
        "--dataset", default="iris", choices=registry.dataset_names()
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--columns", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the trace to this file instead of stdout",
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="summary",
        choices=("jsonl", "chrome", "summary"),
        help="trace flavor: raw JSONL events, Chrome trace JSON, or summary tree",
    )
    add_backend_argument(parser)


def add_metrics_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``metrics`` options, shared by ``repro-fd metrics`` and
    ``repro-metrics``."""
    parser.add_argument(
        "--algorithm", default="eulerfd", choices=available_algorithms()
    )
    parser.add_argument(
        "--dataset", default="iris", choices=registry.dataset_names()
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--columns", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--format",
        dest="format",
        default="prometheus",
        choices=("prometheus", "jsonl"),
        help="scrape flavor: Prometheus text exposition or JSONL",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the scrape to this file instead of stdout",
    )
    parser.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the scrape at http://127.0.0.1:PORT/metrics until interrupted",
    )
    parser.add_argument(
        "--no-memory",
        action="store_true",
        help="skip tracemalloc phase attribution (faster, no mem.* gauges)",
    )
    add_backend_argument(parser)


def serve_scrape(text: str, port: int) -> None:
    """Serve ``text`` at ``/metrics`` on localhost until interrupted.

    A deliberately minimal single-snapshot server: the scrape is the
    run's final registry state, not a live feed — enough for pointing a
    Prometheus dev instance or ``curl`` at a finished workload.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    payload = text.encode("utf-8")

    class _ScrapeHandler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path.rstrip("/") not in ("", "/metrics", "/metric"):
                self.send_error(404)
                return
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args: object) -> None:
            """Silence per-request stderr logging."""

    server = ThreadingHTTPServer(("127.0.0.1", port), _ScrapeHandler)
    try:
        print(f"serving metrics at http://127.0.0.1:{server.server_port}/metrics")
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()


def _cmd_metrics(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    relation = registry.make(
        args.dataset, rows=args.rows, columns=args.columns, seed=args.seed
    )
    registry_ = MetricsRegistry()
    with ExitStack() as stack:
        stack.enter_context(collecting_metrics(registry_))
        if not args.no_memory:
            stack.enter_context(memory_profiling())
        context = ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
        with use_context(context):
            result = create(args.algorithm).discover(relation)
        # Snapshot before closing the pool: cleanup decrements the shm
        # gauges, and the scrape should show the run's live state.
        text = (
            prometheus_text(registry_)
            if args.format == "prometheus"
            else metrics_jsonl(registry_)
        )
        context.pool.close()
    print(
        f"{result.algorithm} on {relation.name} "
        f"({relation.num_rows}x{relation.num_columns}): "
        f"{len(result)} FDs in {result.runtime_seconds:.3f}s; "
        f"{len(registry_.counters)} counters, {len(registry_.gauges)} gauges, "
        f"{len(registry_.histograms)} histograms",
        file=sys.stderr,
    )
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} scrape to {args.out}", file=sys.stderr)
    elif args.serve is None:
        print(text, end="")
    if args.serve is not None:
        serve_scrape(text, args.serve)
    return 0


def _cmd_discover(args: argparse.Namespace) -> int:
    relation = read_csv(
        args.path,
        has_header=not args.no_header,
        delimiter=args.delimiter,
        max_rows=args.max_rows,
    )
    context = ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
    with use_context(context):
        result = create(args.algorithm).discover(relation)
    if args.json:
        print(result.to_json())
        return 0
    print(result.summary())
    for line in result.format_fds(limit=args.limit):
        print(" ", line)
    if args.limit is not None and len(result) > args.limit:
        print(f"  ... and {len(result) - args.limit} more")
    print(_engine_line(context))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profile import profile_relation

    relation = read_csv(
        args.path,
        has_header=not args.no_header,
        delimiter=args.delimiter,
        max_rows=args.max_rows,
    )
    print(profile_relation(relation).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    relation = read_csv(
        args.path,
        has_header=not args.no_header,
        delimiter=args.delimiter,
        max_rows=args.max_rows,
    )
    # One execution context for the whole comparison: the ground-truth
    # oracle and every compared algorithm share the preprocessed matrix
    # and partition cache.
    context = ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
    with use_context(context):
        truth = GroundTruthCache().truth_for(relation)
        rows = []
        for key in args.algorithms:
            run = timed(lambda: create(key).discover(relation))
            metrics = fd_set_metrics(run.value.fds, truth)
            rows.append(
                [
                    run.value.algorithm,
                    format_cell(run.seconds),
                    str(len(run.value.fds)),
                    format_cell(metrics.f1),
                ]
            )
    print_table(
        f"{relation.name} ({relation.num_rows}x{relation.num_columns}, "
        f"{len(truth)} true FDs)",
        ["Algorithm", "Time[s]", "FDs", "F1"],
        rows,
    )
    print(_engine_line(context))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    relation = registry.make(
        args.dataset, rows=args.rows, columns=args.columns, seed=args.seed
    )
    write_csv(relation, args.output)
    print(
        f"wrote {relation.num_rows}x{relation.num_columns} "
        f"{args.dataset!r} to {args.output}"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    relation = registry.make(
        args.dataset, rows=args.rows, columns=args.columns, seed=args.seed
    )
    recorder = Recorder()
    with recording(recorder):
        # Context built inside the recording so the preprocess span and
        # the engine.partition_cache.* counters land in the trace.
        with use_context(
            ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
        ):
            result = create(args.algorithm).discover(relation)
    if args.trace_out is not None:
        write_trace(recorder, args.trace_out, format=args.format)
        print(
            f"{result.algorithm} on {relation.name} "
            f"({relation.num_rows}x{relation.num_columns}): "
            f"{len(result)} FDs in {result.runtime_seconds:.3f}s; "
            f"wrote {args.format} trace ({len(recorder.events)} events) "
            f"to {args.trace_out}"
        )
    elif args.format == "jsonl":
        print(to_jsonl(recorder))
    elif args.format == "chrome":
        print(json.dumps(chrome_trace(recorder), indent=2))
    else:
        print(summary_tree(recorder))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in registry.dataset_names():
        entry = registry.info(name)
        rows.append(
            [
                name,
                str(entry.paper_rows),
                str(entry.paper_columns),
                "?" if entry.paper_fds is None else str(entry.paper_fds),
                str(entry.bench_rows),
            ]
        )
    print_table(
        "Registered benchmark datasets (paper scale vs bench scale)",
        ["Dataset", "Paper rows", "Paper cols", "Paper FDs", "Bench rows"],
        rows,
    )
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    for key in available_algorithms():
        print(key)
    return 0


_HANDLERS = {
    "discover": _cmd_discover,
    "profile": _cmd_profile,
    "compare": _cmd_compare,
    "generate": _cmd_generate,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "datasets": _cmd_datasets,
    "algorithms": _cmd_algorithms,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


def trace_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-trace`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace an FD-discovery run and export the observability log",
    )
    add_trace_arguments(parser)
    return _cmd_trace(parser.parse_args(argv))


def metrics_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-metrics`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description=(
            "Run an FD-discovery workload with live metrics and dump or "
            "serve the Prometheus/JSONL scrape"
        ),
    )
    add_metrics_arguments(parser)
    return _cmd_metrics(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
