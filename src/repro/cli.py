"""Command-line interface: ``repro-fd`` / ``python -m repro``.

Subcommands:

* ``discover``  — run an algorithm on a CSV file and print the FDs;
* ``compare``   — run several algorithms on one CSV and tabulate
  runtimes, FD counts, and F1 against an exact baseline;
* ``generate``  — materialize one of the registered benchmark datasets
  as CSV;
* ``trace``     — run an algorithm on a registered dataset under the
  observability recorder and export the trace (also installed as the
  ``repro-trace`` console script);
* ``datasets``  — list the registered benchmark datasets;
* ``algorithms`` — list the available discovery algorithms.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .algorithms import available_algorithms, create
from .bench.runner import GroundTruthCache, format_cell, print_table
from .datasets import registry
from .engine import ExecutionContext, backend_names, use_context
from .metrics import fd_set_metrics, timed
from .obs import Recorder, chrome_trace, recording, summary_tree, to_jsonl, write_trace
from .relation import read_csv, write_csv


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fd",
        description="EulerFD functional-dependency discovery (ICDE 2023 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    discover = commands.add_parser("discover", help="discover FDs in a CSV file")
    discover.add_argument("path", help="CSV file with a header row")
    discover.add_argument(
        "--algorithm", default="eulerfd", choices=available_algorithms()
    )
    discover.add_argument("--max-rows", type=int, default=None)
    discover.add_argument("--no-header", action="store_true")
    discover.add_argument("--delimiter", default=",")
    discover.add_argument(
        "--limit", type=int, default=None, help="print at most N FDs"
    )
    discover.add_argument(
        "--json", action="store_true", help="emit the result as JSON"
    )
    add_backend_argument(discover)

    profile = commands.add_parser(
        "profile", help="profile a CSV file: columns, keys, FDs"
    )
    profile.add_argument("path")
    profile.add_argument("--max-rows", type=int, default=None)
    profile.add_argument("--no-header", action="store_true")
    profile.add_argument("--delimiter", default=",")

    compare = commands.add_parser("compare", help="compare algorithms on a CSV file")
    compare.add_argument("path")
    compare.add_argument(
        "--algorithms",
        nargs="+",
        default=["tane", "fdep", "hyfd", "aidfd", "eulerfd"],
        choices=available_algorithms(),
    )
    compare.add_argument("--max-rows", type=int, default=None)
    compare.add_argument("--no-header", action="store_true")
    compare.add_argument("--delimiter", default=",")
    add_backend_argument(compare)

    generate = commands.add_parser(
        "generate", help="write a registered benchmark dataset as CSV"
    )
    generate.add_argument("dataset", choices=registry.dataset_names())
    generate.add_argument("output")
    generate.add_argument("--rows", type=int, default=None)
    generate.add_argument("--columns", type=int, default=None)
    generate.add_argument("--seed", type=int, default=None)

    trace = commands.add_parser(
        "trace",
        help="run an algorithm on a registered dataset and export its trace",
    )
    add_trace_arguments(trace)

    commands.add_parser("datasets", help="list registered benchmark datasets")
    commands.add_parser("algorithms", help="list available algorithms")
    return parser


def add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The execution-engine ``--backend`` selector, shared by subcommands."""
    parser.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help=(
            "execution-engine backend for partition/validation kernels "
            "(default: $REPRO_BACKEND or numpy)"
        ),
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="SPEC",
        help=(
            "worker pool for pair-sampling and validation: N or "
            "process:N for a process pool, thread:N for threads, serial "
            "to force the inline path (default: $REPRO_JOBS or serial)"
        ),
    )


def _engine_line(context: ExecutionContext) -> str:
    """One-line engine report printed under text-mode command output."""
    stats = context.partitions.stats()
    traffic = ", ".join(f"{key} {value}" for key, value in stats.items())
    line = f"engine: backend={context.backend.name}"
    pool = context.pool
    if not pool.is_serial:
        line += f" jobs={pool.kind}:{pool.jobs}"
    return f"{line} partition-cache: {traffic}"


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``trace`` options, shared by ``repro-fd trace`` and ``repro-trace``."""
    parser.add_argument(
        "--algorithm", default="eulerfd", choices=available_algorithms()
    )
    parser.add_argument(
        "--dataset", default="iris", choices=registry.dataset_names()
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--columns", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write the trace to this file instead of stdout",
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="summary",
        choices=("jsonl", "chrome", "summary"),
        help="trace flavor: raw JSONL events, Chrome trace JSON, or summary tree",
    )
    add_backend_argument(parser)


def _cmd_discover(args: argparse.Namespace) -> int:
    relation = read_csv(
        args.path,
        has_header=not args.no_header,
        delimiter=args.delimiter,
        max_rows=args.max_rows,
    )
    context = ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
    with use_context(context):
        result = create(args.algorithm).discover(relation)
    if args.json:
        print(result.to_json())
        return 0
    print(result.summary())
    for line in result.format_fds(limit=args.limit):
        print(" ", line)
    if args.limit is not None and len(result) > args.limit:
        print(f"  ... and {len(result) - args.limit} more")
    print(_engine_line(context))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profile import profile_relation

    relation = read_csv(
        args.path,
        has_header=not args.no_header,
        delimiter=args.delimiter,
        max_rows=args.max_rows,
    )
    print(profile_relation(relation).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    relation = read_csv(
        args.path,
        has_header=not args.no_header,
        delimiter=args.delimiter,
        max_rows=args.max_rows,
    )
    # One execution context for the whole comparison: the ground-truth
    # oracle and every compared algorithm share the preprocessed matrix
    # and partition cache.
    context = ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
    with use_context(context):
        truth = GroundTruthCache().truth_for(relation)
        rows = []
        for key in args.algorithms:
            run = timed(lambda: create(key).discover(relation))
            metrics = fd_set_metrics(run.value.fds, truth)
            rows.append(
                [
                    run.value.algorithm,
                    format_cell(run.seconds),
                    str(len(run.value.fds)),
                    format_cell(metrics.f1),
                ]
            )
    print_table(
        f"{relation.name} ({relation.num_rows}x{relation.num_columns}, "
        f"{len(truth)} true FDs)",
        ["Algorithm", "Time[s]", "FDs", "F1"],
        rows,
    )
    print(_engine_line(context))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    relation = registry.make(
        args.dataset, rows=args.rows, columns=args.columns, seed=args.seed
    )
    write_csv(relation, args.output)
    print(
        f"wrote {relation.num_rows}x{relation.num_columns} "
        f"{args.dataset!r} to {args.output}"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    relation = registry.make(
        args.dataset, rows=args.rows, columns=args.columns, seed=args.seed
    )
    recorder = Recorder()
    with recording(recorder):
        # Context built inside the recording so the preprocess span and
        # the engine.partition_cache.* counters land in the trace.
        with use_context(
            ExecutionContext(relation, backend=args.backend, jobs=args.jobs)
        ):
            result = create(args.algorithm).discover(relation)
    if args.trace_out is not None:
        write_trace(recorder, args.trace_out, format=args.format)
        print(
            f"{result.algorithm} on {relation.name} "
            f"({relation.num_rows}x{relation.num_columns}): "
            f"{len(result)} FDs in {result.runtime_seconds:.3f}s; "
            f"wrote {args.format} trace ({len(recorder.events)} events) "
            f"to {args.trace_out}"
        )
    elif args.format == "jsonl":
        print(to_jsonl(recorder))
    elif args.format == "chrome":
        print(json.dumps(chrome_trace(recorder), indent=2))
    else:
        print(summary_tree(recorder))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in registry.dataset_names():
        entry = registry.info(name)
        rows.append(
            [
                name,
                str(entry.paper_rows),
                str(entry.paper_columns),
                "?" if entry.paper_fds is None else str(entry.paper_fds),
                str(entry.bench_rows),
            ]
        )
    print_table(
        "Registered benchmark datasets (paper scale vs bench scale)",
        ["Dataset", "Paper rows", "Paper cols", "Paper FDs", "Bench rows"],
        rows,
    )
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    for key in available_algorithms():
        print(key)
    return 0


_HANDLERS = {
    "discover": _cmd_discover,
    "profile": _cmd_profile,
    "compare": _cmd_compare,
    "generate": _cmd_generate,
    "trace": _cmd_trace,
    "datasets": _cmd_datasets,
    "algorithms": _cmd_algorithms,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


def trace_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro-trace`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Trace an FD-discovery run and export the observability log",
    )
    add_trace_arguments(parser)
    return _cmd_trace(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
