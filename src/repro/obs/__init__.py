"""``repro.obs`` — tracing, metrics, and convergence telemetry.

The instrumentation substrate for the whole package (DESIGN.md §7).  It
sits *below* every other layer — ``fd``, ``relation``, ``core``, the
benchmark harness — so any module may record into it, and it imports
nothing from the rest of the package.

Instrumented code calls the module-level helpers (:func:`span`,
:func:`counter`, :func:`gauge`, :func:`point`); with no recorder
installed they are no-ops costing one thread-local read, so the
permanently instrumented hot paths stay free in production.  Wrap a run
in :func:`recording` to capture a full trace, then export it with
:func:`to_jsonl`, :func:`chrome_trace` (Perfetto / ``chrome://tracing``)
or :func:`summary_tree`, or read the typed :class:`RunTelemetry` a
traced :class:`~repro.core.result.DiscoveryResult` carries::

    from repro import obs

    with obs.recording() as recorder:
        result = create("eulerfd").discover(relation)
    print(obs.summary_tree(recorder))
    print(result.telemetry.series["gr_ncover"])
"""

from .clock import Clock, FakeClock, SystemClock, monotonic, system_clock
from .exporters import (
    chrome_trace,
    event_dicts,
    events_from_jsonl,
    summary_tree,
    to_jsonl,
    validate_chrome_trace,
    write_trace,
)
from .recorder import (
    NULL_SPAN,
    Event,
    Recorder,
    SpanHandle,
    counter,
    current_recorder,
    enabled,
    gauge,
    install,
    point,
    recording,
    span,
    uninstall,
)
from .telemetry import PhaseStat, RunTelemetry

__all__ = [
    "Clock",
    "Event",
    "FakeClock",
    "NULL_SPAN",
    "PhaseStat",
    "Recorder",
    "RunTelemetry",
    "SpanHandle",
    "SystemClock",
    "chrome_trace",
    "counter",
    "current_recorder",
    "enabled",
    "event_dicts",
    "events_from_jsonl",
    "gauge",
    "install",
    "monotonic",
    "point",
    "recording",
    "span",
    "summary_tree",
    "system_clock",
    "to_jsonl",
    "uninstall",
    "validate_chrome_trace",
    "write_trace",
]
