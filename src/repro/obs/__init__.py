"""``repro.obs`` — tracing, metrics, and convergence telemetry.

The instrumentation substrate for the whole package (DESIGN.md §7).  It
sits *below* every other layer — ``fd``, ``relation``, ``core``, the
benchmark harness — so any module may record into it, and it imports
nothing from the rest of the package.

Instrumented code calls the module-level helpers (:func:`span`,
:func:`counter`, :func:`gauge`, :func:`point`); with no recorder
installed they are no-ops costing one thread-local read, so the
permanently instrumented hot paths stay free in production.  Wrap a run
in :func:`recording` to capture a full trace, then export it with
:func:`to_jsonl`, :func:`chrome_trace` (Perfetto / ``chrome://tracing``)
or :func:`summary_tree`, or read the typed :class:`RunTelemetry` a
traced :class:`~repro.core.result.DiscoveryResult` carries::

    from repro import obs

    with obs.recording() as recorder:
        result = create("eulerfd").discover(relation)
    print(obs.summary_tree(recorder))
    print(result.telemetry.series["gr_ncover"])
"""

from . import names
from .clock import Clock, FakeClock, SystemClock, monotonic, system_clock
from .exporters import (
    chrome_trace,
    event_dicts,
    events_from_jsonl,
    summary_tree,
    to_jsonl,
    validate_chrome_trace,
    write_trace,
)
from .recorder import (
    NULL_SPAN,
    Event,
    Recorder,
    SpanHandle,
    counter,
    current_recorder,
    enabled,
    gauge,
    install,
    point,
    recording,
    span,
    uninstall,
)
from .metrics import (
    NULL_TIMER,
    Histogram,
    MetricsRegistry,
    collecting_metrics,
    current_metrics,
    exponential_buckets,
    install_metrics,
    metric_gauge_add,
    metric_gauge_max,
    metric_gauge_set,
    metric_inc,
    metric_observe,
    metric_time,
    metrics_enabled,
    metrics_from_jsonl,
    metrics_jsonl,
    prometheus_name,
    prometheus_text,
    uninstall_metrics,
)
from .prof import (
    NULL_PHASE,
    MemoryProfiler,
    current_profiler,
    memory_profiling,
    peak_rss_bytes,
    phase_memory,
)
from .telemetry import PhaseStat, RunTelemetry

__all__ = [
    "Clock",
    "Event",
    "FakeClock",
    "Histogram",
    "MemoryProfiler",
    "MetricsRegistry",
    "NULL_PHASE",
    "NULL_SPAN",
    "NULL_TIMER",
    "PhaseStat",
    "Recorder",
    "RunTelemetry",
    "SpanHandle",
    "SystemClock",
    "chrome_trace",
    "collecting_metrics",
    "counter",
    "current_metrics",
    "current_profiler",
    "current_recorder",
    "enabled",
    "event_dicts",
    "events_from_jsonl",
    "exponential_buckets",
    "gauge",
    "install",
    "install_metrics",
    "memory_profiling",
    "metric_gauge_add",
    "metric_gauge_max",
    "metric_gauge_set",
    "metric_inc",
    "metric_observe",
    "metric_time",
    "metrics_enabled",
    "metrics_from_jsonl",
    "metrics_jsonl",
    "monotonic",
    "names",
    "peak_rss_bytes",
    "phase_memory",
    "point",
    "prometheus_name",
    "prometheus_text",
    "recording",
    "span",
    "summary_tree",
    "system_clock",
    "to_jsonl",
    "uninstall",
    "uninstall_metrics",
    "validate_chrome_trace",
    "write_trace",
]
