"""The central metric-name catalog (DESIGN.md §10).

Every counter, gauge, series and histogram name recorded anywhere in the
package is declared here exactly once, as a module-level constant, with
its help line in :data:`CATALOG`.  Instrumented code imports the
constant; the lint rule RPR112 (metric-name discipline) flags call sites
that pass ad-hoc string literals instead.  Centralizing the names buys
three things:

* exporters (Prometheus, JSONL) can attach stable ``# HELP`` text;
* renames are one-line diffs instead of greps across layers;
* dashboards and the trajectory harness can rely on the spelling.

The catalog is *descriptive*, not enforced at runtime — the registry
accepts any name so tests and third-party extensions stay free to record
their own series.  Discipline is static (RPR112) by design.
"""

from __future__ import annotations

# -- engine: partition store ---------------------------------------------------

PARTITION_CACHE_HIT = "engine.partition_cache.hit"
PARTITION_CACHE_MISS = "engine.partition_cache.miss"
PARTITION_CACHE_DERIVE = "engine.partition_cache.derive"
PARTITION_CACHE_EVICT = "engine.partition_cache.evict"
PARTITION_CACHE_RESIDENT_BYTES = "engine.partition_cache.resident_bytes"
PARTITION_CACHE_EVICTED_BYTES = "engine.partition_cache.evicted_bytes"

# -- engine: validation front door --------------------------------------------

VALIDATE_CANDIDATES = "engine.validate.candidates"
VALIDATE_LHS_FOLDS = "engine.validate.lhs_folds"
VALIDATE_BATCH_SECONDS = "engine.validate.batch_seconds"

# -- engine: worker pool and shared memory ------------------------------------

POOL_BUSY_SECONDS = "engine.parallel.busy_seconds"
POOL_TASKS = "engine.parallel.tasks"
POOL_CHUNKS = "engine.parallel.chunks"
POOL_QUEUE_DEPTH = "engine.parallel.queue_depth"
POOL_WORKERS = "engine.parallel.workers"
SHM_SEGMENTS = "engine.shm.segments"
SHM_BYTES = "engine.shm.bytes"
MMAP_FILES = "engine.mmap.files"
MMAP_BYTES = "engine.mmap.bytes"

# -- covers --------------------------------------------------------------------

NCOVER_ADDED = "ncover.added"
NCOVER_GENERALIZATIONS_EVICTED = "ncover.generalizations_evicted"
PCOVER_ADDED = "pcover.added"
PCOVER_REMOVED = "pcover.removed"
PCOVER_SPECIALIZATIONS_EVICTED = "pcover.specializations_evicted"

# -- EulerFD core --------------------------------------------------------------

GR_NCOVER = "gr_ncover"
GR_PCOVER = "gr_pcover"
INVERTER_NON_FDS_INVERTED = "inverter.non_fds_inverted"
INVERTER_CANDIDATES_REMOVED = "inverter.candidates_removed"
INVERTER_CANDIDATES_ADDED = "inverter.candidates_added"
INCREMENTAL_PAIRS_COMPARED = "incremental.pairs_compared"
INCREMENTAL_APPEND_SECONDS = "incremental.append.latency"
INCREMENTAL_ROWS_TOTAL = "incremental.rows.total"
INCREMENTAL_STORE_DELTA_APPLIED = "incremental.store.delta_applied"
INCREMENTAL_STORE_DELTA_REBUILT = "incremental.store.delta_rebuilt"
SAMPLER_PASSES = "sampler.passes"
SAMPLER_CLUSTER_VISITS = "sampler.cluster_visits"
SAMPLER_PAIRS_COMPARED = "sampler.pairs_compared"
SAMPLER_NEW_NON_FDS = "sampler.new_non_fds"
SAMPLER_REVIVED_CLUSTERS = "sampler.revived_clusters"
SAMPLER_WINDOW_HITS = "sampler.window_hits"
MLFQ_PROMOTIONS = "mlfq.promotions"
MLFQ_DEMOTIONS = "mlfq.demotions"
MLFQ_OCCUPANCY = "mlfq.occupancy"

# -- baseline algorithms -------------------------------------------------------

TANE_VALIDATIONS = "tane.validations"
HYFD_PAIRS_COMPARED = "hyfd.pairs_compared"
HYFD_VALIDATIONS = "hyfd.validations"
HYFD_VIOLATED_CANDIDATES = "hyfd.violated_candidates"
AIDFD_PAIRS_COMPARED = "aidfd.pairs_compared"

# -- memory attribution (repro.obs.prof) --------------------------------------

MEM_PHASE_PREPROCESS = "mem.phase.preprocess.peak_bytes"
MEM_PHASE_CYCLE = "mem.phase.cycle.peak_bytes"
MEM_PHASE_SAMPLING = "mem.phase.sampling.peak_bytes"
MEM_PHASE_NCOVER = "mem.phase.ncover.peak_bytes"
MEM_PHASE_INVERSION = "mem.phase.inversion.peak_bytes"
MEM_RUN_PEAK_TRACEMALLOC = "mem.run.peak_tracemalloc_bytes"

CATALOG: dict[str, str] = {
    PARTITION_CACHE_HIT: "Partition-store lookups served from cache",
    PARTITION_CACHE_MISS: "Partition-store lookups that required derivation",
    PARTITION_CACHE_DERIVE: "Stripped-partition products performed",
    PARTITION_CACHE_EVICT: "Partition-store entries evicted by the LRU",
    PARTITION_CACHE_RESIDENT_BYTES: "Estimated bytes held by the partition store (pinned included)",
    PARTITION_CACHE_EVICTED_BYTES: "Estimated bytes released by partition-store evictions",
    VALIDATE_CANDIDATES: "FD candidates submitted to validate_many",
    VALIDATE_LHS_FOLDS: "Candidate groups after LHS folding",
    VALIDATE_BATCH_SECONDS: "Wall time per validate_many batch",
    POOL_BUSY_SECONDS: "Summed worker-side busy seconds",
    POOL_TASKS: "Worker-pool dispatches (one map_chunks call)",
    POOL_CHUNKS: "Chunks fanned out across all dispatches",
    POOL_QUEUE_DEPTH: "Chunks awaiting completion in the current dispatch",
    POOL_WORKERS: "Workers configured on the active pool",
    SHM_SEGMENTS: "Live shared-memory segments published by this process",
    SHM_BYTES: "Bytes resident in live shared-memory segments",
    MMAP_FILES: "Live mmap-backed encoded-matrix files published by this process",
    MMAP_BYTES: "Bytes written to live mmap-backed encoded-matrix files",
    NCOVER_ADDED: "Non-FDs admitted to the negative cover",
    NCOVER_GENERALIZATIONS_EVICTED: "Generalizations evicted on non-FD insert",
    PCOVER_ADDED: "FDs admitted to the positive cover",
    PCOVER_REMOVED: "FDs removed from the positive cover",
    PCOVER_SPECIALIZATIONS_EVICTED: "Specializations evicted on FD insert",
    GR_NCOVER: "Negative-cover growth rate per sampling round",
    GR_PCOVER: "Positive-cover growth rate per inversion cycle",
    INVERTER_NON_FDS_INVERTED: "Non-FDs processed by cover inversion",
    INVERTER_CANDIDATES_REMOVED: "Candidates removed during inversion",
    INVERTER_CANDIDATES_ADDED: "Specialized candidates added during inversion",
    INCREMENTAL_PAIRS_COMPARED: "Row pairs compared by incremental updates",
    INCREMENTAL_APPEND_SECONDS: "Wall time per incremental append batch",
    INCREMENTAL_ROWS_TOTAL: "Rows ingested through the incremental append path",
    INCREMENTAL_STORE_DELTA_APPLIED: "Cached partitions extended in place by a store delta",
    INCREMENTAL_STORE_DELTA_REBUILT: "Cached partitions released by a store delta for on-demand re-derivation",
    SAMPLER_PASSES: "MLFQ sampling passes executed",
    SAMPLER_CLUSTER_VISITS: "Cluster visits across sampling passes",
    SAMPLER_PAIRS_COMPARED: "Row pairs compared by the sampler",
    SAMPLER_NEW_NON_FDS: "New non-FDs found by sampling",
    SAMPLER_REVIVED_CLUSTERS: "Retired clusters revived for a new cycle",
    SAMPLER_WINDOW_HITS: "Neighborhood-window comparisons that found a violation",
    MLFQ_PROMOTIONS: "Cluster promotions in the multi-level feedback queue",
    MLFQ_DEMOTIONS: "Cluster demotions in the multi-level feedback queue",
    MLFQ_OCCUPANCY: "Clusters resident in the MLFQ after a pass",
    TANE_VALIDATIONS: "Partition-based validations performed by Tane",
    HYFD_PAIRS_COMPARED: "Row pairs compared by HyFD sampling",
    HYFD_VALIDATIONS: "Candidate validations performed by HyFD",
    HYFD_VIOLATED_CANDIDATES: "HyFD candidates refuted by validation",
    AIDFD_PAIRS_COMPARED: "Row pairs swept by AID-FD",
    MEM_PHASE_PREPROCESS: "Peak tracemalloc delta inside the preprocess phase",
    MEM_PHASE_CYCLE: "Peak tracemalloc delta inside one EulerFD cycle",
    MEM_PHASE_SAMPLING: "Peak tracemalloc delta inside the sampling phase",
    MEM_PHASE_NCOVER: "Peak tracemalloc delta inside negative-cover maintenance",
    MEM_PHASE_INVERSION: "Peak tracemalloc delta inside cover inversion",
    MEM_RUN_PEAK_TRACEMALLOC: "Peak traced bytes over the whole profiled run",
}
"""Every catalogued name mapped to its one-line help text."""


def metric_help(name: str) -> str:
    """The catalog help line for ``name`` (empty for uncatalogued names).

    Pure: a dictionary lookup.
    """
    return CATALOG.get(name, "")
