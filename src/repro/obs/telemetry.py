"""Typed per-run telemetry attached to discovery results.

:class:`RunTelemetry` replaces the ad-hoc ``stats`` dicts each algorithm
used to populate with whatever keys it liked: counters, named (x, y)
series and a per-phase wall-time breakdown, all typed and all produced
by the same recorder slice.  A result's legacy ``stats`` dict remains as
a counters view for existing callers, but the telemetry object is the
structured record — the ``GR_Ncover``/``GR_Pcover`` trajectories behind
the paper's Fig. 11 convergence curves are first-class series here, not
a float that survived the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .recorder import COUNTER, POINT, SPAN, Event, Recorder

SeriesPoint = tuple[float, float]
"""One (x, y) sample of a named series."""


@dataclass(frozen=True)
class PhaseStat:
    """Aggregated wall time of one span path (e.g. ``cycle/sampling``)."""

    path: str
    """Span names joined by ``/`` from the outermost enclosing span."""
    count: int
    total_seconds: float
    self_seconds: float
    """Total minus the time spent in child spans."""


@dataclass(frozen=True)
class RunTelemetry:
    """Everything one run recorded, sliced out of the active recorder."""

    counters: dict[str, float]
    series: dict[str, tuple[SeriesPoint, ...]]
    phases: tuple[PhaseStat, ...]

    @classmethod
    def from_recorder(cls, recorder: Recorder, mark: int = 0) -> RunTelemetry:
        """Build telemetry from the events recorded at or after ``mark``.

        Only *closed* spans contribute to the phase breakdown; a span
        still open at snapshot time (e.g. the enclosing ``discover``
        span) has no duration yet and is skipped.
        """
        events = recorder.events_since(mark)
        counters: dict[str, float] = {}
        series: dict[str, list[SeriesPoint]] = {}
        for event in events:
            if event.kind == COUNTER:
                counters[event.name] = counters.get(event.name, 0) + event.value
            elif event.kind == POINT:
                series.setdefault(event.name, []).append((event.x, event.value))
        return cls(
            counters=counters,
            series={name: tuple(points) for name, points in series.items()},
            phases=phase_stats(events, recorder),
        )

    def series_values(self, name: str) -> list[float]:
        """The y-values of one series, in record order (empty if absent)."""
        return [y for _, y in self.series.get(name, ())]

    def phase(self, path: str) -> PhaseStat | None:
        """The aggregate for one span path, or None when never entered."""
        for stat in self.phases:
            if stat.path == path:
                return stat
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (used by ``DiscoveryResult.to_dict``)."""
        return {
            "counters": dict(self.counters),
            "series": {
                name: [[x, y] for x, y in points]
                for name, points in self.series.items()
            },
            "phases": [
                {
                    "path": stat.path,
                    "count": stat.count,
                    "total_seconds": stat.total_seconds,
                    "self_seconds": stat.self_seconds,
                }
                for stat in self.phases
            ],
        }


def span_path(event: Event, recorder: Recorder) -> str:
    """A span's ``outer/inner`` name path via its parent chain."""
    names = [event.name]
    parent = event.parent
    while parent is not None:
        parent_event = recorder.events[parent]
        names.append(parent_event.name)
        parent = parent_event.parent
    return "/".join(reversed(names))


def phase_stats(events: list[Event], recorder: Recorder) -> tuple[PhaseStat, ...]:
    """Aggregate closed spans by path, in first-appearance order.

    Self time subtracts each closed child's duration from its parent's
    total, so a path's ``self_seconds`` is the wall time spent in that
    phase's own code rather than in instrumented sub-phases.
    """
    order: list[str] = []
    count: dict[str, int] = {}
    total: dict[str, float] = {}
    child_time: dict[int, float] = {}
    closed = [
        event for event in events if event.kind == SPAN and event.end is not None
    ]
    for event in closed:
        path = span_path(event, recorder)
        if path not in count:
            order.append(path)
            count[path] = 0
            total[path] = 0.0
        count[path] += 1
        total[path] += event.end - event.time
        if event.parent is not None:
            child_time[event.parent] = (
                child_time.get(event.parent, 0.0) + event.end - event.time
            )
    self_time: dict[str, float] = {path: 0.0 for path in order}
    for event in closed:
        path = span_path(event, recorder)
        duration = event.end - event.time
        self_time[path] += duration - child_time.get(event.seq, 0.0)
    return tuple(
        PhaseStat(
            path=path,
            count=count[path],
            total_seconds=total[path],
            self_seconds=self_time[path],
        )
        for path in order
    )
