"""The event recorder and its zero-overhead-when-disabled front door.

Instrumented code never talks to a :class:`Recorder` directly; it calls
the module-level helpers :func:`span`, :func:`counter`, :func:`gauge`
and :func:`point`.  When no recorder is installed (the default), those
helpers reduce to one thread-local read and a ``None`` check — no event
objects, no allocation, no clock reading — so permanently instrumented
hot paths (the sampler inner loop, the cover insertions) cost nothing in
production runs.  Installing a recorder via :func:`recording` turns the
same call sites into a full structured trace.

Four primitives cover the paper's dynamics:

* **spans** — nested named intervals (preprocess, one sampling pass, one
  inversion) with attributes, exported as a Chrome trace or summary tree;
* **counters** — monotonically accumulated totals (pairs compared,
  non-FDs admitted, MLFQ promotions);
* **gauges** — point-in-time readings (queue occupancy after a pass);
* **series points** — explicit (x, y) trajectories, used for the
  ``GR_Ncover``/``GR_Pcover`` growth rates behind Algorithms 2-3's
  stopping criteria.

The recorder itself is deliberately a flat, append-only event log: every
primitive appends one :class:`Event`, so chronological ordering, marks
(:meth:`Recorder.mark`) and per-run telemetry slices are all plain list
indexing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

from .clock import Clock, SystemClock

SPAN = "span"
COUNTER = "counter"
GAUGE = "gauge"
POINT = "point"


@dataclass
class Event:
    """One recorded observation.

    ``kind`` is one of :data:`SPAN`, :data:`COUNTER`, :data:`GAUGE`,
    :data:`POINT`.  Spans are appended at *start* time (so the event list
    is ordered by start) and get ``end`` filled in on exit; the other
    kinds are complete on append.  ``seq`` is the event's index in the
    recorder's log and doubles as the span id ``parent`` refers to.
    """

    kind: str
    name: str
    time: float
    seq: int
    value: float | None = None
    """Counter delta, gauge reading, or series y-value."""
    x: float | None = None
    """Series x-coordinate (round number, cycle number, ...)."""
    end: float | None = None
    """Span end time; None while open (or for non-span events)."""
    parent: int | None = None
    """Enclosing span's ``seq``, None at top level."""
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """The shared do-nothing span handle returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes.

        Pure: by construction — the null span touches nothing.
        """


NULL_SPAN = _NullSpan()
"""Singleton no-op span; identity-comparable in overhead tests."""


class SpanHandle:
    """Context manager closing one open span on exit."""

    __slots__ = ("_recorder", "_event")

    def __init__(self, recorder: Recorder, event: Event) -> None:
        self._recorder = recorder
        self._event = event

    def __enter__(self) -> SpanHandle:
        return self

    def __exit__(self, *exc: object) -> bool:
        self._recorder._close_span(self._event)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span after it opened.

        Mutates: self
        """
        self._event.attrs.update(attrs)


class Recorder:
    """An append-only event log with an injectable clock.

    Not thread-safe by design: one recorder belongs to the thread it is
    installed on (installation itself is thread-local), matching the
    single-threaded discovery algorithms it instruments.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.events: list[Event] = []
        self.counter_totals: dict[str, float] = {}
        self._stack: list[Event] = []
        self.start_time = self.clock.now()

    # -- the four primitives ------------------------------------------------

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """Open a nested span; close it by exiting the returned handle.

        Mutates: self
        """
        parent = self._stack[-1] if self._stack else None
        event = Event(
            kind=SPAN,
            name=name,
            time=self.clock.now(),
            seq=len(self.events),
            parent=None if parent is None else parent.seq,
            depth=len(self._stack),
            attrs=attrs,
        )
        self.events.append(event)
        self._stack.append(event)
        return SpanHandle(self, event)

    def counter(self, name: str, amount: float = 1) -> None:
        """Accumulate ``amount`` onto the named counter.

        Mutates: self
        """
        total = self.counter_totals.get(name, 0) + amount
        self.counter_totals[name] = total
        self.events.append(
            Event(
                kind=COUNTER,
                name=name,
                time=self.clock.now(),
                seq=len(self.events),
                value=amount,
                parent=self._stack[-1].seq if self._stack else None,
                depth=len(self._stack),
            )
        )

    def gauge(self, name: str, value: float, **attrs: Any) -> None:
        """Record one point-in-time reading.

        Mutates: self
        """
        self.events.append(
            Event(
                kind=GAUGE,
                name=name,
                time=self.clock.now(),
                seq=len(self.events),
                value=value,
                parent=self._stack[-1].seq if self._stack else None,
                depth=len(self._stack),
                attrs=attrs,
            )
        )

    def point(self, name: str, x: float, y: float, **attrs: Any) -> None:
        """Append one (x, y) point to the named series.

        Mutates: self
        """
        self.events.append(
            Event(
                kind=POINT,
                name=name,
                time=self.clock.now(),
                seq=len(self.events),
                value=y,
                x=x,
                parent=self._stack[-1].seq if self._stack else None,
                depth=len(self._stack),
                attrs=attrs,
            )
        )

    # -- slicing -------------------------------------------------------------

    def mark(self) -> int:
        """A position in the event log; pass to :meth:`events_since`.

        Pure: reads the log length only.
        """
        return len(self.events)

    def events_since(self, mark: int = 0) -> list[Event]:
        """The events appended at or after ``mark``.

        Pure: snapshots the log without touching it.
        """
        return self.events[mark:]

    def series(self, name: str) -> list[tuple[float, float]]:
        """The (x, y) points of one named series, in record order.

        Pure: a read-only scan of the log.
        """
        return [
            (event.x, event.value)
            for event in self.events
            if event.kind == POINT and event.name == name
        ]

    def span_events(self) -> list[Event]:
        """Every span event, ordered by start.

        Pure: a read-only scan of the log.
        """
        return [event for event in self.events if event.kind == SPAN]

    def _close_span(self, event: Event) -> None:
        """Stamp a span's end time and unwind the open-span stack.

        Out-of-order exits (possible only through misuse of the handle
        outside ``with``) close every span opened after ``event`` too, so
        the stack can never corrupt later parentage.

        Mutates: self, event
        """
        now = self.clock.now()
        while self._stack:
            open_event = self._stack.pop()
            open_event.end = now
            if open_event is event:
                break

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Recorder(events={len(self.events)}, open={len(self._stack)})"


# -- the thread-local front door ---------------------------------------------

_ACTIVE = threading.local()


def current_recorder() -> Recorder | None:
    """The recorder installed on this thread, or None when tracing is off.

    Pure: one thread-local read.
    """
    return getattr(_ACTIVE, "recorder", None)


def enabled() -> bool:
    """True when a recorder is installed on this thread.

    Pure: one thread-local read.
    """
    return getattr(_ACTIVE, "recorder", None) is not None


def install(recorder: Recorder) -> None:
    """Make ``recorder`` this thread's active recorder."""
    _ACTIVE.recorder = recorder


def uninstall() -> None:
    """Disable tracing on this thread."""
    _ACTIVE.recorder = None


@contextmanager
def recording(recorder: Recorder | None = None) -> Iterator[Recorder]:
    """Install a recorder for the duration of the block.

    Creates a fresh :class:`Recorder` when none is given; the previously
    installed recorder (usually None) is restored on exit, so recordings
    nest without leaking into later code.
    """
    active = recorder if recorder is not None else Recorder()
    previous = current_recorder()
    _ACTIVE.recorder = active
    try:
        yield active
    finally:
        _ACTIVE.recorder = previous


def span(name: str, **attrs: Any) -> SpanHandle | _NullSpan:
    """Open a span on the active recorder; no-op when tracing is off.

    The caller must exit the handle (``with span(...)``) — entering and
    never exiting corrupts the recorder's open-span stack.

    Pure: never mutates its arguments (the fast-path promise hot loops
        rely on; the write goes to the thread-local recorder, if any).
    Owns: return
    """
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


def counter(name: str, amount: float = 1) -> None:
    """Bump a counter on the active recorder; no-op when tracing is off.

    Pure: never mutates its arguments.
    """
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is not None:
        recorder.counter(name, amount)


def gauge(name: str, value: float, **attrs: Any) -> None:
    """Record a gauge on the active recorder; no-op when tracing is off.

    Pure: never mutates its arguments.
    """
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is not None:
        recorder.gauge(name, value, **attrs)


def point(name: str, x: float, y: float, **attrs: Any) -> None:
    """Record a series point on the active recorder; no-op when off.

    Pure: never mutates its arguments.
    """
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is not None:
        recorder.point(name, x, y, **attrs)
