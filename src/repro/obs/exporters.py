"""Trace exporters: JSONL event log, Chrome trace JSON, summary tree.

Three views of one recorder, for three audiences:

* :func:`to_jsonl` — the raw event log, one JSON object per line, for
  ad-hoc downstream tooling (pandas, jq) and lossless archiving;
* :func:`chrome_trace` — the Trace Event Format understood by Perfetto
  and ``chrome://tracing``: spans become complete (``"X"``) events,
  counters/gauges/series become counter (``"C"``) tracks, so a single
  EulerFD run opens as a flame chart with the ``GR_Ncover`` trajectory
  plotted under it;
* :func:`summary_tree` — a human-readable per-phase breakdown printed by
  the CLI, the quick answer to "where did the time go".

:func:`validate_chrome_trace` checks the schema invariants the Chrome
format requires; the CI trace-smoke job and the exporter tests share it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .recorder import COUNTER, GAUGE, POINT, SPAN, Recorder
from .telemetry import phase_stats

_PHASES = {"B", "E", "X", "C", "M", "I"}
"""Trace-event phase codes this exporter may emit."""


# -- JSONL --------------------------------------------------------------------


def event_dicts(recorder: Recorder) -> list[dict[str, Any]]:
    """Every event as a JSON-ready dict, in log order."""
    rows: list[dict[str, Any]] = []
    for event in recorder.events:
        row: dict[str, Any] = {
            "seq": event.seq,
            "kind": event.kind,
            "name": event.name,
            "t": event.time,
            "depth": event.depth,
        }
        if event.parent is not None:
            row["parent"] = event.parent
        if event.value is not None:
            row["value"] = event.value
        if event.x is not None:
            row["x"] = event.x
        if event.end is not None:
            row["end"] = event.end
        if event.attrs:
            row["attrs"] = dict(event.attrs)
        rows.append(row)
    return rows


def to_jsonl(recorder: Recorder) -> str:
    """The whole log as newline-delimited JSON (one event per line)."""
    return "\n".join(
        json.dumps(row, sort_keys=True, default=str) for row in event_dicts(recorder)
    )


def events_from_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse :func:`to_jsonl` output back into event dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- Chrome trace-event JSON --------------------------------------------------


def chrome_trace(recorder: Recorder, process_name: str = "repro") -> dict[str, Any]:
    """The log in Chrome Trace Event Format (Perfetto-loadable).

    Timestamps are microseconds relative to the recorder's creation;
    still-open spans are emitted as begin (``"B"``) events so partial
    traces of an interrupted run remain loadable.
    """
    origin = recorder.start_time
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 1,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    totals: dict[str, float] = {}
    for event in recorder.events:
        ts = (event.time - origin) * 1e6
        if event.kind == SPAN:
            row: dict[str, Any] = {
                "name": event.name,
                "cat": "span",
                "pid": 1,
                "tid": 1,
                "ts": ts,
                "args": {key: str(value) for key, value in event.attrs.items()},
            }
            if event.end is None:
                row["ph"] = "B"
            else:
                row["ph"] = "X"
                row["dur"] = (event.end - event.time) * 1e6
            events.append(row)
        elif event.kind == COUNTER:
            totals[event.name] = totals.get(event.name, 0) + event.value
            events.append(
                {
                    "ph": "C",
                    "name": event.name,
                    "cat": "counter",
                    "pid": 1,
                    "tid": 1,
                    "ts": ts,
                    "args": {event.name: totals[event.name]},
                }
            )
        elif event.kind in (GAUGE, POINT):
            events.append(
                {
                    "ph": "C",
                    "name": event.name,
                    "cat": "series" if event.kind == POINT else "gauge",
                    "pid": 1,
                    "tid": 1,
                    "ts": ts,
                    "args": {event.name: event.value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema problems of a Chrome trace payload (empty list = valid).

    Checks the invariants the viewers actually require: a
    ``traceEvents`` list whose entries carry a string ``name``, a known
    ``ph`` code, numeric non-negative ``ts``, integer ``pid``/``tid``,
    and a numeric ``dur`` on complete (``"X"``) events.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload is missing the 'traceEvents' list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing string 'name'")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete event needs a numeric 'dur'")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event needs an 'args' object")
    return problems


# -- human-readable summary ---------------------------------------------------


def summary_tree(recorder: Recorder) -> str:
    """Per-phase wall-time tree plus counter and series summaries."""
    stats = phase_stats(recorder.events, recorder)
    lines: list[str] = [
        f"trace: {len(recorder.events)} events, "
        f"{sum(1 for e in recorder.events if e.kind == SPAN)} spans"
    ]
    if stats:
        width = max(len("  " * s.path.count("/") + s.path.rsplit("/", 1)[-1]) for s in stats)
        lines.append("phases:")
        for stat in stats:
            label = "  " * stat.path.count("/") + stat.path.rsplit("/", 1)[-1]
            lines.append(
                f"  {label.ljust(width)}  {stat.count:>5}x  "
                f"total {stat.total_seconds:.6f}s  self {stat.self_seconds:.6f}s"
            )
    if recorder.counter_totals:
        lines.append("counters:")
        width = max(len(name) for name in recorder.counter_totals)
        for name in sorted(recorder.counter_totals):
            total = recorder.counter_totals[name]
            rendered = f"{total:g}"
            lines.append(f"  {name.ljust(width)}  {rendered}")
    series_names: list[str] = []
    for event in recorder.events:
        if event.kind == POINT and event.name not in series_names:
            series_names.append(event.name)
    if series_names:
        lines.append("series:")
        width = max(len(name) for name in series_names)
        for name in series_names:
            points = recorder.series(name)
            lines.append(
                f"  {name.ljust(width)}  {len(points)} points  "
                f"first={points[0][1]:.6f}  last={points[-1][1]:.6f}"
            )
    return "\n".join(lines)


# -- file helpers -------------------------------------------------------------


def write_trace(recorder: Recorder, path: str | Path, format: str = "jsonl") -> None:
    """Write one exporter's output to ``path`` (UTF-8).

    ``format`` is ``"jsonl"``, ``"chrome"`` or ``"summary"`` — the same
    names the ``repro-trace`` CLI accepts.
    """
    path = Path(path)
    if format == "jsonl":
        text = to_jsonl(recorder) + "\n"
    elif format == "chrome":
        text = json.dumps(chrome_trace(recorder), indent=2) + "\n"
    elif format == "summary":
        text = summary_tree(recorder) + "\n"
    else:
        raise ValueError(f"unknown trace format {format!r}")
    path.write_text(text, encoding="utf-8")
