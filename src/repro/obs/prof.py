"""Per-phase memory attribution via tracemalloc (DESIGN.md §10).

Telemetry already answers "where did the time go" (per-phase self time
from the span tree); this module answers "where did the memory go".  A
:class:`MemoryProfiler` keeps a stack of open *memory phases*; entering
one snapshots the current traced size and resets tracemalloc's peak
watermark, exiting records the phase's **peak delta** — the high-water
mark reached inside the phase, minus the bytes already live when it
began — as a max-gauge on the active metrics registry.  Nested phases
propagate their observed peak outward, so a spike inside ``sampling``
also counts toward the enclosing ``cycle``.

The front door mirrors the recorder's zero-overhead contract: with no
profiler installed, :func:`phase_memory` is one module-global read and a
``None`` check returning the shared :data:`NULL_PHASE` handle —
tracemalloc (a real, roughly 2× interpreter slowdown) only runs inside
:func:`memory_profiling`.  That cost is why the trajectory harness times
its repeats *without* the profiler and runs one extra profiled pass for
attribution.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from collections.abc import Iterator

from .metrics import metric_gauge_max


class _NullPhase:
    """The shared do-nothing phase handle returned while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> _NullPhase:
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_PHASE = _NullPhase()
"""Singleton no-op phase; identity-comparable in overhead tests."""


class _PhaseFrame:
    """One open phase: its baseline and the highest peak seen so far."""

    __slots__ = ("name", "baseline", "observed_peak")

    def __init__(self, name: str, baseline: int) -> None:
        self.name = name
        self.baseline = baseline
        self.observed_peak = baseline


class _PhaseHandle:
    """Context manager closing one open memory phase on exit."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: MemoryProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> _PhaseHandle:
        self._profiler._enter(self._name)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._profiler._exit()
        return False


class MemoryProfiler:
    """A stack of memory phases over one tracemalloc session.

    tracemalloc exposes a single global peak watermark; the profiler
    resets it at every phase boundary and folds the segment peaks into
    the enclosing frames, so each phase's recorded value is the true
    high-water mark over its whole extent, nested phases included.

    Peak deltas land on the metrics registry as max-gauges keyed by the
    phase name (use the ``mem.phase.*`` catalog constants), so repeated
    phases — every sampling pass of every cycle — report their worst
    case.  :attr:`peaks` keeps the same maxima locally for callers that
    profile without a registry installed.
    """

    def __init__(self) -> None:
        self._stack: list[_PhaseFrame] = []
        self.peaks: dict[str, int] = {}

    def phase(self, name: str) -> _PhaseHandle:
        """A context manager attributing the block's peak to ``name``.

        Owns: return
        """
        return _PhaseHandle(self, name)

    def run_peak(self) -> int:
        """The highest phase peak observed so far, in bytes.

        Pure: reads the recorded maxima only.
        """
        return max(self.peaks.values(), default=0)

    def _enter(self, name: str) -> None:
        current, running_peak = tracemalloc.get_traced_memory()
        if self._stack:
            parent = self._stack[-1]
            if running_peak > parent.observed_peak:
                parent.observed_peak = running_peak
        tracemalloc.reset_peak()
        self._stack.append(_PhaseFrame(name, current))

    def _exit(self) -> None:
        _, running_peak = tracemalloc.get_traced_memory()
        frame = self._stack.pop()
        absolute_peak = max(running_peak, frame.observed_peak)
        delta = max(absolute_peak - frame.baseline, 0)
        if delta > self.peaks.get(frame.name, -1):
            self.peaks[frame.name] = delta
        metric_gauge_max(frame.name, float(delta))
        if self._stack:
            parent = self._stack[-1]
            if absolute_peak > parent.observed_peak:
                parent.observed_peak = absolute_peak
        tracemalloc.reset_peak()


# -- the process-global front door --------------------------------------------

_ACTIVE_PROFILER: MemoryProfiler | None = None


def current_profiler() -> MemoryProfiler | None:
    """The installed profiler, or None while memory profiling is off.

    Pure: one module-global read.
    """
    return _ACTIVE_PROFILER


def phase_memory(name: str) -> _PhaseHandle | _NullPhase:
    """Open a memory phase; no-op while memory profiling is off.

    Pure: never mutates its arguments (the fast-path promise; the write
        goes to the process-global profiler, if any).
    Owns: return
    """
    profiler = _ACTIVE_PROFILER
    if profiler is None:
        return NULL_PHASE
    return profiler.phase(name)


@contextmanager
def memory_profiling(
    profiler: MemoryProfiler | None = None,
) -> Iterator[MemoryProfiler]:
    """Install a memory profiler (and tracemalloc) for the block.

    Starts tracemalloc if it is not already tracing and stops it on exit
    only if this block started it, so profiled regions nest and coexist
    with externally managed tracing.  The previously installed profiler
    (usually None) is restored on exit.
    """
    global _ACTIVE_PROFILER
    active = profiler if profiler is not None else MemoryProfiler()
    owns_tracing = not tracemalloc.is_tracing()
    if owns_tracing:
        tracemalloc.start()
    previous = _ACTIVE_PROFILER
    _ACTIVE_PROFILER = active
    try:
        yield active
    finally:
        _ACTIVE_PROFILER = previous
        if owns_tracing:
            tracemalloc.stop()


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set size, in bytes.

    ``getrusage`` reports kilobytes on Linux and bytes on macOS; both
    are normalized to bytes.  Returns 0 where :mod:`resource` is
    unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys

    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024
