"""Clock abstraction for the observability layer.

Every timestamp the package records flows through a :class:`Clock`, for
two reasons.  First, determinism: tests inject a :class:`FakeClock` and
get byte-stable traces — span durations, event ordering and exporter
output no longer depend on the host's scheduler.  Second, discipline:
lint rule RPR104 bans direct ``time.time``/``time.perf_counter`` calls
everywhere in ``src/repro`` outside this package and ``repro.metrics``,
so this module is the single place the wall clock enters the system.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """A monotonic time source measured in float seconds."""

    def now(self) -> float:
        """The current monotonic reading, in seconds."""


class SystemClock:
    """The real monotonic clock (``time.perf_counter``)."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """A manually-advanced clock for deterministic tests.

    ``tick`` optionally auto-advances the clock by a fixed step on every
    reading, so a plain sequence of instrumentation calls yields strictly
    increasing, predictable timestamps without any ``advance()`` calls.
    """

    __slots__ = ("_now", "tick")

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        reading = self._now
        self._now += self.tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``.

        Mutates: self
        """
        if seconds < 0:
            raise ValueError(f"a monotonic clock cannot go back: {seconds}")
        self._now += seconds


_SYSTEM_CLOCK = SystemClock()


def system_clock() -> SystemClock:
    """The shared :class:`SystemClock` instance.

    Pure: returns a module-level singleton.
    """
    return _SYSTEM_CLOCK


def monotonic() -> float:
    """One reading of the system monotonic clock.

    The sanctioned replacement for direct ``time.perf_counter()`` calls
    (RPR104): runtime stamps such as :class:`repro.core.result.Stopwatch`
    route through here so clock usage stays auditable in one module.
    """
    return _SYSTEM_CLOCK.now()
