"""The process-wide metrics registry (DESIGN.md §10).

Where :mod:`repro.obs.recorder` answers *what happened during this run*
(an ordered event log, installed per thread, exported as a trace), this
module answers *what is the process doing right now*: monotonic
counters, last-value gauges and fixed-exponential-bucket histograms,
aggregated in place and scraped on demand.  The two share the same
contract — permanently instrumented call sites, zero overhead while
disabled — but differ in scope: the registry is **process-global** so
worker-pool callbacks, shm bookkeeping and store evictions on any thread
land in one place a Prometheus scrape can see.

The front door mirrors the recorder's: module-level helpers
(:func:`metric_inc`, :func:`metric_gauge_set`, :func:`metric_gauge_add`,
:func:`metric_gauge_max`, :func:`metric_observe`, :func:`metric_time`)
reduce to one module-global read and a ``None`` check when no registry
is installed; :func:`metric_time` returns the shared :data:`NULL_TIMER`
handle, the registry analogue of ``NULL_SPAN``.  Install a registry for
a block with :func:`collecting_metrics`, then export it with
:func:`prometheus_text` (the text exposition format) or
:func:`metrics_jsonl` / :func:`metrics_from_jsonl` (lossless
round-trip).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from contextlib import contextmanager
from collections.abc import Iterator
from typing import Any

from .clock import Clock, SystemClock
from .names import metric_help

DEFAULT_BUCKET_START = 0.001
"""First histogram bucket bound: one millisecond."""

DEFAULT_BUCKET_GROWTH = 2.0
"""Exponential growth factor between consecutive bucket bounds."""

DEFAULT_BUCKET_COUNT = 16
"""Finite bucket bounds per histogram (an overflow bucket follows)."""


def exponential_buckets(
    start: float = DEFAULT_BUCKET_START,
    growth: float = DEFAULT_BUCKET_GROWTH,
    count: int = DEFAULT_BUCKET_COUNT,
) -> tuple[float, ...]:
    """``count`` upper bounds growing geometrically from ``start``.

    Pure: computes a fresh tuple from its arguments.
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1, got {growth}")
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    return tuple(start * growth**i for i in range(count))


class Histogram:
    """Fixed-bucket histogram: counts per bound, plus sum and count.

    ``bounds`` are inclusive upper bounds; ``counts`` has one extra
    trailing slot for observations above the last bound (the ``+Inf``
    bucket in Prometheus terms).  Buckets are fixed at construction, so
    observation is one bisect and two adds — cheap enough for per-batch
    latencies on the validation path.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bounds must be distinct and ascending: {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation.

        Mutates: self
        """
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def bucket_index(self, value: float) -> int:
        """The index of the bucket ``value`` falls in (len(bounds) = +Inf).

        Pure: a bisect over the fixed bounds.
        """
        return bisect_left(self.bounds, value)


class _Timer:
    """Context manager observing its block's duration into a histogram."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> _Timer:
        self._start = self._registry.clock.now()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._registry.observe(
            self._name, self._registry.clock.now() - self._start
        )
        return False


class _NullTimer:
    """The shared do-nothing timer handle returned while metrics are off."""

    __slots__ = ()

    def __enter__(self) -> _NullTimer:
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_TIMER = _NullTimer()
"""Singleton no-op timer; identity-comparable in overhead tests."""


class MetricsRegistry:
    """Counters, gauges and histograms aggregated in place.

    Thread-safe by a single lock: the registry is process-global and the
    worker pool's completion callbacks may land on any thread.  The lock
    is held only for dictionary/bucket updates, never across user code.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        buckets: dict[str, tuple[float, ...]] | None = None,
    ) -> None:
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self._buckets = dict(buckets or {})
        self._lock = threading.Lock()

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` onto the named counter.

        Mutates: self
        """
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        """Overwrite the named gauge with ``value``.

        Mutates: self
        """
        with self._lock:
            self.gauges[name] = float(value)

    def gauge_add(self, name: str, delta: float) -> None:
        """Shift the named gauge by ``delta`` (from 0 when unset).

        Mutates: self
        """
        with self._lock:
            self.gauges[name] = self.gauges.get(name, 0.0) + delta

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the named gauge to ``value`` if that is higher.

        Mutates: self
        """
        with self._lock:
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram.

        Histograms are created on first observation, with the bucket
        bounds configured for the name at construction (or the default
        exponential ladder).

        Mutates: self
        """
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                bounds = self._buckets.get(name) or exponential_buckets()
                histogram = Histogram(bounds)
                self.histograms[name] = histogram
            histogram.observe(value)

    def time_block(self, name: str) -> _Timer:
        """A context manager observing its block's wall time into ``name``.

        Owns: return
        """
        return _Timer(self, name)

    def snapshot(self) -> dict[str, Any]:
        """A plain-data copy of every metric, sorted by name.

        Pure: never mutates the registry (takes the lock to read).
        """
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": {
                    name: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.total,
                        "count": h.count,
                    }
                    for name, h in sorted(self.histograms.items())
                },
            }


# -- the process-global front door --------------------------------------------

_ACTIVE_REGISTRY: MetricsRegistry | None = None
_INSTALL_LOCK = threading.Lock()


def current_metrics() -> MetricsRegistry | None:
    """The installed registry, or None while collection is off.

    Pure: one module-global read.
    """
    return _ACTIVE_REGISTRY


def metrics_enabled() -> bool:
    """True when a registry is installed process-wide.

    Pure: one module-global read.
    """
    return _ACTIVE_REGISTRY is not None


def install_metrics(registry: MetricsRegistry) -> None:
    """Make ``registry`` the process-wide active registry."""
    global _ACTIVE_REGISTRY
    with _INSTALL_LOCK:
        _ACTIVE_REGISTRY = registry


def uninstall_metrics() -> None:
    """Disable metrics collection process-wide."""
    global _ACTIVE_REGISTRY
    with _INSTALL_LOCK:
        _ACTIVE_REGISTRY = None


@contextmanager
def collecting_metrics(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of the block.

    Creates a fresh :class:`MetricsRegistry` when none is given; the
    previously installed registry (usually None) is restored on exit so
    collections nest without leaking into later code.
    """
    active = registry if registry is not None else MetricsRegistry()
    global _ACTIVE_REGISTRY
    with _INSTALL_LOCK:
        previous = _ACTIVE_REGISTRY
        _ACTIVE_REGISTRY = active
    try:
        yield active
    finally:
        with _INSTALL_LOCK:
            _ACTIVE_REGISTRY = previous


def metric_inc(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the active registry; no-op while metrics are off.

    Pure: never mutates its arguments.
    """
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.inc(name, amount)


def metric_gauge_set(name: str, value: float) -> None:
    """Set a gauge on the active registry; no-op while metrics are off.

    Pure: never mutates its arguments.
    """
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.gauge_set(name, value)


def metric_gauge_add(name: str, delta: float) -> None:
    """Shift a gauge on the active registry; no-op while metrics are off.

    Pure: never mutates its arguments.
    """
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.gauge_add(name, delta)


def metric_gauge_max(name: str, value: float) -> None:
    """Raise a gauge on the active registry; no-op while metrics are off.

    Pure: never mutates its arguments.
    """
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.gauge_max(name, value)


def metric_observe(name: str, value: float) -> None:
    """Observe into a histogram on the active registry; no-op when off.

    Pure: never mutates its arguments.
    """
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.observe(name, value)


def metric_time(name: str) -> _Timer | _NullTimer:
    """Time a block into the named histogram; no-op while metrics are off.

    Pure: never mutates its arguments (the fast-path promise; the write
        goes to the process-global registry, if any).
    Owns: return
    """
    registry = _ACTIVE_REGISTRY
    if registry is None:
        return NULL_TIMER
    return registry.time_block(name)


# -- exporters -----------------------------------------------------------------


def prometheus_name(name: str) -> str:
    """The Prometheus-safe spelling of a dotted metric name.

    Dots and dashes become underscores under a ``repro_`` namespace
    prefix, per the exposition-format character rules.

    Pure: string rewriting only.
    """
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}"


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints bare)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand to the
    conventional cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  ``# HELP`` lines come from the catalog when the name is
    catalogued.  Ends with a trailing newline as scrapers require.

    Pure: reads a snapshot, builds a string.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        _emit_header(lines, name, "counter")
        lines.append(f"{prometheus_name(name)} {_format_value(value)}")
    for name, value in snapshot["gauges"].items():
        _emit_header(lines, name, "gauge")
        lines.append(f"{prometheus_name(name)} {_format_value(value)}")
    for name, data in snapshot["histograms"].items():
        _emit_header(lines, name, "histogram")
        base = prometheus_name(name)
        cumulative = 0
        for bound, bucket_count in zip(data["bounds"], data["counts"]):
            cumulative += bucket_count
            lines.append(f'{base}_bucket{{le="{repr(float(bound))}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{base}_sum {_format_value(data['sum'])}")
        lines.append(f"{base}_count {data['count']}")
    return "\n".join(lines) + "\n"


def _emit_header(lines: list[str], name: str, kind: str) -> None:
    """Append the ``# HELP`` / ``# TYPE`` preamble for one metric."""
    help_text = metric_help(name)
    if help_text:
        lines.append(f"# HELP {prometheus_name(name)} {help_text}")
    lines.append(f"# TYPE {prometheus_name(name)} {kind}")


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """The registry as JSONL: one self-describing object per line.

    Counters and gauges carry ``name``/``value``; histograms carry their
    bounds, per-bucket (non-cumulative) counts, sum and count.  The
    format round-trips through :func:`metrics_from_jsonl`.

    Pure: reads a snapshot, builds a string.
    """
    snapshot = registry.snapshot()
    lines = [
        json.dumps(
            {"kind": "counter", "name": name, "value": value}, sort_keys=True
        )
        for name, value in snapshot["counters"].items()
    ]
    lines += [
        json.dumps({"kind": "gauge", "name": name, "value": value}, sort_keys=True)
        for name, value in snapshot["gauges"].items()
    ]
    lines += [
        json.dumps({"kind": "histogram", "name": name, **data}, sort_keys=True)
        for name, data in snapshot["histograms"].items()
    ]
    return "\n".join(lines) + "\n"


def metrics_from_jsonl(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`metrics_jsonl` output.

    The result snapshots identically to the source registry, which is
    what the round-trip tests assert.

    Pure: parses into a fresh registry.
    """
    registry = MetricsRegistry()
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record["kind"]
        if kind == "counter":
            registry.counters[record["name"]] = float(record["value"])
        elif kind == "gauge":
            registry.gauges[record["name"]] = float(record["value"])
        elif kind == "histogram":
            histogram = Histogram(tuple(record["bounds"]))
            histogram.counts = [int(c) for c in record["counts"]]
            histogram.total = float(record["sum"])
            histogram.count = int(record["count"])
            registry.histograms[record["name"]] = histogram
        else:
            raise ValueError(f"unknown metrics record kind: {kind!r}")
    return registry
