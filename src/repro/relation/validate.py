"""Vectorized FD validation against a full relation.

Checking one FD ``X -> A`` on all tuples reduces to: group the rows by
their ``X`` labels and test that each group is constant on ``A``.  The
routines here do that with numpy — the LHS labels are folded into a single
dense ``int64`` group key per row, and validity is two ``np.unique``
calls — so validating the tens of thousands of candidates HyFD produces
stays far from Python-loop speed.

Used by HyFD's validation phase, the brute-force oracle, and the test
suite's independent validity checks.
"""

from __future__ import annotations

import numpy as np

# Submodule imports keep this importable inside the repro.fd package
# initialization cycle (fd.armstrong -> relation -> validate -> fd).
from ..fd import attrset
from ..fd.fd import FD
from .preprocess import PreprocessedRelation

_FOLD_LIMIT = 1 << 62
"""Re-densify group keys before the fold could overflow int64."""


def group_keys(data: PreprocessedRelation, lhs: int) -> np.ndarray:
    """Dense int64 group ids of each row's projection onto ``lhs``.

    Rows share an id iff they agree on every attribute of ``lhs``.  The
    per-column labels are folded positionally (``key*card + label``);
    whenever the value range would overflow, the keys are re-densified via
    ``np.unique`` so arbitrarily wide LHSs stay exact.
    """
    columns = list(attrset.to_indices(lhs))
    num_rows = data.num_rows
    if not columns or num_rows == 0:
        return np.zeros(num_rows, dtype=np.int64)
    matrix = data.matrix
    keys = matrix[:, columns[0]].astype(np.int64)
    bound = int(keys.max(initial=0)) + 1
    for column in columns[1:]:
        cardinality = int(matrix[:, column].max(initial=0)) + 1
        if bound * cardinality >= _FOLD_LIMIT:
            _, keys = np.unique(keys, return_inverse=True)
            bound = int(keys.max(initial=0)) + 1
            if bound * cardinality >= _FOLD_LIMIT:  # pragma: no cover
                raise OverflowError("group key fold exceeded int64")
        keys = keys * cardinality + matrix[:, column]
        bound *= cardinality
    return keys


def fd_holds(data: PreprocessedRelation, fd: FD) -> bool:
    """True when ``fd`` is valid on every tuple of the relation."""
    if data.num_rows <= 1:
        return True
    keys = group_keys(data, fd.lhs)
    rhs = data.matrix[:, fd.rhs].astype(np.int64)
    rhs_cardinality = int(rhs.max(initial=0)) + 1
    combined = keys * rhs_cardinality + rhs
    return np.unique(keys).size == np.unique(combined).size


def find_violation(data: PreprocessedRelation, fd: FD) -> tuple[int, int] | None:
    """A witnessing tuple pair for an invalid FD, or None when valid.

    The returned rows agree on ``fd.lhs`` and differ on ``fd.rhs``; HyFD
    feeds the pair's full agree set back into its negative cover.
    """
    if data.num_rows <= 1:
        return None
    keys = group_keys(data, fd.lhs)
    rhs = data.matrix[:, fd.rhs].astype(np.int64)
    rhs_cardinality = int(rhs.max(initial=0)) + 1
    combined = keys * rhs_cardinality + rhs
    if np.unique(keys).size == np.unique(combined).size:
        return None
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_rhs = rhs[order]
    adjacent = (sorted_keys[1:] == sorted_keys[:-1]) & (
        sorted_rhs[1:] != sorted_rhs[:-1]
    )
    position = int(np.nonzero(adjacent)[0][0])
    return int(order[position]), int(order[position + 1])
