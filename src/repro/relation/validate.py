"""Vectorized FD validation against a full relation.

Checking one FD ``X -> A`` on all tuples reduces to: group the rows by
their ``X`` labels and test that each group is constant on ``A``.  The
routines here do that with numpy — the LHS labels are folded into a single
dense ``int64`` group key per row, and validity is two ``np.unique``
calls — so validating the tens of thousands of candidates HyFD produces
stays far from Python-loop speed.

Every fold step routes through :func:`fold_labels`, which re-densifies
the keys whenever the next multiplication could overflow ``int64`` —
including the final RHS fold, which historically skipped the guard and
could silently wrap on wide, high-cardinality relations.

These kernels are the numpy backend of the execution engine
(:mod:`repro.engine`); algorithm code obtains them through an
:class:`~repro.engine.context.ExecutionContext` rather than calling this
module directly.
"""

from __future__ import annotations

import numpy as np

# Submodule imports keep this importable inside the repro.fd package
# initialization cycle (fd.armstrong -> relation -> validate -> fd).
from ..fd import attrset
from ..fd.fd import FD
from .preprocess import PreprocessedRelation

_FOLD_LIMIT = 1 << 62
"""Re-densify group keys before the fold could overflow int64."""


def fold_labels(keys: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Fold one label column onto existing group keys, overflow-guarded.

    Returns keys such that two rows share a key iff they shared one
    before *and* agree on ``labels``.  When ``max(keys) * card(labels)``
    could overflow ``int64``, the keys are first re-densified via
    ``np.unique`` — the distinct-count structure is preserved, only the
    key values shrink — so arbitrarily wide folds stay exact.

    Pure: returns a fresh array; neither input is mutated.
    """
    cardinality = int(labels.max(initial=0)) + 1
    bound = int(keys.max(initial=0)) + 1
    if bound * cardinality >= _FOLD_LIMIT:
        _, keys = np.unique(keys, return_inverse=True)
        keys = keys.astype(np.int64, copy=False)
        bound = int(keys.max(initial=0)) + 1
        if bound * cardinality >= _FOLD_LIMIT:  # pragma: no cover
            raise OverflowError("group key fold exceeded int64")
    return keys * cardinality + labels


def group_keys(data: PreprocessedRelation, lhs: int) -> np.ndarray:
    """Dense int64 group ids of each row's projection onto ``lhs``.

    Rows share an id iff they agree on every attribute of ``lhs``.  The
    per-column labels are folded positionally (``key*card + label``)
    through the guarded :func:`fold_labels`, so arbitrarily wide LHSs
    stay exact.
    """
    columns = list(attrset.to_indices(lhs))
    num_rows = data.num_rows
    if not columns or num_rows == 0:
        return np.zeros(num_rows, dtype=np.int64)
    matrix = data.matrix
    keys = matrix[:, columns[0]].astype(np.int64)
    for column in columns[1:]:
        keys = fold_labels(keys, matrix[:, column])
    return keys


def rhs_labels(data: PreprocessedRelation, rhs: int) -> np.ndarray:
    """One RHS label column widened to int64 for the guarded fold kernels.

    The only sanctioned int64 widening outside the fold itself: callers
    (the numpy backend) hand these labels straight to
    :func:`constant_within_groups` / :func:`violation_within_groups`,
    whose fold arithmetic is int64 by contract.  Everything else keeps
    labels in their storage width (RPR113).

    Pure: reads the matrix only; returns a fresh column.
    """
    return data.matrix[:, rhs].astype(np.int64)


def constant_within_groups(keys: np.ndarray, labels: np.ndarray) -> bool:
    """True when every key group is constant on ``labels``.

    This is FD validity given precomputed LHS group keys: fold the RHS
    labels on (guarded) and compare distinct counts.

    Pure: a read-only comparison of both arrays.
    """
    combined = fold_labels(keys, labels)
    return np.unique(keys).size == np.unique(combined).size


def violation_within_groups(
    keys: np.ndarray, labels: np.ndarray
) -> tuple[int, int] | None:
    """A row pair sharing a key but differing on ``labels``, or None.

    Pure: a read-only scan of both arrays.
    """
    if not constant_within_groups(keys, labels):
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_labels = labels[order]
        adjacent = (sorted_keys[1:] == sorted_keys[:-1]) & (
            sorted_labels[1:] != sorted_labels[:-1]
        )
        position = int(np.nonzero(adjacent)[0][0])
        return int(order[position]), int(order[position + 1])
    return None


def fd_holds(data: PreprocessedRelation, fd: FD) -> bool:
    """True when ``fd`` is valid on every tuple of the relation."""
    if data.num_rows <= 1:
        return True
    keys = group_keys(data, fd.lhs)
    return constant_within_groups(keys, rhs_labels(data, fd.rhs))


def find_violation(data: PreprocessedRelation, fd: FD) -> tuple[int, int] | None:
    """A witnessing tuple pair for an invalid FD, or None when valid.

    The returned rows agree on ``fd.lhs`` and differ on ``fd.rhs``; HyFD
    feeds the pair's full agree set back into its negative cover.
    """
    if data.num_rows <= 1:
        return None
    keys = group_keys(data, fd.lhs)
    return violation_within_groups(keys, rhs_labels(data, fd.rhs))
