"""Column-oriented relational instances.

:class:`Relation` is the input type of every discovery algorithm in this
package.  It stores data column-wise (discovery algorithms scan columns,
not rows), keeps attribute names for human-readable output, and offers the
projections and slices the scalability experiments of Section V-C/V-D
need (row prefixes, column prefixes).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Relation:
    """An immutable relational instance over a fixed schema.

    ``columns[j][i]`` is the value of tuple ``i`` on attribute ``j``.
    Values may be of any hashable type; ``None`` denotes SQL NULL and its
    comparison semantics are chosen at preprocessing time.
    """

    column_names: tuple[str, ...]
    columns: tuple[tuple[Any, ...], ...]
    name: str = "relation"

    def __post_init__(self) -> None:
        if len(self.column_names) != len(self.columns):
            raise ValueError(
                f"{len(self.column_names)} names for {len(self.columns)} columns"
            )
        if len(set(self.column_names)) != len(self.column_names):
            raise ValueError("column names must be unique")
        lengths = {len(column) for column in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        columns: Iterable[Iterable[Any]],
        column_names: Sequence[str] | None = None,
        name: str = "relation",
    ) -> "Relation":
        """Build a relation from per-attribute value sequences."""
        materialized = tuple(tuple(column) for column in columns)
        if column_names is None:
            column_names = default_column_names(len(materialized))
        return cls(tuple(column_names), materialized, name)

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Sequence[Any]],
        column_names: Sequence[str] | None = None,
        name: str = "relation",
    ) -> "Relation":
        """Build a relation from an iterable of tuples."""
        rows = list(rows)
        if rows:
            width = len(rows[0])
            for position, row in enumerate(rows):
                if len(row) != width:
                    raise ValueError(
                        f"row {position} has {len(row)} values, expected {width}"
                    )
            columns = tuple(tuple(row[j] for row in rows) for j in range(width))
        else:
            if column_names is None:
                raise ValueError("empty relations need explicit column names")
            columns = tuple(() for _ in column_names)
        if column_names is None:
            column_names = default_column_names(len(columns))
        return cls(tuple(column_names), columns, name)

    # -- shape ----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    # -- access ----------------------------------------------------------------

    def row(self, index: int) -> tuple[Any, ...]:
        """Materialize tuple ``index``."""
        return tuple(column[index] for column in self.columns)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        return (self.row(i) for i in range(self.num_rows))

    def column(self, key: int | str) -> tuple[Any, ...]:
        """A column by index or by name."""
        return self.columns[self.column_index(key)]

    def column_index(self, key: int | str) -> int:
        if isinstance(key, str):
            try:
                return self.column_names.index(key)
            except ValueError:
                raise KeyError(
                    f"no column named {key!r}; have {list(self.column_names)}"
                ) from None
        if not 0 <= key < self.num_columns:
            raise IndexError(f"column {key} out of range 0..{self.num_columns - 1}")
        return key

    # -- slicing for scalability sweeps ----------------------------------------

    def head(self, num_rows: int) -> "Relation":
        """The first ``num_rows`` tuples (row-scalability sweeps, Fig. 6/7)."""
        num_rows = min(num_rows, self.num_rows)
        return Relation(
            self.column_names,
            tuple(column[:num_rows] for column in self.columns),
            f"{self.name}[:{num_rows}]",
        )

    def project(self, keys: Sequence[int | str]) -> "Relation":
        """Keep the given columns (column-scalability sweeps, Fig. 8/9)."""
        indices = [self.column_index(key) for key in keys]
        return Relation(
            tuple(self.column_names[i] for i in indices),
            tuple(self.columns[i] for i in indices),
            f"{self.name}[cols={len(indices)}]",
        )

    def first_columns(self, num_columns: int) -> "Relation":
        """Keep the first ``num_columns`` columns."""
        return self.project(list(range(min(num_columns, self.num_columns))))

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"Relation(name={self.name!r}, rows={self.num_rows}, "
            f"columns={self.num_columns})"
        )


def default_column_names(count: int) -> tuple[str, ...]:
    """Spreadsheet-style names: col_0, col_1, ..."""
    return tuple(f"col_{index}" for index in range(count))
