"""Partitions and stripped partitions (Definitions 6 and 7).

A *partition* of a relation on an attribute set groups tuples that share
values on every attribute of the set.  The *stripped* variant drops
singleton equivalence classes, which can neither produce a violation nor
distinguish FD validity, shrinking both memory and work (Fig. 2).

These structures serve two masters:

* EulerFD's sampling module draws tuple pairs from the stripped clusters
  of single attributes;
* Tane's lattice traversal refines partitions via the product operation
  and validates FDs by comparing equivalence-class counts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class StrippedPartition:
    """A stripped partition: equivalence classes with at least two tuples.

    ``clusters`` holds tuples of row indices; ``num_rows`` the relation
    size the partition was computed over (needed to recover full-partition
    statistics from the stripped form).
    """

    __slots__ = ("clusters", "num_rows", "_num_grouped_rows")

    def __init__(self, clusters: Iterable[Sequence[int]], num_rows: int) -> None:
        self.clusters: tuple[tuple[int, ...], ...] = tuple(
            tuple(cluster) for cluster in clusters
        )
        for cluster in self.clusters:
            if len(cluster) < 2:
                raise ValueError(
                    f"stripped partitions hold clusters of size >= 2, got {cluster}"
                )
        self.num_rows = num_rows
        self._num_grouped_rows = sum(len(cluster) for cluster in self.clusters)

    @classmethod
    def from_tuples(  # repro-lint: disable=RPR102 — the fresh instance aliases `cls` under the region analysis; only the new object is written
        cls,
        clusters: tuple[tuple[int, ...], ...],
        num_rows: int,
        num_grouped_rows: int | None = None,
    ) -> "StrippedPartition":
        """Wrap already-validated cluster tuples without per-row copies.

        The delta-maintenance path of :mod:`repro.relation.preprocess`
        rebuilds a partition per append while reusing every untouched
        cluster tuple; re-tupling them through ``__init__`` would copy
        every grouped row and turn an O(batch) append into O(N).  The
        caller vouches that ``clusters`` is a tuple of int tuples, each
        of size >= 2 — the same invariant ``__init__`` enforces.

        Pure: wraps the given tuples; nothing is copied or mutated.
        """
        partition = cls.__new__(cls)
        partition.clusters = clusters
        partition.num_rows = num_rows
        partition._num_grouped_rows = (
            num_grouped_rows
            if num_grouped_rows is not None
            else sum(len(cluster) for cluster in clusters)
        )
        return partition

    # -- statistics ------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of stripped (size >= 2) equivalence classes."""
        return len(self.clusters)

    @property
    def num_grouped_rows(self) -> int:
        """Rows living in stripped clusters."""
        return self._num_grouped_rows

    @property
    def num_classes_full(self) -> int:
        """Equivalence-class count of the corresponding *full* partition.

        Every row outside the stripped clusters forms a singleton class:
        ``full = singletons + stripped = (n - grouped) + clusters``.  Tane
        validates ``X -> A`` by comparing this count for ``X`` and
        ``X ∪ {A}``.
        """
        return self.num_rows - self._num_grouped_rows + self.num_clusters

    @property
    def error(self) -> int:
        """Tane's e(X) numerator: rows that must be removed to make X a key."""
        return self._num_grouped_rows - self.num_clusters

    def is_superkey(self) -> bool:
        """X is a (super)key iff no two tuples agree on X."""
        return not self.clusters

    # -- refinement --------------------------------------------------------------

    def product(self, other: "StrippedPartition") -> "StrippedPartition":
        """The partition on the union of the attribute sets (Tane's π_X · π_Y).

        Linear in the grouped rows of both operands: index the rows of
        ``self`` by cluster id, then split every cluster of ``other`` by
        that id, keeping only groups of size >= 2.

        Pure: builds a fresh partition; neither operand is mutated.
        """
        if self.num_rows != other.num_rows:
            raise ValueError("partitions over different relations")
        owner = {}
        for cluster_id, cluster in enumerate(self.clusters):
            for row in cluster:
                owner[row] = cluster_id
        refined: list[list[int]] = []
        for cluster in other.clusters:
            groups: dict[int, list[int]] = {}
            for row in cluster:
                cluster_id = owner.get(row)
                if cluster_id is not None:
                    groups.setdefault(cluster_id, []).append(row)
            refined.extend(group for group in groups.values() if len(group) > 1)
        return StrippedPartition(refined, self.num_rows)

    def refines(self, other: "StrippedPartition") -> bool:
        """True when every class of ``self`` lies inside a class of ``other``.

        π_X refines π_A exactly when the FD ``X -> A`` holds; used by the
        test suite as an independent validity oracle.

        Pure: a read-only comparison of both partitions.
        """
        owner: dict[int, int] = {}
        for cluster_id, cluster in enumerate(other.clusters):
            for row in cluster:
                owner[row] = cluster_id
        for cluster in self.clusters:
            first = owner.get(cluster[0], -1)
            for row in cluster[1:]:
                if owner.get(row, -2) != first:
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        mine = sorted(tuple(sorted(c)) for c in self.clusters)
        theirs = sorted(tuple(sorted(c)) for c in other.clusters)
        return self.num_rows == other.num_rows and mine == theirs

    def __hash__(self) -> int:
        return hash(
            (self.num_rows, frozenset(frozenset(c) for c in self.clusters))
        )

    def __repr__(self) -> str:
        return (
            f"StrippedPartition(clusters={self.num_clusters}, "
            f"rows={self.num_rows})"
        )


def partition_from_labels(labels: Sequence[int], num_rows: int) -> StrippedPartition:
    """Group row indices by label, keeping groups of size >= 2."""
    groups: dict[int, list[int]] = {}
    for row, label in enumerate(labels):
        groups.setdefault(label, []).append(row)
    return StrippedPartition(
        (group for group in groups.values() if len(group) > 1), num_rows
    )


def full_partition_from_labels(labels: Sequence[int]) -> list[list[int]]:
    """The full (unstripped) partition — singleton classes included.

    Only used for exposition and tests (Example 5); algorithms operate on
    the stripped form.
    """
    groups: dict[int, list[int]] = {}
    for row, label in enumerate(labels):
        groups.setdefault(label, []).append(row)
    return list(groups.values())
