"""CSV input/output for relations.

The paper's benchmark datasets ship as CSV files; this module loads them
into :class:`~repro.relation.relation.Relation` instances and writes
generated datasets back out so external tools (e.g. Metanome) can be run
on identical inputs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Sequence

from .relation import Relation, default_column_names


def read_csv(
    path: str | Path,
    has_header: bool = True,
    delimiter: str = ",",
    max_rows: int | None = None,
    null_token: str = "",
    name: str | None = None,
) -> Relation:
    """Load a CSV file as a relation.

    Values equal to ``null_token`` become ``None`` (SQL NULL); everything
    else stays a string — FD discovery only compares values for equality,
    so no type coercion is needed or wanted.  ``max_rows`` truncates large
    files for scalability sweeps.
    """
    path = Path(path)
    rows: list[list[object]] = []
    header: Sequence[str] | None = None
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for record in reader:
            if header is None and has_header:
                header = record
                continue
            rows.append(
                [None if value == null_token else value for value in record]
            )
            if max_rows is not None and len(rows) >= max_rows:
                break
    if not rows and header is None:
        raise ValueError(f"{path} is empty")
    width = len(header) if header is not None else len(rows[0])
    for position, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(
                f"{path}: row {position} has {len(row)} fields, expected {width}"
            )
    column_names = tuple(header) if header is not None else default_column_names(width)
    return Relation.from_rows(
        rows, column_names, name=name if name is not None else path.stem
    )


def write_csv(
    relation: Relation,
    path: str | Path,
    delimiter: str = ",",
    null_token: str = "",
) -> None:
    """Write a relation as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.column_names)
        for row in relation.iter_rows():
            writer.writerow(
                [null_token if value is None else value for value in row]
            )
