"""Relational instances, preprocessing, and partitions."""

from .csvio import read_csv, write_csv
from .partition import (
    StrippedPartition,
    full_partition_from_labels,
    partition_from_labels,
)
from .preprocess import (
    EncodedMatrix,
    PreprocessedRelation,
    dtype_for_cardinality,
    encode_matrix,
    preprocess,
)
from .relation import Relation, default_column_names
from .validate import fd_holds, find_violation, group_keys

__all__ = [
    "EncodedMatrix",
    "PreprocessedRelation",
    "Relation",
    "StrippedPartition",
    "dtype_for_cardinality",
    "encode_matrix",
    "default_column_names",
    "full_partition_from_labels",
    "partition_from_labels",
    "fd_holds",
    "find_violation",
    "group_keys",
    "preprocess",
    "read_csv",
    "write_csv",
]
