"""The preprocessing module (Section IV-B).

Raw values of arbitrary types are replaced by dense numeric labels, one
label per distinct value *per attribute* (Table II): only value equality
matters for FD discovery, never the values themselves.  The label matrix
enables constant-time tuple-pair comparison, and the per-attribute
stripped partitions (Definition 7) seed the sampling module.
"""

from __future__ import annotations

import sys
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np

from .partition import StrippedPartition, partition_from_labels
from .relation import Relation

_NULL = object()
"""Internal sentinel distinguishing SQL NULL from the string 'None'."""

_ENCODED_WIDTHS: tuple[tuple[int, "np.dtype"], ...] = (
    (1 << 8, np.dtype(np.uint8)),
    (1 << 16, np.dtype(np.uint16)),
    (1 << 32, np.dtype(np.uint32)),
)
"""Dtype ladder for dictionary-encoded columns, narrowest first."""


def dtype_for_cardinality(cardinality: int) -> "np.dtype":
    """Narrowest unsigned dtype whose range covers labels ``0..cardinality-1``.

    The bound is tight: a column with exactly 256 distinct values still
    fits u8 (labels 0..255); promotion to u16 happens at 257, and to u32
    at 65537.

    Pure: maps an integer to a dtype.
    """
    if cardinality < 0:
        raise ValueError(f"cardinality must be non-negative, got {cardinality}")
    for bound, dtype in _ENCODED_WIDTHS:
        if cardinality <= bound:
            return dtype
    raise OverflowError(  # pragma: no cover - needs > 2**32 rows
        f"cardinality {cardinality} exceeds the u32 label range"
    )


@dataclass(frozen=True)
class EncodedMatrix:
    """Columnar dictionary encoding of a label matrix.

    Each attribute's dense labels are stored as a contiguous 1-D array in
    the narrowest unsigned dtype that fits the column's cardinality
    (:func:`dtype_for_cardinality`), so kernels that walk one column at a
    time touch 1, 2, or 4 bytes per row instead of the canonical matrix's
    8.  Label values are identical to the matching ``matrix[:, j]`` column
    — only the storage width changes — so equality comparisons (the only
    operation FD discovery performs on labels) are representation-agnostic.
    """

    columns: tuple[np.ndarray, ...]
    cardinalities: tuple[int, ...]
    num_rows: int

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Total resident bytes across all encoded columns."""
        return sum(int(column.nbytes) for column in self.columns)

    @property
    def row_bytes(self) -> int:
        """Bytes one row occupies across all encoded columns."""
        return sum(int(column.dtype.itemsize) for column in self.columns)

    @property
    def dtypes(self) -> tuple[str, ...]:
        """Per-column dtype names, in column order."""
        return tuple(str(column.dtype) for column in self.columns)

    def column(self, index: int) -> np.ndarray:
        """The encoded label vector of one column."""
        return self.columns[index]

    def cardinality(self, index: int) -> int:
        """Number of distinct labels in ``column``."""
        return self.cardinalities[index]

    def dtype_blocks(self) -> "tuple[tuple[np.ndarray, np.ndarray], ...]":
        """Non-constant columns stacked into one 2-D block per dtype.

        Each entry is ``(column_indices, block)`` where ``block[:, k]``
        is the encoded column ``column_indices[k]``.  Pair-comparison
        kernels gather whole blocks — one vectorized operation per
        distinct width instead of one per column, which is what makes
        small-batch agree-mask calls competitive with the row-slab
        matrix kernel.  Cardinality-1 columns are excluded: their pairs
        agree by definition.  Built lazily, cached on the instance
        (same idiom as :attr:`PreprocessedRelation.encoded`).
        """
        cached = self.__dict__.get("_blocks")
        if cached is None:
            groups: dict[str, list[int]] = {}
            for j, column in enumerate(self.columns):
                if self.cardinalities[j] > 1:
                    groups.setdefault(str(column.dtype), []).append(j)
            cached = tuple(
                (
                    np.asarray(indices, dtype=np.intp),
                    np.column_stack([self.columns[j] for j in indices]),
                )
                for indices in groups.values()
            )
            object.__setattr__(self, "_blocks", cached)
        return cached


def encode_matrix(matrix: np.ndarray) -> EncodedMatrix:
    """Dictionary-encode an int64 label matrix into columnar storage.

    Labels are already dense (:func:`_encode_column` assigns them in
    first-occurrence order), so per-column cardinality is ``max + 1`` and
    the narrowing cast is lossless by construction.  Returned columns are
    C-contiguous and read-only.

    Pure: reads the matrix only; returns a fresh encoding.
    """
    num_rows = int(matrix.shape[0])
    columns = []
    cardinalities = []
    for j in range(int(matrix.shape[1])):
        labels = matrix[:, j]
        cardinality = int(labels.max()) + 1 if num_rows else 0
        encoded = labels.astype(dtype_for_cardinality(cardinality))
        encoded.setflags(write=False)
        columns.append(encoded)
        cardinalities.append(cardinality)
    return EncodedMatrix(
        columns=tuple(columns),
        cardinalities=tuple(cardinalities),
        num_rows=num_rows,
    )


@dataclass(frozen=True)
class PreprocessedRelation:
    """Label matrix plus per-attribute stripped partitions.

    ``matrix[i, j]`` is the dense label of tuple ``i`` on attribute ``j``;
    labels of different attributes are independent namespaces and may
    repeat (Example 5).
    """

    relation: Relation
    matrix: np.ndarray
    stripped: tuple[StrippedPartition, ...]
    null_equals_null: bool

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.relation.column_names

    def cardinality(self, column: int) -> int:
        """Number of distinct labels in ``column``."""
        if self.num_rows == 0:
            return 0
        return int(self.matrix[:, column].max()) + 1

    def agree_mask(self, row_a: int, row_b: int) -> int:
        """Bitmask of the attributes on which two tuples share a value.

        The agree set of a tuple pair, computed by comparing label rows;
        every attribute outside the mask yields a non-FD
        ``agree -/-> attribute`` (Section IV-C).
        """
        equal = self.matrix[row_a] == self.matrix[row_b]
        packed = np.packbits(equal, bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")

    def agree_masks_bulk(
        self, rows_a: "np.ndarray | list[int]", rows_b: "np.ndarray | list[int]"
    ) -> list[int]:
        """Agree masks of many tuple pairs in one vectorized comparison.

        The samplers compare whole batches of pairs (every window position
        of a cluster at once); doing the label comparison and bit packing
        in a single numpy call keeps the per-pair cost at C speed.
        """
        return agree_masks_from_matrix(self.matrix, rows_a, rows_b)

    def iter_clusters(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(attribute, cluster)`` over all stripped clusters."""
        for attribute, partition in enumerate(self.stripped):
            for cluster in partition.clusters:
                yield attribute, cluster

    def labels(self, column: int) -> np.ndarray:
        """The dense label vector of one column."""
        return self.matrix[:, column]

    @property
    def encoded(self) -> "EncodedMatrix | None":
        """The columnar encoding if already materialized, else ``None``.

        Side-effect-free accessor for callers (the partition-store byte
        cost model) that must observe the representation without forcing
        an encode.
        """
        return self.__dict__.get("_encoded")

    def encoded_matrix(self) -> "EncodedMatrix":
        """The columnar dictionary encoding, materialized once and cached.

        Encoding is lazy so relations served by the numpy/python backends
        never pay for (or account) the columnar copy; the columnar
        backend materializes it via :meth:`repro.engine.backends.ColumnarBackend.prepare`.
        """
        cached = self.__dict__.get("_encoded")
        if cached is None:
            cached = encode_matrix(self.matrix)
            object.__setattr__(self, "_encoded", cached)
        return cached


def packed_agree_masks(equal: np.ndarray) -> list[int]:
    """Bit-pack per-pair boolean agree rows into Python int masks.

    Little-endian packing: bit ``j`` of a mask is attribute ``j``'s
    agreement.  For relations of up to 64 attributes (every packed row
    fits one machine word) the packed bytes decode through a single
    ``uint64`` view — on sampling-heavy workloads the historical
    per-pair ``int.from_bytes`` loop was the dominant per-pair cost.
    Wider relations keep the loop, whose cost the pair count amortizes.

    Pure: reads the boolean matrix only; returns a fresh list.
    """
    packed = np.packbits(equal, axis=1, bitorder="little")
    width = packed.shape[1]
    if width <= 8 and sys.byteorder == "little":
        padded = np.zeros((packed.shape[0], 8), dtype=np.uint8)
        padded[:, :width] = packed
        return padded.view(np.uint64).ravel().tolist()
    data = packed.tobytes()
    return [
        int.from_bytes(data[offset : offset + width], "little")
        for offset in range(0, len(data), width)
    ]


def agree_masks_from_matrix(
    matrix: np.ndarray,
    rows_a: "np.ndarray | list[int]",
    rows_b: "np.ndarray | list[int]",
) -> list[int]:
    """Agree masks of tuple pairs over a bare label matrix, in pair order.

    The matrix-level core of :meth:`PreprocessedRelation.agree_masks_bulk`,
    factored out so worker processes of the parallel execution engine can
    run it against a shared-memory view of the matrix without rebuilding a
    :class:`PreprocessedRelation`.

    Pure: reads the matrix and row lists only; returns a fresh list.
    """
    return packed_agree_masks(matrix[rows_a] == matrix[rows_b])


def distinct_agree_masks_range(
    matrix: np.ndarray, start: int, stop: int
) -> list[int]:
    """Distinct agree masks of all pairs anchored in ``[start, stop)``.

    For each anchor row ``i`` in the range, compares the label matrix of
    rows ``i+1 .. n-1`` against row ``i`` in one vectorized operation —
    the sweep Fdep performs over every anchor.  Masks come back as a list
    in first-occurrence order (the order a serial scan of the same range
    would first see them), so a coordinator merging per-range results in
    range order reproduces the serial insertion sequence exactly; that
    property is what makes the parallel Fdep sweep byte-identical to the
    serial one at any worker count.

    Pure: reads the matrix only; returns a fresh list.
    """
    seen: dict[int, None] = {}
    for anchor in range(start, stop):
        equal = matrix[anchor + 1 :] == matrix[anchor]
        packed = np.packbits(equal, axis=1, bitorder="little")
        row_bytes = packed.tobytes()
        width = packed.shape[1]
        for offset in range(0, len(row_bytes), width):
            seen.setdefault(
                int.from_bytes(row_bytes[offset : offset + width], "little")
            )
    return list(seen)


def preprocess(relation: Relation, null_equals_null: bool = True) -> PreprocessedRelation:
    """Run the preprocessing module on ``relation``.

    ``null_equals_null`` selects NULL semantics: when True (the classic
    FD-discovery convention, used by Tane and HyFD) all NULLs of a column
    share one label; when False every NULL receives a fresh label and
    never agrees with anything, including another NULL.
    """
    num_rows = relation.num_rows
    num_columns = relation.num_columns
    if num_columns == 0:
        raise ValueError("cannot preprocess a relation without columns")
    matrix = np.empty((num_rows, num_columns), dtype=np.int64)
    partitions = []
    for j, column in enumerate(relation.columns):
        labels = _encode_column(column, null_equals_null)
        matrix[:, j] = labels
        partitions.append(partition_from_labels(labels, num_rows))
    matrix.setflags(write=False)
    return PreprocessedRelation(
        relation=relation,
        matrix=matrix,
        stripped=tuple(partitions),
        null_equals_null=null_equals_null,
    )


def _encode_column(column: tuple[Any, ...], null_equals_null: bool) -> list[int]:
    """Assign dense labels in first-occurrence order (deterministic)."""
    codes: dict[Any, int] = {}
    labels = []
    next_label = 0
    for value in column:
        if value is None:
            if null_equals_null:
                key = _NULL
            else:
                labels.append(next_label)
                next_label += 1
                continue
        else:
            key = value
        label = codes.get(key)
        if label is None:
            label = next_label
            codes[key] = label
            next_label += 1
        labels.append(label)
    return labels
