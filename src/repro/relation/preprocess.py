"""The preprocessing module (Section IV-B).

Raw values of arbitrary types are replaced by dense numeric labels, one
label per distinct value *per attribute* (Table II): only value equality
matters for FD discovery, never the values themselves.  The label matrix
enables constant-time tuple-pair comparison, and the per-attribute
stripped partitions (Definition 7) seed the sampling module.

Streaming appends (DESIGN.md §12): :meth:`PreprocessedRelation.append_rows`
extends the label dictionaries, the label matrix, the columnar encoding
and the per-attribute stripped partitions **in place** — O(batch) work
per append instead of re-encoding the table.  The retained encoder state
lives in a :class:`_DeltaState` shared by every snapshot of one append
lineage; snapshots stay frozen and their matrix/encoded views are
read-only prefixes of amortized-growth buffers, so an old snapshot never
observes newer rows.  Appends are linear: only the newest snapshot may
be appended to (a stale snapshot raises), which is what keeps the shared
buffers single-writer.
"""

from __future__ import annotations

import sys
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np

from .partition import StrippedPartition, partition_from_labels
from .relation import Relation

_NULL = object()
"""Internal sentinel distinguishing SQL NULL from the string 'None'."""

_ENCODED_WIDTHS: tuple[tuple[int, "np.dtype"], ...] = (
    (1 << 8, np.dtype(np.uint8)),
    (1 << 16, np.dtype(np.uint16)),
    (1 << 32, np.dtype(np.uint32)),
)
"""Dtype ladder for dictionary-encoded columns, narrowest first."""


def dtype_for_cardinality(cardinality: int) -> "np.dtype":
    """Narrowest unsigned dtype whose range covers labels ``0..cardinality-1``.

    The bound is tight: a column with exactly 256 distinct values still
    fits u8 (labels 0..255); promotion to u16 happens at 257, and to u32
    at 65537.

    Pure: maps an integer to a dtype.
    """
    if cardinality < 0:
        raise ValueError(f"cardinality must be non-negative, got {cardinality}")
    for bound, dtype in _ENCODED_WIDTHS:
        if cardinality <= bound:
            return dtype
    raise OverflowError(  # pragma: no cover - needs > 2**32 rows
        f"cardinality {cardinality} exceeds the u32 label range"
    )


@dataclass(frozen=True)
class EncodedMatrix:
    """Columnar dictionary encoding of a label matrix.

    Each attribute's dense labels are stored as a contiguous 1-D array in
    the narrowest unsigned dtype that fits the column's cardinality
    (:func:`dtype_for_cardinality`), so kernels that walk one column at a
    time touch 1, 2, or 4 bytes per row instead of the canonical matrix's
    8.  Label values are identical to the matching ``matrix[:, j]`` column
    — only the storage width changes — so equality comparisons (the only
    operation FD discovery performs on labels) are representation-agnostic.
    """

    columns: tuple[np.ndarray, ...]
    cardinalities: tuple[int, ...]
    num_rows: int

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Total resident bytes across all encoded columns."""
        return sum(int(column.nbytes) for column in self.columns)

    @property
    def row_bytes(self) -> int:
        """Bytes one row occupies across all encoded columns."""
        return sum(int(column.dtype.itemsize) for column in self.columns)

    @property
    def dtypes(self) -> tuple[str, ...]:
        """Per-column dtype names, in column order."""
        return tuple(str(column.dtype) for column in self.columns)

    def column(self, index: int) -> np.ndarray:
        """The encoded label vector of one column."""
        return self.columns[index]

    def cardinality(self, index: int) -> int:
        """Number of distinct labels in ``column``."""
        return self.cardinalities[index]

    def dtype_blocks(self) -> "tuple[tuple[np.ndarray, np.ndarray], ...]":
        """Non-constant columns stacked into one 2-D block per dtype.

        Each entry is ``(column_indices, block)`` where ``block[:, k]``
        is the encoded column ``column_indices[k]``.  Pair-comparison
        kernels gather whole blocks — one vectorized operation per
        distinct width instead of one per column, which is what makes
        small-batch agree-mask calls competitive with the row-slab
        matrix kernel.  Cardinality-1 columns are excluded: their pairs
        agree by definition.  Built lazily, cached on the instance
        (same idiom as :attr:`PreprocessedRelation.encoded`).
        """
        cached = self.__dict__.get("_blocks")
        if cached is None:
            groups: dict[str, list[int]] = {}
            for j, column in enumerate(self.columns):
                if self.cardinalities[j] > 1:
                    groups.setdefault(str(column.dtype), []).append(j)
            cached = tuple(
                (
                    np.asarray(indices, dtype=np.intp),
                    np.column_stack([self.columns[j] for j in indices]),
                )
                for indices in groups.values()
            )
            object.__setattr__(self, "_blocks", cached)
        return cached


def encode_matrix(matrix: np.ndarray) -> EncodedMatrix:
    """Dictionary-encode an int64 label matrix into columnar storage.

    Labels are already dense (:func:`_encode_column` assigns them in
    first-occurrence order), so per-column cardinality is ``max + 1`` and
    the narrowing cast is lossless by construction.  Returned columns are
    C-contiguous and read-only.

    Pure: reads the matrix only; returns a fresh encoding.
    """
    num_rows = int(matrix.shape[0])
    columns = []
    cardinalities = []
    for j in range(int(matrix.shape[1])):
        labels = matrix[:, j]
        cardinality = int(labels.max()) + 1 if num_rows else 0
        encoded = labels.astype(dtype_for_cardinality(cardinality))
        encoded.setflags(write=False)
        columns.append(encoded)
        cardinalities.append(cardinality)
    return EncodedMatrix(
        columns=tuple(columns),
        cardinalities=tuple(cardinalities),
        num_rows=num_rows,
    )


@dataclass(frozen=True)
class AppendDelta:
    """What one :meth:`PreprocessedRelation.append_rows` call changed.

    ``touched[j]`` holds the post-append cluster tuples of attribute
    ``j`` that contain at least one new row, ordered by first row (the
    canonical stripped-partition order) — exactly the inverted-cluster-
    index slice the incremental engine walks for partner discovery, and
    what the partition store uses to place an appended row in its
    single-attribute cluster.  ``cardinalities`` are the post-append
    per-column distinct-label counts (labels are dense, so this is the
    next free label).  ``promotions`` records every dtype-ladder
    crossing as ``(column, old_dtype, new_dtype)``; ``cells_encoded``
    counts the matrix cells dictionary-encoded by the append —
    ``num_new × columns`` by construction, the figure the no-O(N)-rebuild
    test asserts against.
    """

    first_new: int
    num_new: int
    num_rows: int
    cardinalities: tuple[int, ...]
    touched: tuple[tuple[tuple[int, ...], ...], ...]
    promotions: tuple[tuple[int, str, str], ...]
    cells_encoded: int


class _DeltaState:
    """Retained encoder and grouping state shared by one append lineage.

    One instance backs every snapshot produced by successive
    ``append_rows`` calls: the writable amortized-growth buffers behind
    the snapshots' read-only views, the value→label dictionaries, and
    per-column full group membership (label → ascending member rows)
    from which stripped partitions are materialized with structural
    sharing — untouched cluster tuples are reused, never re-tupled.
    Only the newest snapshot (``size`` rows) may append, which keeps the
    shared buffers single-writer; the state is not thread-safe.
    """

    __slots__ = (
        "null_equals_null",
        "size",
        "capacity",
        "matrix",
        "codes",
        "next_labels",
        "members",
        "multi",
        "grouped",
        "tuple_cache",
        "encoded",
        "appends",
    )

    def __init__(
        self, num_rows: int, num_columns: int, null_equals_null: bool
    ) -> None:
        self.null_equals_null = null_equals_null
        self.size = 0
        self.capacity = 0
        self.matrix: "np.ndarray | None" = None
        self.codes: list[dict[Any, int]] = [{} for _ in range(num_columns)]
        self.next_labels: list[int] = [0] * num_columns
        # label -> member rows (ascending): the full, unstripped grouping.
        self.members: list[list[list[int]]] = [[] for _ in range(num_columns)]
        # labels with >= 2 members -> their first row; re-sorted by first
        # row at materialization, which restores the canonical
        # first-occurrence cluster order of ``partition_from_labels``.
        self.multi: list[dict[int, int]] = [{} for _ in range(num_columns)]
        self.grouped: list[int] = [0] * num_columns
        # label -> materialized cluster tuple; dropped when the cluster
        # grows, so unchanged clusters share one tuple across snapshots.
        self.tuple_cache: list[dict[int, tuple[int, ...]]] = [
            {} for _ in range(num_columns)
        ]
        self.encoded: "list[np.ndarray] | None" = None
        self.appends = 0

    def adopt_column(
        self, j: int, labels: list[int], codes: dict[Any, int], next_label: int
    ) -> None:
        """Take ownership of one freshly-encoded column's state.

        Mutates: self
        """
        self.codes[j] = codes
        self.next_labels[j] = next_label
        members: list[list[int]] = [[] for _ in range(next_label)]
        for row, label in enumerate(labels):
            members[label].append(row)
        self.members[j] = members
        multi = self.multi[j]
        grouped = 0
        for label, rows in enumerate(members):
            if len(rows) >= 2:
                multi[label] = rows[0]
                grouped += len(rows)
        self.grouped[j] = grouped

    def materialize(self, j: int, num_rows: int) -> StrippedPartition:
        """Column ``j``'s stripped partition at ``num_rows`` rows.

        Pointer-level work only: every cluster tuple is served from the
        per-label tuple cache when its membership did not change, and the
        sort restores first-occurrence order from the per-label first
        rows.

        Mutates: self
        """
        cache = self.tuple_cache[j]
        members = self.members[j]
        clusters: list[tuple[int, ...]] = []
        for label, _first in sorted(self.multi[j].items(), key=lambda kv: kv[1]):
            cluster = cache.get(label)
            if cluster is None:
                cluster = tuple(members[label])
                cache[label] = cluster
            clusters.append(cluster)
        return StrippedPartition.from_tuples(
            tuple(clusters), num_rows, self.grouped[j]
        )

    def _reserve(self, num_rows: int, num_columns: int) -> None:
        """Grow the amortized buffers to hold ``num_rows`` rows.

        Mutates: self
        """
        if num_rows <= self.capacity:
            return
        capacity = max(num_rows, self.capacity * 2, 16)
        grown = np.empty((capacity, num_columns), dtype=np.int64)
        grown[: self.size] = self.matrix[: self.size]
        self.matrix = grown
        if self.encoded is not None:
            for j, column in enumerate(self.encoded):
                buffer = np.empty(capacity, dtype=column.dtype)
                buffer[: self.size] = column[: self.size]
                self.encoded[j] = buffer
        self.capacity = capacity

    def _adopt_encoded(self, encoded: EncodedMatrix) -> None:
        """Bootstrap growable narrow buffers from a materialized encoding.

        Mutates: self
        """
        buffers: list[np.ndarray] = []
        for column in encoded.columns:
            buffer = np.empty(max(self.capacity, self.size), dtype=column.dtype)
            buffer[: self.size] = column
            buffers.append(buffer)
        self.encoded = buffers

    def append_batch(
        self, snapshot: "PreprocessedRelation", rows: "list[tuple[Any, ...]]"
    ) -> "PreprocessedRelation":
        """Encode ``rows`` into the lineage and build the next snapshot.

        Mutates: self
        """
        first_new = self.size
        num_new = len(rows)
        num_rows = first_new + num_new
        num_columns = len(self.codes)
        if self.encoded is None:
            encoded_prev = snapshot.encoded
            if encoded_prev is not None:
                self._adopt_encoded(encoded_prev)
        self._reserve(num_rows, num_columns)
        matrix = self.matrix
        touched: list[tuple[tuple[int, ...], ...]] = []
        promotions: list[tuple[int, str, str]] = []
        partitions: list[StrippedPartition] = []
        for j in range(num_columns):
            codes = self.codes[j]
            members = self.members[j]
            multi = self.multi[j]
            cache = self.tuple_cache[j]
            next_label = self.next_labels[j]
            touched_multi: dict[int, None] = {}
            for offset, row in enumerate(rows):
                value = row[j]
                if value is None and not self.null_equals_null:
                    label = next_label
                    next_label += 1
                else:
                    key = _NULL if value is None else value
                    label = codes.get(key)
                    if label is None:
                        label = next_label
                        codes[key] = label
                        next_label += 1
                row_index = first_new + offset
                matrix[row_index, j] = label
                if label == len(members):
                    members.append([row_index])
                    continue
                group = members[label]
                group.append(row_index)
                if len(group) == 2:
                    multi[label] = group[0]
                    self.grouped[j] += 2
                else:
                    self.grouped[j] += 1
                cache.pop(label, None)
                touched_multi[label] = None
            self.next_labels[j] = next_label
            if self.encoded is not None:
                column_buffer = self.encoded[j]
                needed = dtype_for_cardinality(next_label)
                if needed.itemsize > column_buffer.dtype.itemsize:
                    # dtype-ladder crossing: the one sanctioned O(N)
                    # moment, paid only when a column's cardinality
                    # outgrows its width (at most twice per column ever).
                    promoted = np.empty(self.capacity, dtype=needed)
                    promoted[:first_new] = column_buffer[:first_new]
                    promotions.append(
                        (j, str(column_buffer.dtype), str(needed))
                    )
                    self.encoded[j] = column_buffer = promoted
                column_buffer[first_new:num_rows] = matrix[
                    first_new:num_rows, j
                ]
            if touched_multi:
                partitions.append(self.materialize(j, num_rows))
                ordered = sorted(
                    touched_multi, key=lambda label: members[label][0]
                )
                touched.append(tuple(cache[label] for label in ordered))
            else:
                # No cluster changed shape: share the previous snapshot's
                # cluster tuples wholesale, only num_rows moves.
                old = snapshot.stripped[j]
                partitions.append(
                    StrippedPartition.from_tuples(
                        old.clusters, num_rows, old.num_grouped_rows
                    )
                )
                touched.append(())
        self.size = num_rows
        self.appends += 1
        view = matrix[:num_rows]
        view.setflags(write=False)
        data = PreprocessedRelation(
            relation=snapshot.relation,
            matrix=view,
            stripped=tuple(partitions),
            null_equals_null=self.null_equals_null,
        )
        object.__setattr__(data, "_delta", self)
        if self.encoded is not None:
            columns: list[np.ndarray] = []
            for j in range(num_columns):
                column_view = self.encoded[j][:num_rows]
                column_view.setflags(write=False)
                columns.append(column_view)
            object.__setattr__(
                data,
                "_encoded",
                EncodedMatrix(
                    columns=tuple(columns),
                    cardinalities=tuple(self.next_labels),
                    num_rows=num_rows,
                ),
            )
        object.__setattr__(
            data,
            "_append_delta",
            AppendDelta(
                first_new=first_new,
                num_new=num_new,
                num_rows=num_rows,
                cardinalities=tuple(self.next_labels),
                touched=tuple(touched),
                promotions=tuple(promotions),
                cells_encoded=num_new * num_columns,
            ),
        )
        return data


def _bootstrap_delta(data: "PreprocessedRelation") -> _DeltaState:
    """Reconstruct retained encoder state for a non-delta snapshot.

    One O(N) pass per column — the cold-start cost that
    ``preprocess(delta=True)`` avoids; every later append is O(batch)
    either way.  Only snapshots built by :func:`preprocess` ever need
    this (append-built snapshots always carry their lineage's state), so
    ``relation.columns`` is guaranteed to match the matrix rows.

    Pure: reads the snapshot only; returns fresh state.
    """
    num_rows = data.num_rows
    num_columns = data.num_columns
    state = _DeltaState(num_rows, num_columns, data.null_equals_null)
    matrix = data.matrix
    for j, column in enumerate(data.relation.columns):
        labels = matrix[:, j].tolist()
        codes: dict[Any, int] = {}
        for value, label in zip(column, labels):
            if value is None:
                if data.null_equals_null:
                    codes.setdefault(_NULL, label)
                continue
            codes.setdefault(value, label)
        next_label = (int(max(labels)) + 1) if labels else 0
        state.adopt_column(j, labels, codes, next_label)
    state.matrix = np.array(matrix, dtype=np.int64)
    state.capacity = num_rows
    state.size = num_rows
    return state


@dataclass(frozen=True)
class PreprocessedRelation:
    """Label matrix plus per-attribute stripped partitions.

    ``matrix[i, j]`` is the dense label of tuple ``i`` on attribute ``j``;
    labels of different attributes are independent namespaces and may
    repeat (Example 5).

    Snapshots grown by :meth:`append_rows` keep ``relation`` pointing at
    the cold-start schema snapshot — row counts always come from the
    matrix (``num_rows``), never from ``relation``.
    """

    relation: Relation
    matrix: np.ndarray
    stripped: tuple[StrippedPartition, ...]
    null_equals_null: bool

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.relation.column_names

    def cardinality(self, column: int) -> int:
        """Number of distinct labels in ``column``."""
        if self.num_rows == 0:
            return 0
        encoded = self.__dict__.get("_encoded")
        if encoded is not None:
            # labels are dense, so the encoding's bookkeeping answers in
            # O(1) what the matrix scan below answers in O(rows)
            return encoded.cardinalities[column]
        state = self.__dict__.get("_delta")
        if state is not None and state.size == self.num_rows:
            # newest snapshot of an append lineage: the encoder state
            # knows the next label, i.e. the distinct count, in O(1)
            return state.next_labels[column]
        return int(self.matrix[:, column].max()) + 1

    def agree_mask(self, row_a: int, row_b: int) -> int:
        """Bitmask of the attributes on which two tuples share a value.

        The agree set of a tuple pair, computed by comparing label rows;
        every attribute outside the mask yields a non-FD
        ``agree -/-> attribute`` (Section IV-C).
        """
        equal = self.matrix[row_a] == self.matrix[row_b]
        packed = np.packbits(equal, bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")

    def agree_masks_bulk(
        self, rows_a: "np.ndarray | list[int]", rows_b: "np.ndarray | list[int]"
    ) -> list[int]:
        """Agree masks of many tuple pairs in one vectorized comparison.

        The samplers compare whole batches of pairs (every window position
        of a cluster at once); doing the label comparison and bit packing
        in a single numpy call keeps the per-pair cost at C speed.
        """
        return agree_masks_from_matrix(self.matrix, rows_a, rows_b)

    def iter_clusters(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(attribute, cluster)`` over all stripped clusters."""
        for attribute, partition in enumerate(self.stripped):
            for cluster in partition.clusters:
                yield attribute, cluster

    def labels(self, column: int) -> np.ndarray:
        """The dense label vector of one column."""
        return self.matrix[:, column]

    @property
    def encoded(self) -> "EncodedMatrix | None":
        """The columnar encoding if already materialized, else ``None``.

        Side-effect-free accessor for callers (the partition-store byte
        cost model) that must observe the representation without forcing
        an encode.
        """
        return self.__dict__.get("_encoded")

    def encoded_matrix(self) -> "EncodedMatrix":
        """The columnar dictionary encoding, materialized once and cached.

        Encoding is lazy so relations served by the numpy/python backends
        never pay for (or account) the columnar copy; the columnar
        backend materializes it via :meth:`repro.engine.backends.ColumnarBackend.prepare`.
        """
        cached = self.__dict__.get("_encoded")
        if cached is None:
            cached = encode_matrix(self.matrix)
            object.__setattr__(self, "_encoded", cached)
        return cached

    @property
    def append_delta(self) -> "AppendDelta | None":
        """The :class:`AppendDelta` that produced this snapshot, if any.

        ``None`` for cold-start snapshots built by :func:`preprocess`.
        """
        return self.__dict__.get("_append_delta")

    def append_rows(
        self, rows: "list[tuple[Any, ...]]"
    ) -> "PreprocessedRelation":
        """O(batch) append: the next snapshot, sharing this one's buffers.

        Extends the label dictionaries, the label matrix, the columnar
        encoding (when already materialized on this snapshot) and the
        stripped partitions with the new rows — never re-encoding
        existing ones.  The returned snapshot's :attr:`append_delta`
        describes what changed; ``self`` stays valid as a read-only view
        of the pre-append prefix, but becomes *stale*: appends are
        linear, and only the lineage's newest snapshot may grow again.
        A snapshot preprocessed without ``delta=True`` pays a one-time
        O(N) state bootstrap here; steady-state appends are O(batch)
        plus pointer-level cluster relisting either way.

        Mutates: self
        """
        num_columns = self.num_columns
        for row in rows:
            if len(row) != num_columns:
                raise ValueError(
                    f"row arity {len(row)} != schema width {num_columns}"
                )
        state = self.__dict__.get("_delta")
        if state is None:
            state = _bootstrap_delta(self)
            object.__setattr__(self, "_delta", state)
        if state.size != self.num_rows:
            raise ValueError(
                "append_rows on a stale snapshot: only the newest snapshot "
                f"of an append lineage may grow (this one has "
                f"{self.num_rows} rows, the lineage is at {state.size})"
            )
        return state.append_batch(self, rows)


def packed_agree_masks(equal: np.ndarray) -> list[int]:
    """Bit-pack per-pair boolean agree rows into Python int masks.

    Little-endian packing: bit ``j`` of a mask is attribute ``j``'s
    agreement.  For relations of up to 64 attributes (every packed row
    fits one machine word) the packed bytes decode through a single
    ``uint64`` view — on sampling-heavy workloads the historical
    per-pair ``int.from_bytes`` loop was the dominant per-pair cost.
    Wider relations keep the loop, whose cost the pair count amortizes.

    Pure: reads the boolean matrix only; returns a fresh list.
    """
    packed = np.packbits(equal, axis=1, bitorder="little")
    width = packed.shape[1]
    if width <= 8 and sys.byteorder == "little":
        padded = np.zeros((packed.shape[0], 8), dtype=np.uint8)
        padded[:, :width] = packed
        return padded.view(np.uint64).ravel().tolist()
    data = packed.tobytes()
    return [
        int.from_bytes(data[offset : offset + width], "little")
        for offset in range(0, len(data), width)
    ]


def agree_masks_from_matrix(
    matrix: np.ndarray,
    rows_a: "np.ndarray | list[int]",
    rows_b: "np.ndarray | list[int]",
) -> list[int]:
    """Agree masks of tuple pairs over a bare label matrix, in pair order.

    The matrix-level core of :meth:`PreprocessedRelation.agree_masks_bulk`,
    factored out so worker processes of the parallel execution engine can
    run it against a shared-memory view of the matrix without rebuilding a
    :class:`PreprocessedRelation`.

    Pure: reads the matrix and row lists only; returns a fresh list.
    """
    return packed_agree_masks(matrix[rows_a] == matrix[rows_b])


def distinct_agree_masks_range(
    matrix: np.ndarray, start: int, stop: int
) -> list[int]:
    """Distinct agree masks of all pairs anchored in ``[start, stop)``.

    For each anchor row ``i`` in the range, compares the label matrix of
    rows ``i+1 .. n-1`` against row ``i`` in one vectorized operation —
    the sweep Fdep performs over every anchor.  Masks come back as a list
    in first-occurrence order (the order a serial scan of the same range
    would first see them), so a coordinator merging per-range results in
    range order reproduces the serial insertion sequence exactly; that
    property is what makes the parallel Fdep sweep byte-identical to the
    serial one at any worker count.

    Pure: reads the matrix only; returns a fresh list.
    """
    seen: dict[int, None] = {}
    for anchor in range(start, stop):
        equal = matrix[anchor + 1 :] == matrix[anchor]
        packed = np.packbits(equal, axis=1, bitorder="little")
        row_bytes = packed.tobytes()
        width = packed.shape[1]
        for offset in range(0, len(row_bytes), width):
            seen.setdefault(
                int.from_bytes(row_bytes[offset : offset + width], "little")
            )
    return list(seen)


def preprocess(
    relation: Relation, null_equals_null: bool = True, delta: bool = False
) -> PreprocessedRelation:
    """Run the preprocessing module on ``relation``.

    ``null_equals_null`` selects NULL semantics: when True (the classic
    FD-discovery convention, used by Tane and HyFD) all NULLs of a column
    share one label; when False every NULL receives a fresh label and
    never agrees with anything, including another NULL.

    ``delta=True`` retains the per-column encoder dictionaries and group
    membership lists so that :meth:`PreprocessedRelation.append_rows`
    runs at O(batch) from the first append.  Without it the first append
    pays a one-time O(N) bootstrap to reconstruct that state; either way
    no append ever re-encodes already-encoded rows.
    """
    num_rows = relation.num_rows
    num_columns = relation.num_columns
    if num_columns == 0:
        raise ValueError("cannot preprocess a relation without columns")
    matrix = np.empty((num_rows, num_columns), dtype=np.int64)
    partitions = []
    state = _DeltaState(num_rows, num_columns, null_equals_null) if delta else None
    for j, column in enumerate(relation.columns):
        labels, codes, next_label = _encode_column(column, null_equals_null)
        matrix[:, j] = labels
        if state is None:
            partitions.append(partition_from_labels(labels, num_rows))
        else:
            state.adopt_column(j, labels, codes, next_label)
            partitions.append(state.materialize(j, num_rows))
    if state is not None:
        state.matrix = matrix
        state.capacity = num_rows
        state.size = num_rows
    view = matrix[:num_rows] if state is not None else matrix
    view.setflags(write=False)
    data = PreprocessedRelation(
        relation=relation,
        matrix=view,
        stripped=tuple(partitions),
        null_equals_null=null_equals_null,
    )
    if state is not None:
        object.__setattr__(data, "_delta", state)
    return data


def _encode_column(
    column: tuple[Any, ...], null_equals_null: bool
) -> tuple[list[int], dict[Any, int], int]:
    """Assign dense labels in first-occurrence order (deterministic).

    Returns ``(labels, codes, next_label)`` — the encoder's dictionary
    and high-water mark come back alongside the labels so the delta path
    can retain them and keep encoding future appends at O(batch).

    Pure: reads the column only; returns fresh state.
    """
    codes: dict[Any, int] = {}
    labels = []
    next_label = 0
    for value in column:
        if value is None:
            if null_equals_null:
                key = _NULL
            else:
                labels.append(next_label)
                next_label += 1
                continue
        else:
            key = value
        label = codes.get(key)
        if label is None:
            label = next_label
            codes[key] = label
            next_label += 1
        labels.append(label)
    return labels, codes, next_label
