"""The preprocessing module (Section IV-B).

Raw values of arbitrary types are replaced by dense numeric labels, one
label per distinct value *per attribute* (Table II): only value equality
matters for FD discovery, never the values themselves.  The label matrix
enables constant-time tuple-pair comparison, and the per-attribute
stripped partitions (Definition 7) seed the sampling module.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np

from .partition import StrippedPartition, partition_from_labels
from .relation import Relation

_NULL = object()
"""Internal sentinel distinguishing SQL NULL from the string 'None'."""


@dataclass(frozen=True)
class PreprocessedRelation:
    """Label matrix plus per-attribute stripped partitions.

    ``matrix[i, j]`` is the dense label of tuple ``i`` on attribute ``j``;
    labels of different attributes are independent namespaces and may
    repeat (Example 5).
    """

    relation: Relation
    matrix: np.ndarray
    stripped: tuple[StrippedPartition, ...]
    null_equals_null: bool

    @property
    def num_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_columns(self) -> int:
        return int(self.matrix.shape[1])

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.relation.column_names

    def cardinality(self, column: int) -> int:
        """Number of distinct labels in ``column``."""
        if self.num_rows == 0:
            return 0
        return int(self.matrix[:, column].max()) + 1

    def agree_mask(self, row_a: int, row_b: int) -> int:
        """Bitmask of the attributes on which two tuples share a value.

        The agree set of a tuple pair, computed by comparing label rows;
        every attribute outside the mask yields a non-FD
        ``agree -/-> attribute`` (Section IV-C).
        """
        equal = self.matrix[row_a] == self.matrix[row_b]
        packed = np.packbits(equal, bitorder="little")
        return int.from_bytes(packed.tobytes(), "little")

    def agree_masks_bulk(
        self, rows_a: "np.ndarray | list[int]", rows_b: "np.ndarray | list[int]"
    ) -> list[int]:
        """Agree masks of many tuple pairs in one vectorized comparison.

        The samplers compare whole batches of pairs (every window position
        of a cluster at once); doing the label comparison and bit packing
        in a single numpy call keeps the per-pair cost at C speed.
        """
        return agree_masks_from_matrix(self.matrix, rows_a, rows_b)

    def iter_clusters(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(attribute, cluster)`` over all stripped clusters."""
        for attribute, partition in enumerate(self.stripped):
            for cluster in partition.clusters:
                yield attribute, cluster

    def labels(self, column: int) -> np.ndarray:
        """The dense label vector of one column."""
        return self.matrix[:, column]


def agree_masks_from_matrix(
    matrix: np.ndarray,
    rows_a: "np.ndarray | list[int]",
    rows_b: "np.ndarray | list[int]",
) -> list[int]:
    """Agree masks of tuple pairs over a bare label matrix, in pair order.

    The matrix-level core of :meth:`PreprocessedRelation.agree_masks_bulk`,
    factored out so worker processes of the parallel execution engine can
    run it against a shared-memory view of the matrix without rebuilding a
    :class:`PreprocessedRelation`.

    Pure: reads the matrix and row lists only; returns a fresh list.
    """
    equal = matrix[rows_a] == matrix[rows_b]
    packed = np.packbits(equal, axis=1, bitorder="little")
    width = packed.shape[1]
    data = packed.tobytes()
    return [
        int.from_bytes(data[offset : offset + width], "little")
        for offset in range(0, len(data), width)
    ]


def distinct_agree_masks_range(
    matrix: np.ndarray, start: int, stop: int
) -> list[int]:
    """Distinct agree masks of all pairs anchored in ``[start, stop)``.

    For each anchor row ``i`` in the range, compares the label matrix of
    rows ``i+1 .. n-1`` against row ``i`` in one vectorized operation —
    the sweep Fdep performs over every anchor.  Masks come back as a list
    in first-occurrence order (the order a serial scan of the same range
    would first see them), so a coordinator merging per-range results in
    range order reproduces the serial insertion sequence exactly; that
    property is what makes the parallel Fdep sweep byte-identical to the
    serial one at any worker count.

    Pure: reads the matrix only; returns a fresh list.
    """
    seen: dict[int, None] = {}
    for anchor in range(start, stop):
        equal = matrix[anchor + 1 :] == matrix[anchor]
        packed = np.packbits(equal, axis=1, bitorder="little")
        row_bytes = packed.tobytes()
        width = packed.shape[1]
        for offset in range(0, len(row_bytes), width):
            seen.setdefault(
                int.from_bytes(row_bytes[offset : offset + width], "little")
            )
    return list(seen)


def preprocess(relation: Relation, null_equals_null: bool = True) -> PreprocessedRelation:
    """Run the preprocessing module on ``relation``.

    ``null_equals_null`` selects NULL semantics: when True (the classic
    FD-discovery convention, used by Tane and HyFD) all NULLs of a column
    share one label; when False every NULL receives a fresh label and
    never agrees with anything, including another NULL.
    """
    num_rows = relation.num_rows
    num_columns = relation.num_columns
    if num_columns == 0:
        raise ValueError("cannot preprocess a relation without columns")
    matrix = np.empty((num_rows, num_columns), dtype=np.int64)
    partitions = []
    for j, column in enumerate(relation.columns):
        labels = _encode_column(column, null_equals_null)
        matrix[:, j] = labels
        partitions.append(partition_from_labels(labels, num_rows))
    matrix.setflags(write=False)
    return PreprocessedRelation(
        relation=relation,
        matrix=matrix,
        stripped=tuple(partitions),
        null_equals_null=null_equals_null,
    )


def _encode_column(column: tuple[Any, ...], null_equals_null: bool) -> list[int]:
    """Assign dense labels in first-occurrence order (deterministic)."""
    codes: dict[Any, int] = {}
    labels = []
    next_label = 0
    for value in column:
        if value is None:
            if null_equals_null:
                key = _NULL
            else:
                labels.append(next_label)
                next_label += 1
                continue
        else:
            key = value
        label = codes.get(key)
        if label is None:
            label = next_label
            codes[key] = label
            next_label += 1
        labels.append(label)
    return labels
