"""Purity/mutation dataflow: which parameters can a function mutate?

The pass behind RPR102.  For every function in the project it computes a
*mutation summary* — the set of parameters the function may mutate — and
the rule then compares summaries against the ``Pure:``/``Mutates:``
contracts declared in docstrings (:mod:`repro.analysis.contracts`).

The analysis is region-based and deliberately coarse: each parameter
roots a *region*, and any value reached from a parameter by attribute
access, subscripting, or a method-call result is treated as part of that
parameter's region.  This is exactly the aliasing the kernels use
(``pcover = self.pcover``, ``tree = self._trees[rhs]``,
``bucket = self._buckets.get(card)``) without the cost of a real
points-to analysis.  A region is *mutated* by

* an attribute/subscript store or delete rooted in it,
* a call of a known mutating method (``append``, ``add`` …) on it,
* a call of a project function/method whose own summary says the
  corresponding parameter is mutated — summaries are propagated to a
  fixpoint across the whole project, so ``Inverter.process`` inherits
  ``self`` from ``_invert_one`` which inherits it from
  ``PositiveCover.remove``.

Two sources of imprecision, both deliberate:

* **over-approximation** — method calls are resolved by *name* across
  the project, and call-result aliasing lumps everything reachable from
  a parameter into one region.  A spurious mutation report on a declared
  ``Pure:`` kernel is silenced with an inline pragma and a justification.
* **under-approximation** — objects that round-trip through a container
  the analysis did not see built from a parameter (``path.append(node);
  parent = path[-1]``) escape the region.  The ``--sanitize`` runtime
  assertions exist precisely to catch what this blind spot misses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .contracts import Contract, function_params, parse_contract
from .project import FunctionDef, Project

#: method names that mutate their receiver on the builtin containers
KNOWN_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "difference_update",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "intersection_update",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "symmetric_difference_update",
        "update",
        "write",
        "writelines",
    }
)

_MAX_FIXPOINT_ROUNDS = 12


@dataclass(frozen=True)
class MutationEvidence:
    """Why the analysis believes a parameter is mutated."""

    line: int
    reason: str


@dataclass
class FunctionSummary:
    """The analysis result for one function."""

    definition: FunctionDef
    params: tuple[str, ...]
    contract: Contract | None
    mutated: dict[str, MutationEvidence] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return self.definition.key

    def record(self, param: str, line: int, reason: str) -> bool:
        """Note a mutation; return True when it is new evidence."""
        if param in self.mutated:
            return False
        self.mutated[param] = MutationEvidence(line, reason)
        return True


def _root_names(expr: ast.expr) -> set[str]:
    """Names at the root of an alias chain (attribute/subscript/call/ifexp)."""
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, (ast.Attribute, ast.Starred)):
        return _root_names(expr.value)
    if isinstance(expr, ast.Subscript):
        return _root_names(expr.value)
    if isinstance(expr, ast.Call):
        # Only method-call results alias their receiver's region
        # (``self._buckets.get(card)``); a plain ``f(x)`` builds fresh state.
        if isinstance(expr.func, ast.Attribute):
            return _root_names(expr.func.value)
        return set()
    if isinstance(expr, ast.IfExp):
        return _root_names(expr.body) | _root_names(expr.orelse)
    if isinstance(expr, ast.NamedExpr):
        return _root_names(expr.value)
    if isinstance(expr, ast.Await):
        return _root_names(expr.value)
    return set()


class _FunctionAnalysis:
    """Single-function mutation collection against current summaries."""

    def __init__(
        self,
        summary: FunctionSummary,
        summaries: dict[tuple[str, str], FunctionSummary],
        project: Project,
    ) -> None:
        self.summary = summary
        self.summaries = summaries
        self.project = project
        self.regions: dict[str, set[str]] = {
            param: {param} for param in summary.params
        }

    # -- aliasing ----------------------------------------------------------

    def _region_params(self, expr: ast.expr) -> set[str]:
        params: set[str] = set()
        for name in _root_names(expr):
            params.update(self.regions.get(name, ()))
        return params

    def _grow_aliases(self) -> None:
        """Fixpoint the name -> parameter-region map (add-only)."""
        body = self.summary.definition.node
        changed = True
        while changed:
            changed = False
            for node in ast.walk(body):
                pairs: list[tuple[ast.expr, ast.expr]] = []
                if isinstance(node, ast.Assign):
                    pairs = [(target, node.value) for target in node.targets]
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    pairs = [(node.target, node.value)]
                elif isinstance(node, ast.For):
                    pairs = [(node.target, node.iter)]
                elif isinstance(node, ast.comprehension):
                    pairs = [(node.target, node.iter)]
                elif isinstance(node, ast.withitem) and node.optional_vars:
                    pairs = [(node.optional_vars, node.context_expr)]
                elif isinstance(node, ast.NamedExpr):
                    pairs = [(node.target, node.value)]
                for target, value in pairs:
                    if not isinstance(target, ast.Name):
                        continue
                    sources = self._region_params(value)
                    if not sources:
                        continue
                    known = self.regions.setdefault(target.id, set())
                    if not sources <= known:
                        known.update(sources)
                        changed = True

    # -- mutation collection ----------------------------------------------

    def run(self) -> bool:
        self._grow_aliases()
        changed = False
        for node in ast.walk(self.summary.definition.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        changed |= self._mutate(
                            target, node.lineno, "store through parameter"
                        )
                    elif isinstance(target, ast.Tuple):
                        for element in target.elts:
                            if isinstance(element, (ast.Attribute, ast.Subscript)):
                                changed |= self._mutate(
                                    element, node.lineno, "store through parameter"
                                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        changed |= self._mutate(
                            target, node.lineno, "del through parameter"
                        )
            elif isinstance(node, ast.Call):
                changed |= self._check_call(node)
        return changed

    def _mutate(self, expr: ast.expr, line: int, reason: str) -> bool:
        changed = False
        for param in self._region_params(expr):
            changed |= self.summary.record(param, line, reason)
        return changed

    def _check_call(self, node: ast.Call) -> bool:
        changed = False
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver_params = self._region_params(func.value)
            candidates = self.project.methods_by_name().get(func.attr, [])
            mutates_receiver = False
            if candidates:
                mutates_receiver = any(
                    self._callee_mutates_position(candidate, 0)
                    for candidate in candidates
                )
            elif func.attr in KNOWN_MUTATORS:
                mutates_receiver = True
            if mutates_receiver and receiver_params:
                for param in receiver_params:
                    changed |= self.summary.record(
                        param, node.lineno, f"call of mutating method .{func.attr}()"
                    )
            # Arguments handed to a project method that mutates them.
            if candidates:
                changed |= self._check_arguments(node, candidates, skip_self=True)
        elif isinstance(func, ast.Name):
            callees = self._resolve_callable(func.id)
            if callees:
                skip_self = any(callee.is_method for callee in callees)
                changed |= self._check_arguments(node, callees, skip_self=skip_self)
        return changed

    def _check_arguments(
        self, node: ast.Call, callees: list[FunctionDef], skip_self: bool
    ) -> bool:
        changed = False
        for position, argument in enumerate(node.args):
            argument_params = self._region_params(argument)
            if not argument_params:
                continue
            offset = position + (1 if skip_self else 0)
            if any(
                self._callee_mutates_position(callee, offset) for callee in callees
            ):
                for param in argument_params:
                    changed |= self.summary.record(
                        param,
                        node.lineno,
                        f"passed to a function that mutates argument {position}",
                    )
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            argument_params = self._region_params(keyword.value)
            if not argument_params:
                continue
            if any(
                self._callee_mutates_name(callee, keyword.arg) for callee in callees
            ):
                for param in argument_params:
                    changed |= self.summary.record(
                        param,
                        node.lineno,
                        f"passed to a function that mutates parameter "
                        f"{keyword.arg!r}",
                    )
        return changed

    def _callee_mutates_position(self, callee: FunctionDef, position: int) -> bool:
        summary = self.summaries.get(callee.key)
        if summary is None:
            return False
        if position >= len(summary.params):
            return False
        return summary.params[position] in summary.mutated

    def _callee_mutates_name(self, callee: FunctionDef, name: str) -> bool:
        summary = self.summaries.get(callee.key)
        return summary is not None and name in summary.mutated

    def _resolve_callable(self, name: str) -> list[FunctionDef]:
        """Resolve a bare-name call to project functions or ``__init__``s."""
        table = self.project.symbols().get(self.summary.definition.module)
        if table is None:
            return []
        if name in table.functions:
            return [table.functions[name]]
        if name in table.classes:
            init = table.classes[name].get("__init__")
            return [init] if init is not None else []
        imported = table.imported_functions.get(name)
        if imported is not None:
            target_module, original = imported
            target_table = self.project.symbols().get(target_module)
            if target_table is not None:
                if original in target_table.functions:
                    return [target_table.functions[original]]
                if original in target_table.classes:
                    init = target_table.classes[original].get("__init__")
                    return [init] if init is not None else []
        return []


def analyze_project_mutations(
    project: Project,
) -> dict[tuple[str, str], FunctionSummary]:
    """Compute mutation summaries for every function, to a fixpoint."""
    summaries: dict[tuple[str, str], FunctionSummary] = {}
    for definition in project.all_functions():
        summaries[definition.key] = FunctionSummary(
            definition=definition,
            params=function_params(definition.node),
            contract=parse_contract(ast.get_docstring(definition.node, clean=False)),
        )
    for _ in range(_MAX_FIXPOINT_ROUNDS):
        changed = False
        for summary in summaries.values():
            changed |= _FunctionAnalysis(summary, summaries, project).run()
        if not changed:
            break
    return summaries
