"""Baseline files: grandfathering findings without silencing the rule.

A baseline is a JSON document mapping ``"RULE\\tpath\\tmessage"`` keys to
occurrence counts.  ``repro-lint --update-baseline`` writes the current
findings into it; subsequent runs report baselined findings separately
and do not fail on them.  Keys carry no line numbers, so moving a
grandfathered finding around a file does not churn the baseline — but
*adding* a second identical violation to the same file does fail, which
is the point: the debt is frozen, not licensed to grow.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .engine import Finding

_SEPARATOR = "\t"
_VERSION = 3
"""Bumped to 3 with the typestate rules (RPR109-RPR111): their findings
join the key space, so any baseline written before they existed must be
regenerated rather than silently treated as complete.  (Version 2 added
the dataflow rules RPR106-RPR108 for the same reason.)"""


def _key(finding: Finding) -> str:
    rule, path, message = finding.baseline_key()
    return _SEPARATOR.join((rule, path, message))


def load(path: Path) -> Counter[str]:
    """Read a baseline file; a missing file is an empty baseline.

    Raises :class:`ValueError` for anything that is not a
    current-version baseline document — a corrupt file or one written by
    a different repro-lint must fail loudly, not silently
    un-grandfather (or worse, silently absorb) findings.
    """
    if not path.exists():
        return Counter()
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "findings" not in document:
        raise ValueError(f"{path} is not a repro-lint baseline file")
    version = document.get("version")
    if version != _VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}; this repro-lint "
            f"reads version {_VERSION}. Regenerate it with "
            "`repro-lint --update-baseline`."
        )
    counts: Counter[str] = Counter()
    for key, count in document["findings"].items():
        counts[key] = int(count)
    return counts


def save(path: Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable output)."""
    counts = Counter(_key(finding) for finding in findings)
    document = {
        "version": _VERSION,
        "comment": (
            "Grandfathered repro-lint findings. Regenerate with "
            "`repro-lint --update-baseline`; shrink it whenever you can."
        ),
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: list[Finding], baseline: Counter[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered) against ``baseline``.

    Each baseline entry absorbs at most its recorded count of matching
    findings; the earliest occurrences (by line) are the ones absorbed,
    so newly added duplicates surface as new findings.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
