"""The whole-program rules: RPR101 (layering), RPR102 (purity contracts),
RPR103 (dead public exports).

Unlike the per-file rules in :mod:`repro.analysis.rules`, these see the
entire scanned tree at once through a shared :class:`~repro.analysis
.project.Project` (module graph, symbol table, reference index) — the
cross-module properties PR 1's per-file lint could not express.

========  ============================================================
RPR101    import layering — the package layer diagram (DESIGN.md §6)
          is enforced: a module may import its own layer or below,
          ``analysis`` stays isolated, and the module graph is acyclic
RPR102    purity contracts — declared ``Pure:``/``Mutates:`` docstring
          contracts hold against the inferred mutation summaries
RPR103    dead public exports — every ``__all__`` name is referenced
          somewhere in src/tests/benchmarks/examples
========  ============================================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence

from .engine import Finding, Module, ProjectRule
from .project import Project
from .purity import analyze_project_mutations

#: package layers, bottom-up; a module may import its own layer or lower.
#: ``obs`` sits at the very bottom so every layer may emit telemetry
#: without creating upward edges.  ``fd``/``relation`` are one layer
#: (mutually acyclic at module level: ``fd/armstrong`` builds relations,
#: ``relation/validate`` speaks FDs).  ``engine`` covers the whole
#: execution layer including ``engine.parallel``/``engine.shm`` — the
#: worker pool imports only ``relation`` kernels and ``obs``, so the
#: samplers and algorithms above it may fan work out without an upward
#: edge (and RPR105 keeps the raw concurrency imports confined there).
PACKAGE_LAYERS: dict[str, int] = {
    "obs": 0,
    "fd": 1,
    "relation": 1,
    "metrics": 2,
    "datasets": 2,
    "engine": 2,
    "core": 3,
    "algorithms": 3,
    "bench": 4,
}

#: modules at the package root (cli.py, profile.py, __main__, __init__)
ROOT_LAYER = 4

#: the self-contained analysis package: imports nothing from the rest of
#: the package and nothing outside it may import it.
ISOLATED_PACKAGE = "analysis"

#: the runtime support shim the sanitizer copies to the package root;
#: layer-free by design so instrumented kernels at any layer may use it.
RUNTIME_SHIM = "_contracts_runtime.py"


def _project_for(modules: Sequence[Module], shared: dict) -> Project:
    project = shared.get("project")
    if project is None or project.modules is not modules:
        project = Project(list(modules))
        shared["project"] = project
    return project


def _subpackage(relpath: str) -> tuple[bool, str | None]:
    """(is under a ``repro`` root, subpackage name or None-for-root).

    Outside a ``repro`` root (fixture trees), the first path component is
    used when it names a known layer, so the rule stays testable on
    miniature trees mirroring the layout.
    """
    parts = relpath.split("/")[:-1]
    if "repro" in parts:
        rest = parts[parts.index("repro") + 1 :]
        return True, (rest[0] if rest else None)
    if parts and (parts[0] in PACKAGE_LAYERS or parts[0] == ISOLATED_PACKAGE):
        return False, parts[0]
    return False, None


class LayeringRule(ProjectRule):
    """RPR101 — the import-layer diagram holds and the graph is acyclic.

    The ROADMAP's refactor-heavy growth (sharding, caching, async) is
    only safe while dependencies stay one-directional; a single stray
    upward import quietly turns the next refactor into a cycle hunt.
    """

    code = "RPR101"
    name = "import-layering"
    rationale = (
        "imports must respect the package layering "
        "(obs < fd/relation < metrics/datasets/engine < core/algorithms "
        "< bench/cli) "
        "and the module graph must stay acyclic"
    )

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        project = _project_for(modules, shared)
        yield from self._check_declared(project)
        yield from self._check_edges(project)
        yield from self._check_cycles(project)

    def _layer_of(self, relpath: str) -> int | None:
        under_repro, sub = _subpackage(relpath)
        if sub is None:
            return ROOT_LAYER if under_repro else None
        return PACKAGE_LAYERS.get(sub)

    def _check_declared(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            under_repro, sub = _subpackage(module.relpath)
            if (
                under_repro
                and sub is not None
                and sub != ISOLATED_PACKAGE
                and sub not in PACKAGE_LAYERS
            ):
                yield Finding(
                    path=module.relpath,
                    line=1,
                    col=1,
                    rule=self.code,
                    message=(
                        f"subpackage '{sub}' has no declared layer; add it "
                        "to PACKAGE_LAYERS (analysis/project_rules.py) and "
                        "the DESIGN.md §6 diagram"
                    ),
                )

    def _check_edges(self, project: Project) -> Iterator[Finding]:
        for edge in project.import_edges():
            if edge.target.rsplit("/", 1)[-1] == RUNTIME_SHIM:
                continue
            _, source_sub = _subpackage(edge.source)
            _, target_sub = _subpackage(edge.target)
            if source_sub == ISOLATED_PACKAGE or target_sub == ISOLATED_PACKAGE:
                if source_sub != target_sub:
                    inward = target_sub == ISOLATED_PACKAGE
                    yield Finding(
                        path=edge.source,
                        line=edge.line,
                        col=1,
                        rule=self.code,
                        message=(
                            f"'{ISOLATED_PACKAGE}' is an isolated package: "
                            + (
                                "nothing outside it may import it"
                                if inward
                                else "it may not import the rest of the package"
                            )
                        ),
                    )
                continue
            source_layer = self._layer_of(edge.source)
            target_layer = self._layer_of(edge.target)
            if source_layer is None or target_layer is None:
                continue
            if source_layer < target_layer:
                yield Finding(
                    path=edge.source,
                    line=edge.line,
                    col=1,
                    rule=self.code,
                    message=(
                        f"layer violation: '{source_sub or 'root'}' (layer "
                        f"{source_layer}) imports '{target_sub or 'root'}' "
                        f"(layer {target_layer}); only same-or-lower layers "
                        "may be imported"
                    ),
                )

    def _check_cycles(self, project: Project) -> Iterator[Finding]:
        edges_by_source: dict[str, list] = {}
        for edge in project.import_edges():
            edges_by_source.setdefault(edge.source, []).append(edge)
        for component in project.import_cycles():
            members = set(component)
            rendered = " -> ".join(component + [component[0]])
            for member in component:
                line = min(
                    (
                        edge.line
                        for edge in edges_by_source.get(member, [])
                        if edge.target in members
                    ),
                    default=1,
                )
                yield Finding(
                    path=member,
                    line=line,
                    col=1,
                    rule=self.code,
                    message=f"module participates in an import cycle: {rendered}",
                )


class PurityContractRule(ProjectRule):
    """RPR102 — declared mutation contracts hold.

    The double-cycle's correctness arguments assume ``product`` and the
    cover query paths are read-only and that inversion mutates only the
    positive cover; this rule checks every declared contract against the
    project-wide mutation inference of :mod:`repro.analysis.purity`.
    """

    code = "RPR102"
    name = "purity-contracts"
    rationale = (
        "declared Pure:/Mutates: docstring contracts must agree with the "
        "inferred parameter-mutation summaries"
    )

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        project = _project_for(modules, shared)
        summaries = shared.get("mutation_summaries")
        if summaries is None:
            summaries = analyze_project_mutations(project)
            shared["mutation_summaries"] = summaries
        for key in sorted(summaries):
            summary = summaries[key]
            contract = summary.contract
            if contract is None:
                continue
            definition = summary.definition
            where = Finding(
                path=definition.module,
                line=definition.node.lineno,
                col=definition.node.col_offset + 1,
                rule=self.code,
                message="",
            )
            for error in contract.errors:
                yield self._at(where, f"{definition.qualname}: {error}")
            if contract.errors:
                continue
            declared = set(contract.mutates or ())
            declared.update(name for name, _ in contract.monotone)
            unknown = sorted(declared - set(summary.params))
            if unknown:
                yield self._at(
                    where,
                    f"{definition.qualname}: contract names "
                    f"{', '.join(repr(name) for name in unknown)} which "
                    "is not a parameter",
                )
                continue
            if not contract.declares_mutation_contract:
                continue
            allowed = contract.allowed_mutations()
            violations = sorted(set(summary.mutated) - allowed)
            for param in violations:
                evidence = summary.mutated[param]
                label = "Pure:" if contract.pure else "Mutates:"
                yield self._at(
                    where,
                    f"{definition.qualname}: declared `{label}` but may "
                    f"mutate parameter {param!r} ({evidence.reason}, "
                    f"line {evidence.line})",
                )

    @staticmethod
    def _at(template: Finding, message: str) -> Finding:
        return Finding(
            path=template.path,
            line=template.line,
            col=template.col,
            rule=template.rule,
            message=message,
        )


class DeadExportRule(ProjectRule):
    """RPR103 — ``__all__`` exports must be referenced somewhere.

    An export nobody in src/tests/benchmarks/examples references is
    either dead API surface (delete it) or missing its tests (write
    them); both are worth a loud signal before the next refactor carries
    the dead weight forward.
    """

    code = "RPR103"
    name = "dead-public-export"
    rationale = (
        "package __all__ exports that no source, test, benchmark, or "
        "example references are untested dead API surface"
    )

    def check_modules(
        self, modules: Sequence[Module], shared: dict
    ) -> Iterator[Finding]:
        project = _project_for(modules, shared)
        referenced: frozenset[str] | None = None
        for module in project.modules:
            if module.path.name != "__init__.py":
                continue
            exports = _all_entries(module.tree)
            if not exports:
                continue
            if referenced is None:
                referenced = project.reference_names()
            for name, line, col in exports:
                if name not in referenced:
                    yield Finding(
                        path=module.relpath,
                        line=line,
                        col=col,
                        rule=self.code,
                        message=(
                            f"__all__ exports {name!r} but nothing under "
                            "src/tests/benchmarks/examples references it"
                        ),
                    )


def _all_entries(tree: ast.Module) -> list[tuple[str, int, int]]:
    """The string entries of a module's ``__all__``, with locations."""
    entries: list[tuple[str, int, int]] = []
    for statement in tree.body:
        if not isinstance(statement, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in statement.targets
        ):
            continue
        if isinstance(statement.value, (ast.List, ast.Tuple)):
            for element in statement.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    entries.append(
                        (element.value, element.lineno, element.col_offset + 1)
                    )
    return entries


def default_project_rules() -> list[ProjectRule]:
    """One fresh instance of every whole-program rule, in code order."""
    return [LayeringRule(), PurityContractRule(), DeadExportRule()]
