"""Static analysis for the reproduction: lint rules & determinism audit.

The ROADMAP's mandate is aggressive refactoring toward a production-scale
system; this package is the mechanical safety net that makes that safe.
``repro-lint`` (also ``python -m repro.analysis``) walks the source tree
with six repo-specific per-file AST rules — unseeded randomness, bitmask
encapsulation, the algorithm name/kind contract, mutable defaults,
public-API annotations, numpy dtype hygiene — plus three whole-program
rules: import layering & acyclicity (RPR101), ``Pure:``/``Mutates:``
docstring contracts against inferred mutation summaries (RPR102), and
dead ``__all__`` exports (RPR103), plus three *flow-sensitive* rules
built on the CFG/dataflow layer (:mod:`repro.analysis.cfg`,
:mod:`repro.analysis.dataflow`): parallel-state escape (RPR106),
merge-order sensitivity (RPR107), and numeric-width overflow (RPR108),
and three *typestate* rules (:mod:`repro.analysis.lifecycle`) checking
the engine's must-release resource protocols — leak-on-path (RPR109),
use-after-release (RPR110), and release-order violations (RPR111) —
against ``Owns:``/``Borrows:`` ownership declarations, and metric-name
discipline (RPR112) holding every recording call site to the central
catalog in :mod:`repro.obs.names`.
Results are memoized on content hashes (:mod:`repro.analysis.cache`;
``--no-cache`` bypasses), ``repro-lint --explain RPR107`` documents any
rule, and ``repro-lint --sanitize OUTDIR`` additionally emits a shadow
copy of the package in which every docstring contract is enforced as a
runtime assertion alongside determinism/overflow probes.  See DESIGN.md,
"Analysis & invariants", for the rule catalogue, the layer diagram, and
the suppression/baseline workflow.
"""

from .cli import explain_rule
from .engine import AnalysisResult, Finding, Module, ProjectRule, Rule, analyze
from .rules import default_rules
from .sanitize import SanitizeReport, sanitize_package

__all__ = [
    "AnalysisResult",
    "Finding",
    "Module",
    "ProjectRule",
    "Rule",
    "SanitizeReport",
    "analyze",
    "default_rules",
    "explain_rule",
    "sanitize_package",
]
