"""Static analysis for the reproduction: lint rules & determinism audit.

The ROADMAP's mandate is aggressive refactoring toward a production-scale
system; this package is the mechanical safety net that makes that safe.
``repro-lint`` (also ``python -m repro.analysis``) walks the source tree
with six repo-specific AST rules — unseeded randomness, bitmask
encapsulation, the algorithm name/kind contract, mutable defaults,
public-API annotations, numpy dtype hygiene — and fails CI on any new
finding.  See DESIGN.md, "Analysis & invariants", for the rule catalogue
and the suppression/baseline workflow.
"""

from .engine import AnalysisResult, Finding, Module, Rule, analyze
from .rules import default_rules

__all__ = [
    "AnalysisResult",
    "Finding",
    "Module",
    "Rule",
    "analyze",
    "default_rules",
]
