"""The ``Pure:`` / ``Mutates:`` / ``Monotone:`` docstring contract grammar.

The EulerFD kernels promise a handful of mutation contracts the paper
states but plain Python cannot enforce: ``StrippedPartition.product``
must not mutate its operands, the cover query paths are read-only, and
the negative cover is append-only (its covered set of non-FDs only ever
grows).  Those promises are written *in the docstring of the function
that makes them*, one contract line each, so they live next to the prose
that explains them and survive refactors by failing loudly instead of
silently:

``Pure:``
    The function mutates none of its parameters (``self`` included).
    Anything after the colon is prose.

``Mutates: self, stats``
    The function may mutate exactly the listed parameters; every other
    parameter is promised untouched.

``Monotone: self via covers``
    Every member the named parameter contained before the call still
    satisfies ``parameter.<probe>(member)`` afterwards — the append-only
    promise of the negative cover (Algorithm 2/3: inversion may consult
    but never shrink it between cycles).

Two consumers share this module: the static RPR102 pass
(:mod:`repro.analysis.purity`) checks declared contracts against an
inferred mutation summary, and the ``--sanitize`` instrumenter
(:mod:`repro.analysis.sanitize`) rewrites each contract into a runtime
assertion.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

_CONTRACT_RE = re.compile(r"^\s*(Pure|Mutates|Monotone):(.*)$")
_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MONOTONE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s+via\s+([A-Za-z_][A-Za-z0-9_]*)\s*$"
)


@dataclass(frozen=True)
class Contract:
    """A parsed contract declaration from one function docstring."""

    pure: bool = False
    mutates: tuple[str, ...] | None = None
    """Listed mutable parameters, or None when no ``Mutates:`` line."""
    monotone: tuple[tuple[str, str], ...] = ()
    """(parameter, probe method) pairs from ``Monotone:`` lines."""
    errors: tuple[str, ...] = ()
    """Grammar problems; a contract with errors is never enforced."""

    @property
    def declares_mutation_contract(self) -> bool:
        """True when the contract constrains parameter mutation at all."""
        return self.pure or self.mutates is not None

    def allowed_mutations(self) -> frozenset[str]:
        """Parameter names the contract permits the function to mutate."""
        if self.pure:
            return frozenset()
        allowed = set(self.mutates or ())
        allowed.update(name for name, _ in self.monotone)
        return frozenset(allowed)


@dataclass
class ContractedFunction:
    """One function definition carrying a contract."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    contract: Contract
    params: tuple[str, ...] = field(default_factory=tuple)


def parse_contract(docstring: str | None) -> Contract | None:
    """Extract the contract from a docstring; None when it declares none."""
    if not docstring:
        return None
    pure = False
    mutates: list[str] | None = None
    monotone: list[tuple[str, str]] = []
    errors: list[str] = []
    for line in docstring.splitlines():
        match = _CONTRACT_RE.match(line)
        if match is None:
            continue
        keyword, rest = match.group(1), match.group(2)
        if keyword == "Pure":
            if pure:
                errors.append("duplicate `Pure:` line")
            pure = True
        elif keyword == "Mutates":
            if mutates is not None:
                errors.append("duplicate `Mutates:` line")
                continue
            names = [token.strip() for token in rest.split(",")]
            bad = [name for name in names if not _IDENTIFIER_RE.match(name)]
            if bad or not names:
                errors.append(
                    "`Mutates:` takes a comma-separated list of parameter "
                    f"names, got {rest.strip()!r}"
                )
                mutates = []
            else:
                mutates = names
        else:  # Monotone
            parsed = _MONOTONE_RE.match(rest)
            if parsed is None:
                errors.append(
                    "`Monotone:` takes `<parameter> via <probe>`, got "
                    f"{rest.strip()!r}"
                )
            else:
                monotone.append((parsed.group(1), parsed.group(2)))
    if not pure and mutates is None and not monotone and not errors:
        return None
    if pure and mutates is not None:
        errors.append("`Pure:` and `Mutates:` are mutually exclusive")
    return Contract(
        pure=pure,
        mutates=tuple(mutates) if mutates is not None else None,
        monotone=tuple(monotone),
        errors=tuple(errors),
    )


def function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """All parameter names of a function, ``self``/``cls`` included."""
    arguments = node.args
    names = [
        argument.arg
        for argument in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        )
    ]
    for variadic in (arguments.vararg, arguments.kwarg):
        if variadic is not None:
            names.append(variadic.arg)
    return tuple(names)


def iter_contracted_functions(tree: ast.Module) -> list[ContractedFunction]:
    """Every contract-bearing function in a module, with its qualname.

    Walks top-level functions and (nested) class bodies; functions nested
    inside other functions are deliberately skipped — contracts belong on
    module- or class-level kernels, not closures.
    """
    found: list[ContractedFunction] = []

    def visit_body(body: list[ast.stmt], prefix: str) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                contract = parse_contract(ast.get_docstring(statement, clean=False))
                if contract is not None:
                    found.append(
                        ContractedFunction(
                            qualname=prefix + statement.name,
                            node=statement,
                            contract=contract,
                            params=function_params(statement),
                        )
                    )
            elif isinstance(statement, ast.ClassDef):
                visit_body(statement.body, prefix + statement.name + ".")

    visit_body(tree.body, "")
    return found
