"""The ``Pure:`` / ``Mutates:`` / ``Monotone:`` docstring contract grammar.

The EulerFD kernels promise a handful of mutation contracts the paper
states but plain Python cannot enforce: ``StrippedPartition.product``
must not mutate its operands, the cover query paths are read-only, and
the negative cover is append-only (its covered set of non-FDs only ever
grows).  Those promises are written *in the docstring of the function
that makes them*, one contract line each, so they live next to the prose
that explains them and survive refactors by failing loudly instead of
silently:

``Pure:``
    The function mutates none of its parameters (``self`` included).
    Anything after the colon is prose.

``Mutates: self, stats``
    The function may mutate exactly the listed parameters; every other
    parameter is promised untouched.

``Monotone: self via covers``
    Every member the named parameter contained before the call still
    satisfies ``parameter.<probe>(member)`` afterwards — the append-only
    promise of the negative cover (Algorithm 2/3: inversion may consult
    but never shrink it between cycles).

``Owns: return via call`` / ``Owns: self`` / ``Owns: segment via shm-segment``
    Ownership-transfer declarations for the typestate rules
    (RPR109–RPR111, :mod:`repro.analysis.lifecycle`).  ``Owns: return``
    says the caller receives a resource it must release (``via call``
    selects the ``(handle, cleanup)`` convention where the last
    tuple-unpack target is a release callable); ``Owns: self`` says the
    function parks owned resources on ``self`` for the object to release
    later; ``Owns: <param> via <protocol>`` says the function takes
    ownership of the parameter and must fully release it on every path.

``Borrows: pool, data``
    The listed parameters are used but never released or consumed — the
    caller keeps ownership (and the leak obligation) across the call.

Three consumers share this module: the static RPR102 pass
(:mod:`repro.analysis.purity`) checks declared mutation contracts
against an inferred mutation summary, the typestate pass
(:mod:`repro.analysis.lifecycle`) checks ownership declarations against
the resource state machines, and the ``--sanitize`` instrumenter
(:mod:`repro.analysis.sanitize`) rewrites each *mutation* contract into
a runtime assertion (ownership clauses stay static — their runtime
mirror is the live-resource probe).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

_CONTRACT_RE = re.compile(r"^\s*(Pure|Mutates|Monotone|Owns|Borrows):(.*)$")
_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MONOTONE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s+via\s+([A-Za-z_][A-Za-z0-9_]*)\s*$"
)
_OWNS_RE = re.compile(
    r"^(return|self|[A-Za-z_][A-Za-z0-9_]*)(?:\s+via\s+([a-z][a-z0-9-]*))?$"
)


@dataclass(frozen=True)
class Contract:
    """A parsed contract declaration from one function docstring."""

    pure: bool = False
    mutates: tuple[str, ...] | None = None
    """Listed mutable parameters, or None when no ``Mutates:`` line."""
    monotone: tuple[tuple[str, str], ...] = ()
    """(parameter, probe method) pairs from ``Monotone:`` lines."""
    owns_return: str | None = None
    """``"plain"`` when the return value is an owned resource the caller
    must release, ``"call"`` when release happens by *calling* it (the
    ``(handle, cleanup)`` convention: on tuple unpack the last target is
    the release callable).  None when no ``Owns: return`` clause."""
    owns_self: bool = False
    """True when ``Owns: self`` declares that the function stores owned
    resources on ``self`` (the enclosing object releases them later)."""
    owns_params: tuple[tuple[str, str | None], ...] = ()
    """``(parameter, protocol-or-None)`` pairs from ``Owns: p via proto``
    clauses: the function takes ownership of the parameter and must
    release (or re-escape) it on every path."""
    borrows: tuple[str, ...] = ()
    """Parameters from ``Borrows:`` lines: used but never released, so
    callers keep ownership (and the leak obligation) across the call."""
    errors: tuple[str, ...] = ()
    """Grammar problems; a contract with errors is never enforced."""

    @property
    def declares_lifecycle_contract(self) -> bool:
        """True when any ``Owns:``/``Borrows:`` clause is present."""
        return (
            self.owns_return is not None
            or self.owns_self
            or bool(self.owns_params)
            or bool(self.borrows)
        )

    @property
    def declares_mutation_contract(self) -> bool:
        """True when the contract constrains parameter mutation at all."""
        return self.pure or self.mutates is not None

    def allowed_mutations(self) -> frozenset[str]:
        """Parameter names the contract permits the function to mutate."""
        if self.pure:
            return frozenset()
        allowed = set(self.mutates or ())
        allowed.update(name for name, _ in self.monotone)
        return frozenset(allowed)


@dataclass
class ContractedFunction:
    """One function definition carrying a contract."""

    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    contract: Contract
    params: tuple[str, ...] = field(default_factory=tuple)


def parse_contract(docstring: str | None) -> Contract | None:
    """Extract the contract from a docstring; None when it declares none."""
    if not docstring:
        return None
    pure = False
    mutates: list[str] | None = None
    monotone: list[tuple[str, str]] = []
    owns_return: str | None = None
    owns_self = False
    owns_params: list[tuple[str, str | None]] = []
    borrows: list[str] = []
    errors: list[str] = []
    for line in docstring.splitlines():
        match = _CONTRACT_RE.match(line)
        if match is None:
            continue
        keyword, rest = match.group(1), match.group(2)
        if keyword == "Pure":
            if pure:
                errors.append("duplicate `Pure:` line")
            pure = True
        elif keyword == "Owns":
            for clause in rest.split(","):
                parsed = _OWNS_RE.match(clause.strip())
                if parsed is None:
                    errors.append(
                        "`Owns:` takes `return[ via call]`, `self`, or "
                        f"`<parameter>[ via <protocol>]`, got {clause.strip()!r}"
                    )
                    continue
                target, via = parsed.group(1), parsed.group(2)
                if target == "return":
                    if via not in (None, "call"):
                        errors.append(
                            f"`Owns: return via {via}` — only `via call` "
                            "is defined for return ownership"
                        )
                    elif owns_return is not None:
                        errors.append("duplicate `Owns: return` clause")
                    else:
                        owns_return = "call" if via == "call" else "plain"
                elif target == "self":
                    if via is not None:
                        errors.append("`Owns: self` takes no `via` clause")
                    owns_self = True
                else:
                    owns_params.append((target, via))
        elif keyword == "Borrows":
            names = [token.strip() for token in rest.split(",")]
            bad = [name for name in names if not _IDENTIFIER_RE.match(name)]
            if bad or not names:
                errors.append(
                    "`Borrows:` takes a comma-separated list of parameter "
                    f"names, got {rest.strip()!r}"
                )
            else:
                borrows.extend(names)
        elif keyword == "Mutates":
            if mutates is not None:
                errors.append("duplicate `Mutates:` line")
                continue
            names = [token.strip() for token in rest.split(",")]
            bad = [name for name in names if not _IDENTIFIER_RE.match(name)]
            if bad or not names:
                errors.append(
                    "`Mutates:` takes a comma-separated list of parameter "
                    f"names, got {rest.strip()!r}"
                )
                mutates = []
            else:
                mutates = names
        else:  # Monotone
            parsed = _MONOTONE_RE.match(rest)
            if parsed is None:
                errors.append(
                    "`Monotone:` takes `<parameter> via <probe>`, got "
                    f"{rest.strip()!r}"
                )
            else:
                monotone.append((parsed.group(1), parsed.group(2)))
    if (
        not pure
        and mutates is None
        and not monotone
        and owns_return is None
        and not owns_self
        and not owns_params
        and not borrows
        and not errors
    ):
        return None
    if pure and mutates is not None:
        errors.append("`Pure:` and `Mutates:` are mutually exclusive")
    owned_names = {name for name, _ in owns_params}
    for name in borrows:
        if name in owned_names:
            errors.append(
                f"parameter {name!r} is declared both `Owns:` and `Borrows:`"
            )
    return Contract(
        pure=pure,
        mutates=tuple(mutates) if mutates is not None else None,
        monotone=tuple(monotone),
        owns_return=owns_return,
        owns_self=owns_self,
        owns_params=tuple(owns_params),
        borrows=tuple(borrows),
        errors=tuple(errors),
    )


def function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """All parameter names of a function, ``self``/``cls`` included."""
    arguments = node.args
    names = [
        argument.arg
        for argument in (
            *arguments.posonlyargs,
            *arguments.args,
            *arguments.kwonlyargs,
        )
    ]
    for variadic in (arguments.vararg, arguments.kwarg):
        if variadic is not None:
            names.append(variadic.arg)
    return tuple(names)


def iter_contracted_functions(tree: ast.Module) -> list[ContractedFunction]:
    """Every contract-bearing function in a module, with its qualname.

    Walks top-level functions and (nested) class bodies; functions nested
    inside other functions are deliberately skipped — contracts belong on
    module- or class-level kernels, not closures.
    """
    found: list[ContractedFunction] = []

    def visit_body(body: list[ast.stmt], prefix: str) -> None:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                contract = parse_contract(ast.get_docstring(statement, clean=False))
                if contract is not None:
                    found.append(
                        ContractedFunction(
                            qualname=prefix + statement.name,
                            node=statement,
                            contract=contract,
                            params=function_params(statement),
                        )
                    )
            elif isinstance(statement, ast.ClassDef):
                visit_body(statement.body, prefix + statement.name + ".")

    visit_body(tree.body, "")
    return found
