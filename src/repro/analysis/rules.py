"""The repo-specific rules enforced by ``repro-lint``.

Each rule mechanically guards one invariant the EulerFD reproduction
depends on for its results to replicate (see DESIGN.md, "Analysis &
invariants"):

========  =====================================================
RPR001    determinism — no unseeded randomness, no hash-ordered
          iteration feeding FD output paths
RPR002    bitmask encapsulation — shift arithmetic on attribute
          masks belongs in ``fd/attrset.py`` or a declared kernel
RPR003    algorithm contract — algorithms declare ``name``,
          ``kind`` ("exact" / "approximate") and ``discover``
RPR004    no mutable default arguments
RPR005    exported functions carry full type annotations
RPR006    numpy constructions in ``relation/`` pin ``dtype=``
RPR104    clock discipline — outside ``obs``/``metrics``, wall
          time comes from ``repro.obs`` (monotonic/Clock), not
          direct ``time.time()``/``time.perf_counter()`` calls
RPR105    parallelism encapsulation — ``multiprocessing`` and
          ``concurrent.futures`` are imported only by
          ``engine/parallel.py`` and ``engine/shm.py``; everyone
          else goes through the :class:`WorkerPool` API
RPR113    encoded-width discipline — no ``astype(np.int64)`` /
          ``np.int64(...)`` widening of label data on the hot
          path (``relation``/``engine``/``core``) outside the
          fold kernel (``relation/validate.py``) and the columnar
          kernels (``engine/columnar.py``)
RPR114    streaming-encode discipline — no full ``preprocess()``
          / ``encode_matrix()`` re-encodes in ``core``/``engine``
          outside the cold-start sites (``engine/context.py``,
          ``engine/columnar.py``); append paths stay O(batch)
========  =====================================================

The whole-program rules (RPR101 import layering, RPR102 purity
contracts, RPR103 dead public exports) live in
:mod:`repro.analysis.project_rules` and are registered here so
``default_rules()`` stays the single catalogue.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from .engine import Finding, Module, Rule

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

#: ``random``-module functions that draw from the shared global RNG.
_GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "shuffle",
        "choice",
        "choices",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "lognormvariate",
    }
)


def _is_module(node: ast.expr, *names: str) -> bool:
    return isinstance(node, ast.Name) and node.id in names


class DeterminismRule(Rule):
    """RPR001 — every random draw must be seeded, every FD-facing
    iteration must have a defined order.

    The paper's accuracy/runtime tables only replicate when a fixed seed
    fully determines the discovery path; the global ``random`` RNG and
    ``PYTHONHASHSEED``-dependent set ordering both break that silently.
    """

    code = "RPR001"
    name = "determinism"
    rationale = (
        "unseeded randomness or hash-ordered iteration makes discovery "
        "results irreproducible across runs and interpreters"
    )
    interests = (ast.Call, ast.For, *_COMPREHENSIONS)

    #: packages whose iteration order feeds FD output paths
    _ORDERED_PACKAGES = ("core", "algorithms", "fd")

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_call(node, module)
        elif isinstance(node, ast.For):
            yield from self._check_iteration(node.iter, module)
        elif isinstance(node, _COMPREHENSIONS):
            for generator in node.generators:
                yield from self._check_iteration(generator.iter, module)

    def _check_call(self, node: ast.Call, module: Module) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # random.shuffle(...), random.random(), ... — the global RNG.
        if _is_module(func.value, "random") and func.attr in _GLOBAL_RNG_FUNCTIONS:
            yield self.finding(
                module,
                node,
                f"call to global-RNG random.{func.attr}(); construct a "
                "seeded random.Random(seed) instead",
            )
            return
        # random.Random() with no seed argument.
        if (
            _is_module(func.value, "random")
            and func.attr == "Random"
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                module,
                node,
                "random.Random() constructed without an explicit seed",
            )
            return
        # numpy's global RNG: np.random.<anything>, and the modern
        # default_rng() when called seedless.
        value = func.value
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and _is_module(value.value, "np", "numpy")
        ):
            if func.attr == "default_rng" and (node.args or node.keywords):
                return  # seeded generator: fine
            yield self.finding(
                module,
                node,
                f"numpy.random.{func.attr}() draws from global/unseeded "
                "state; pass an explicit seed",
            )

    def _check_iteration(self, source: ast.expr, module: Module) -> Iterator[Finding]:
        if not module.in_packages(*self._ORDERED_PACKAGES):
            return
        if isinstance(source, ast.Set):
            yield self.finding(
                module,
                source,
                "iteration over a set literal: order depends on "
                "PYTHONHASHSEED; sort explicitly",
            )
        elif isinstance(source, ast.Call):
            func = source.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                yield self.finding(
                    module,
                    source,
                    f"iteration over {func.id}(...): order depends on "
                    "PYTHONHASHSEED; sort explicitly",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "keys":
                yield self.finding(
                    module,
                    source,
                    "iteration over .keys(): iterate the mapping in an "
                    "explicit (sorted or insertion) order instead",
                )


class BitmaskEncapsulationRule(Rule):
    """RPR002 — attribute-mask shift arithmetic lives in ``fd/attrset.py``.

    ``attrset`` names every mask idiom (``singleton``, ``contains``,
    ``lowest_bit`` …).  Plain ``&``/``|`` unions and intersections are the
    documented convention and stay legal everywhere, but raw ``<<``/``>>``
    index-to-mask conversion outside the kernel hides the encoding and is
    where off-by-one and sign bugs creep in during refactors.  Hot-loop
    modules may opt out with ``# repro-lint: disable-file=RPR002`` plus a
    justification comment.
    """

    code = "RPR002"
    name = "bitmask-encapsulation"
    rationale = (
        "raw shift arithmetic on attribute masks outside fd/attrset.py "
        "bypasses the bitmask encapsulation layer"
    )
    interests = (ast.BinOp, ast.AugAssign)

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        if module.relpath.endswith("attrset.py"):
            return
        if isinstance(node, ast.BinOp):
            op, left, right = node.op, node.left, node.right
        else:
            assert isinstance(node, ast.AugAssign)
            op, left, right = node.op, node.target, node.value
        if not isinstance(op, (ast.LShift, ast.RShift)):
            return
        # Constant << constant is a plain numeric literal (e.g. a size
        # limit), not attribute-mask arithmetic.
        if isinstance(left, ast.Constant) and isinstance(right, ast.Constant):
            return
        symbol = "<<" if isinstance(op, ast.LShift) else ">>"
        yield self.finding(
            module,
            node,
            f"raw `{symbol}` on an attribute mask; use the fd.attrset "
            "helpers (singleton/contains/...) or declare the module a "
            "mask kernel",
        )


class AlgorithmContractRule(Rule):
    """RPR003 — every discovery algorithm declares its contract.

    Public classes in ``algorithms/`` exposing ``discover`` must satisfy
    the :class:`repro.algorithms.base.FDAlgorithm` protocol: a ``name``
    string and a ``kind`` of ``"exact"`` or ``"approximate"``, so
    benchmarks and metrics can refuse to score an approximate result as
    ground truth.
    """

    code = "RPR003"
    name = "algorithm-contract"
    rationale = (
        "algorithms missing name/kind declarations break the benchmark "
        "harness's exact-vs-approximate accounting"
    )
    _KINDS = ("exact", "approximate")

    def check_module(self, module: Module) -> Iterator[Finding]:
        if not module.in_packages("algorithms"):
            return
        if Path(module.relpath).name in {"base.py", "__init__.py"}:
            return
        for statement in module.tree.body:
            if not isinstance(statement, ast.ClassDef):
                continue
            if statement.name.startswith("_"):
                continue
            methods = {
                item.name
                for item in statement.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "discover" not in methods:
                continue  # helper/value classes are not algorithms
            declared = self._class_constants(statement)
            if "name" not in declared:
                yield self.finding(
                    module,
                    statement,
                    f"algorithm class {statement.name} does not declare a "
                    "`name` string",
                )
            kind = declared.get("kind")
            if kind is None:
                yield self.finding(
                    module,
                    statement,
                    f"algorithm class {statement.name} must declare "
                    '`kind = "exact"` or `kind = "approximate"`',
                )
            elif kind not in self._KINDS:
                yield self.finding(
                    module,
                    statement,
                    f"algorithm class {statement.name} declares kind="
                    f"{kind!r}; expected one of {self._KINDS}",
                )

    @staticmethod
    def _class_constants(cls: ast.ClassDef) -> dict[str, object]:
        constants: dict[str, object] = {}
        for item in cls.body:
            if isinstance(item, ast.Assign):
                targets = item.targets
                value = item.value
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                targets = [item.target]
                value = item.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = (
                        value.value if isinstance(value, ast.Constant) else Ellipsis
                    )
        return constants


class MutableDefaultRule(Rule):
    """RPR004 — no mutable default arguments.

    A ``def f(cache={})`` default is evaluated once at definition time
    and silently shared across calls — state leaking between discovery
    runs is exactly the kind of bug the determinism audit exists to stop.
    """

    code = "RPR004"
    name = "mutable-default"
    rationale = "mutable defaults are shared across calls and leak state"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque"})

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        arguments = node.args
        defaults = list(arguments.defaults) + [
            default for default in arguments.kw_defaults if default is not None
        ]
        label = getattr(node, "name", "<lambda>")
        for default in defaults:
            if self._is_mutable(default):
                yield self.finding(
                    module,
                    default,
                    f"mutable default argument in {label}(); default to "
                    "None and construct inside the body",
                )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, *_COMPREHENSIONS)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )


class PublicApiAnnotationRule(Rule):
    """RPR005 — exported functions carry full annotations.

    A function is *exported* when a package ``__init__.py`` lists it in
    ``__all__`` (directly or re-exported through a chain of packages).
    Exported signatures are the refactoring contract; full parameter and
    return annotations keep them checkable.
    """

    code = "RPR005"
    name = "public-api-annotations"
    rationale = (
        "unannotated exported functions make the public API contract "
        "unverifiable by type checkers"
    )

    def __init__(self) -> None:
        # scan-base dir -> {module relpath -> {function names exported}}
        self._export_cache: dict[Path, dict[str, set[str]]] = {}

    def check_module(self, module: Module) -> Iterator[Finding]:
        base = self._scan_base(module)
        exports = self._export_cache.get(base)
        if exports is None:
            exports = _build_export_map(base)
            self._export_cache[base] = exports
        exported_here = exports.get(module.relpath)
        if not exported_here:
            return
        for statement in module.tree.body:
            if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if statement.name not in exported_here:
                continue
            yield from self._check_signature(statement, module)

    @staticmethod
    def _scan_base(module: Module) -> Path:
        path = module.path
        for _ in module.relpath.split("/"):
            path = path.parent
        return path

    def _check_signature(
        self, function: ast.FunctionDef | ast.AsyncFunctionDef, module: Module
    ) -> Iterator[Finding]:
        arguments = function.args
        positional = arguments.posonlyargs + arguments.args
        missing = [
            argument.arg
            for argument in (*positional, *arguments.kwonlyargs)
            if argument.annotation is None and argument.arg not in ("self", "cls")
        ]
        for variadic in (arguments.vararg, arguments.kwarg):
            if variadic is not None and variadic.annotation is None:
                missing.append(variadic.arg)
        if missing:
            yield self.finding(
                module,
                function,
                f"exported function {function.name}() has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if function.returns is None:
            yield self.finding(
                module,
                function,
                f"exported function {function.name}() has no return "
                "annotation",
            )


class NumpyDtypeRule(Rule):
    """RPR006 — numpy constructions in ``relation/`` pin their dtype.

    The label matrices and partition arrays are the substrate every
    algorithm compares on; letting numpy infer a platform-dependent
    default (``int32`` on Windows, ``int64`` elsewhere) is a silent
    cross-platform divergence in overflow and hashing behaviour.
    """

    code = "RPR006"
    name = "numpy-dtype"
    rationale = (
        "dtype inference differs across platforms; relation arrays must "
        "pin an explicit dtype"
    )
    interests = (ast.Call,)

    _CONSTRUCTORS = frozenset({"array", "empty", "zeros", "ones", "full", "arange"})

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not module.in_packages("relation"):
            return
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in self._CONSTRUCTORS
            and _is_module(func.value, "np", "numpy")
        ):
            return
        if any(keyword.arg == "dtype" for keyword in node.keywords):
            return
        yield self.finding(
            module,
            node,
            f"np.{func.attr}(...) without an explicit dtype=; dtype "
            "inference is platform-dependent",
        )


class ClockDisciplineRule(Rule):
    """RPR104 — wall time flows through ``repro.obs``.

    The observability layer injects its clock (``SystemClock`` in
    production, ``FakeClock`` in tests) so every recorded duration is
    attributable and testable.  A stray ``time.perf_counter()`` in an
    algorithm produces timings no trace can see and no fake clock can
    control; ``repro.obs.monotonic`` (or an injected ``Clock``) is the
    sanctioned source.  ``obs`` itself and ``metrics`` (whose ``timed``
    benchmarks the real clock by design) are exempt, as is the isolated
    ``analysis`` package, which may not import ``obs``.
    """

    code = "RPR104"
    name = "clock-discipline"
    rationale = (
        "direct time.time()/time.perf_counter() calls outside repro.obs "
        "and repro.metrics bypass clock injection and make timings "
        "untraceable and untestable"
    )
    interests = (ast.Call,)

    _EXEMPT_PACKAGES = ("obs", "metrics", "analysis")
    _CLOCK_FUNCTIONS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if module.in_packages(*self._EXEMPT_PACKAGES):
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._CLOCK_FUNCTIONS
            and _is_module(func.value, "time")
        ):
            yield self.finding(
                module,
                node,
                f"direct time.{func.attr}() call; use repro.obs.monotonic "
                "or an injected Clock so timings stay traceable and "
                "fake-clock testable",
            )


class MetricNameDisciplineRule(Rule):
    """RPR112 — metric names come from the central catalog.

    Every counter/gauge/series/histogram name is declared once in
    :mod:`repro.obs.names` with its help text; exporters, dashboards and
    the trajectory harness rely on those spellings.  A string literal at
    a recording call site drifts silently — a typo mints a parallel
    metric nobody scrapes — so instrumented code must pass the imported
    constant instead (mirroring RPR104's clock discipline).  ``obs``
    itself (which defines the catalog and the primitives) and the
    isolated ``analysis`` package are exempt.
    """

    code = "RPR112"
    name = "metric-name-discipline"
    rationale = (
        "ad-hoc metric-name string literals at counter/gauge/point/"
        "metric_* call sites bypass the repro.obs.names catalog; a typo "
        "silently mints an uncatalogued metric with no help text that "
        "exporters and dashboards never see"
    )
    example = (
        'counter("sampler.passes")       # RPR112: ad-hoc literal\n'
        "counter(SAMPLER_PASSES)         # constant from repro.obs.names"
    )
    interests = (ast.Call,)

    _EXEMPT_PACKAGES = ("obs", "analysis")
    _HELPERS = frozenset(
        {
            "counter",
            "gauge",
            "point",
            "metric_inc",
            "metric_gauge_set",
            "metric_gauge_add",
            "metric_gauge_max",
            "metric_observe",
            "metric_time",
        }
    )

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if module.in_packages(*self._EXEMPT_PACKAGES):
            return
        func = node.func
        if isinstance(func, ast.Name):
            helper = func.id
        elif isinstance(func, ast.Attribute) and _is_module(func.value, "obs"):
            helper = func.attr
        else:
            return
        if helper not in self._HELPERS or not node.args:
            return
        name_arg = node.args[0]
        is_literal = (
            isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
        ) or isinstance(name_arg, ast.JoinedStr)
        if is_literal:
            rendered = (
                f'"{name_arg.value}"'
                if isinstance(name_arg, ast.Constant)
                else "an f-string"
            )
            yield self.finding(
                module,
                node,
                f"{helper}() called with {rendered}, an ad-hoc metric "
                "name; import the constant from repro.obs.names so the "
                "catalog stays the single source of metric spellings",
            )


class ParallelismEncapsulationRule(Rule):
    """RPR105 — concurrency primitives stay behind the worker pool.

    The determinism guarantee of the parallel engine (fixed chunk plans,
    merge by chunk index, stateful merges on the coordinator) only holds
    because every fan-out goes through :class:`repro.engine.WorkerPool`.
    A stray ``ProcessPoolExecutor`` in an algorithm would reintroduce
    completion-order nondeterminism and dodge the pool's shared-memory
    lifecycle and telemetry, so raw ``multiprocessing`` /
    ``concurrent.futures`` imports are confined to the two modules that
    implement the pool: ``engine/parallel.py`` and ``engine/shm.py``.
    """

    code = "RPR105"
    name = "parallelism-encapsulation"
    rationale = (
        "raw multiprocessing/concurrent.futures imports outside "
        "engine/parallel.py and engine/shm.py bypass the worker pool's "
        "determinism and shared-memory lifecycle guarantees"
    )
    interests = (ast.Import, ast.ImportFrom)

    _ALLOWED_FILES = ("engine/parallel.py", "engine/shm.py")
    _FORBIDDEN_ROOTS = frozenset({"multiprocessing", "concurrent"})

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        if module.relpath.endswith(self._ALLOWED_FILES):
            return
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        else:
            assert isinstance(node, ast.ImportFrom)
            if node.level >= 1 or node.module is None:
                return  # relative imports never reach the stdlib
            names = [node.module]
        for name in names:
            if name.partition(".")[0] in self._FORBIDDEN_ROOTS:
                yield self.finding(
                    module,
                    node,
                    f"import of {name!r} outside the parallel engine; use "
                    "repro.engine.WorkerPool (get_pool/--jobs) so fan-out "
                    "stays deterministic and pooled",
                )


class EncodedWidthDisciplineRule(Rule):
    """RPR113 — label data stays narrow on the hot path.

    The columnar layer's whole premise is that labels travel at their
    dictionary width (u8/u16/u32, :func:`repro.relation.preprocess.
    dtype_for_cardinality`); one stray ``astype(np.int64)`` on a label
    column allocates an 8-byte-per-row copy and silently undoes the
    memory and bandwidth win.  Widening is sanctioned in exactly two
    places — ``relation/validate.py`` (the int64 fold kernel and its
    ``rhs_labels`` accessor) and ``engine/columnar.py`` (the encoded
    kernels' own uint64 accumulators) — so everywhere else in the
    ``relation``/``engine``/``core`` packages, ``.astype(np.int64)``
    and ``np.int64(...)`` scalar/array construction are flagged.
    Constructing *buffers* with ``dtype=np.int64`` keywords stays
    legal (that is RPR006's territory, and buffers are not label
    copies), as does ``astype(np.int64, copy=False)``: a no-op
    normalization of data that is already int64, the re-densify idiom
    inside the guarded fold.
    """

    code = "RPR113"
    name = "encoded-width-discipline"
    rationale = (
        "astype(np.int64)/np.int64(...) widening of label data outside "
        "relation/validate.py and engine/columnar.py allocates 8-byte "
        "label copies on the hot path and silently undoes the columnar "
        "encoding's memory and bandwidth win"
    )
    example = (
        "labels = encoded.column(rhs).astype(np.int64)   # RPR113: widened copy\n"
        "labels = rhs_labels(data, rhs)                  # sanctioned accessor\n"
        "keys = keys.astype(np.int64, copy=False)        # no-op normalize: fine"
    )
    interests = (ast.Call,)

    _PACKAGES = ("relation", "engine", "core")
    _EXEMPT_FILES = ("relation/validate.py", "engine/columnar.py")

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not module.in_packages(*self._PACKAGES):
            return
        if module.relpath.endswith(self._EXEMPT_FILES):
            return
        func = node.func
        # np.int64(...) — an int64 scalar/array minted from label data.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "int64"
            and _is_module(func.value, "np", "numpy")
        ):
            yield self.finding(
                module,
                node,
                "np.int64(...) mints widened label data; keep labels at "
                "their dictionary width or go through "
                "relation.validate.rhs_labels",
            )
            return
        # X.astype(np.int64) — an 8-byte-per-row widened copy.
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
            return
        target = node.args[0] if node.args else None
        if target is None:
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    target = keyword.value
        if not (
            isinstance(target, ast.Attribute)
            and target.attr == "int64"
            and _is_module(target.value, "np", "numpy")
        ):
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "copy"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return  # no-op normalization, never an allocation
        yield self.finding(
            module,
            node,
            "astype(np.int64) widens label data to 8 bytes per row on "
            "the hot path; keep the dictionary width, or widen inside "
            "relation/validate.py / engine/columnar.py",
        )


class StreamingEncodeDisciplineRule(Rule):
    """RPR114 — streaming paths never re-encode the whole relation.

    The delta execution engine (DESIGN.md §12) makes appends O(batch):
    ``PreprocessedRelation.append_rows`` extends the label dictionaries,
    the encoded columns and the stripped partitions in place, and
    ``PartitionStore.apply_delta`` keeps cached partitions warm.  One
    stray ``preprocess(...)`` or ``encode_matrix(...)`` call on an
    append path silently reinstates the O(N) full re-encode the engine
    exists to avoid — and keeps working, so nothing but a profiler
    would notice.  Full encodes are sanctioned at exactly two cold-start
    sites — ``engine/context.py`` (the context constructor) and
    ``engine/columnar.py`` (the bare-matrix correctness fallback of
    ``encoded_of``) — so everywhere else in the ``core``/``engine``
    packages the calls are flagged.  The ``relation`` package, which
    *implements* both entry points, is out of scope by construction.
    """

    code = "RPR114"
    name = "streaming-encode-discipline"
    rationale = (
        "preprocess(...)/encode_matrix(...) outside the sanctioned "
        "cold-start sites re-encodes the whole relation, turning the "
        "delta engine's O(batch) append into O(N) without failing any "
        "correctness test"
    )
    example = (
        "data = preprocess(self._relation())        # RPR114: O(N) per append\n"
        "data = context.data                        # delta-maintained snapshot\n"
        "delta = context.append_rows(batch)         # O(batch) change-batch API"
    )
    interests = (ast.Call,)

    _PACKAGES = ("core", "engine")
    _EXEMPT_FILES = ("engine/context.py", "engine/columnar.py")
    _FULL_ENCODERS = frozenset({"preprocess", "encode_matrix"})

    def visit(self, node: ast.AST, module: Module) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not module.in_packages(*self._PACKAGES):
            return
        if module.relpath.endswith(self._EXEMPT_FILES):
            return
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        if name not in self._FULL_ENCODERS:
            return
        yield self.finding(
            module,
            node,
            f"{name}(...) re-encodes the whole relation; streaming paths "
            "must stay O(batch) — use the execution context's "
            "delta-maintained snapshot (context.data / "
            "context.append_rows), or move the cold start into "
            "engine/context.py",
        )


def _build_export_map(base: Path) -> dict[str, set[str]]:
    """Map module relpaths to the function names packages export.

    Parses every ``__init__.py`` under ``base``, reads its ``__all__``,
    and resolves each exported name through ``from . import``-style
    re-export chains to the module that actually defines it.  Only names
    that resolve to a top-level ``def`` are recorded — classes, constants
    and submodule re-exports are out of scope for RPR005.
    """
    inits: dict[Path, tuple[list[str], dict[str, tuple[Path, str]]]] = {}
    for init in sorted(base.rglob("__init__.py")):
        if "__pycache__" in init.parts:
            continue
        parsed = _parse_init(init)
        if parsed is not None:
            inits[init] = parsed

    exports: dict[str, set[str]] = {}

    def resolve(init: Path, name: str, depth: int = 0) -> tuple[Path, str] | None:
        if depth > 8 or init not in inits:
            return None
        _, imports = inits[init]
        target = imports.get(name)
        if target is None:
            # defined in the __init__ itself
            return (init, name)
        module_path, original = target
        nested = module_path / "__init__.py"
        if nested.exists():
            return resolve(nested, original, depth + 1)
        file_path = module_path.with_suffix(".py")
        if file_path.exists():
            if file_path.name == "__init__.py":
                return resolve(file_path, original, depth + 1)
            return (file_path, original)
        return None

    for init, (all_names, _) in inits.items():
        for name in all_names:
            resolved = resolve(init, name)
            if resolved is None:
                continue
            path, original = resolved
            if not _defines_function(path, original):
                continue
            relpath = path.relative_to(base).as_posix()
            exports.setdefault(relpath, set()).add(original)
    return exports


def _parse_init(init: Path) -> tuple[list[str], dict[str, tuple[Path, str]]] | None:
    """Extract (``__all__`` names, import map) from one ``__init__.py``.

    The import map sends each imported-as name to ``(module path without
    suffix, original name)``; only relative ``from``-imports are
    considered — the public API never re-exports third-party names.
    """
    try:
        tree = ast.parse(init.read_text(encoding="utf-8"))
    except (SyntaxError, OSError):
        return None
    package_dir = init.parent
    all_names: list[str] = []
    imports: dict[str, tuple[Path, str]] = {}
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = statement.value
                    if isinstance(value, (ast.List, ast.Tuple)):
                        all_names = [
                            element.value
                            for element in value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ]
        elif isinstance(statement, ast.ImportFrom) and statement.level >= 1:
            anchor = package_dir
            for _ in range(statement.level - 1):
                anchor = anchor.parent
            module_parts = statement.module.split(".") if statement.module else []
            module_path = anchor.joinpath(*module_parts) if module_parts else anchor
            for alias in statement.names:
                exported_as = alias.asname or alias.name
                if alias.name == "*":
                    continue
                if not module_parts:
                    # ``from . import submodule`` — a module, not a function
                    continue
                imports[exported_as] = (module_path, alias.name)
    return all_names, imports


def _defines_function(path: Path, name: str) -> bool:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (SyntaxError, OSError):
        return False
    return any(
        isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        and statement.name == name
        for statement in tree.body
    )


def default_rules() -> list[Rule]:
    """One fresh instance of every shipped rule, in code order."""
    from .dataflow_rules import default_dataflow_rules
    from .lifecycle import default_lifecycle_rules
    from .project_rules import default_project_rules

    return [
        DeterminismRule(),
        BitmaskEncapsulationRule(),
        AlgorithmContractRule(),
        MutableDefaultRule(),
        PublicApiAnnotationRule(),
        NumpyDtypeRule(),
        ClockDisciplineRule(),
        MetricNameDisciplineRule(),
        ParallelismEncapsulationRule(),
        EncodedWidthDisciplineRule(),
        StreamingEncodeDisciplineRule(),
        *default_project_rules(),
        *default_dataflow_rules(),
        *default_lifecycle_rules(),
    ]
